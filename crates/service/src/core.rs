//! The shared, thread-safe query service.
//!
//! # Locking discipline
//!
//! * Readers never block readers, and never block behind a running
//!   write: [`ServiceCore::query`] grabs the **current snapshot**
//!   (an `Arc<Snapshot>` behind a briefly-held `RwLock`) and runs the
//!   whole query against that immutable snapshot.
//! * Writers serialize through `write_gate` and publish `(snapshot,
//!   delta)` pairs: the next system is a **copy-on-write** clone
//!   (O(#relations) pointer bumps; only mutated tables materialize), the
//!   mutation seals a [`proql_provgraph::GraphDelta`] in the system's
//!   delta log, the write set recorded in the result cache is derived
//!   from that delta, and the published engine adopts the previous
//!   snapshot's provenance graph so the first graph query after the
//!   write patches instead of rebuilding. In-flight readers keep their
//!   `Arc` to the old snapshot and finish with a consistent view.
//! * The cache's freshness rule (see [`crate::cache`]) makes the
//!   reader/writer races benign: a result computed against a snapshot
//!   that a concurrent write has outdated is rejected at insert time,
//!   and a cache hit's reported version is read under the cache lock —
//!   writers record the write set *before* publishing, so an entry that
//!   survives the epoch check is valid at the version the reader
//!   reports.

use crate::cache::{CacheCounters, PlanCache, PlanCacheCounters, ResultCache};
use crate::metrics::{LatencyHistogram, Metrics, TransportMetrics, TransportSnapshot};
use crate::proto::result_digest;
use proql::engine::{Engine, EngineOptions, QueryOutput};
use proql::{maintain_output, MaintainResult};
use proql_cdss::update::{delete_local_with_graph, DeleteStats};
use proql_common::{trace, Error, Result, Tuple};
use proql_provgraph::encode::wire;
use proql_provgraph::ProvenanceSystem;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{SystemTime, UNIX_EPOCH};

/// Primary wall clock in microseconds since the UNIX epoch — stamped on
/// outgoing replication frames so replicas (on the same clock domain) can
/// measure apply lag.
fn wall_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// Lock with poison recovery: a worker that panicked mid-query must not
/// wedge every other worker. The data behind each service lock is safe to
/// resume after a panic — the snapshot slot is a single `Arc` swap, and
/// the caches are freshness-checked on every read — so the poison flag
/// carries no information here.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Read-lock with poison recovery (see [`lock`]).
fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-lock with poison recovery (see [`lock`]).
fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// One immutable published version of the system: queries run against a
/// snapshot end-to-end, so a write landing mid-query cannot tear results.
#[derive(Debug)]
pub struct Snapshot {
    /// The [`ProvenanceSystem::version`] this snapshot was published at.
    pub version: u64,
    /// A read-only engine over the snapshot's system.
    pub engine: Engine,
}

/// Point-in-time service statistics (the `STATS` verb's payload).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Currently published system version.
    pub version: u64,
    /// Queries served (hits + misses + errors).
    pub queries: u64,
    /// Writes applied (deletions + insert/exchange rounds).
    pub writes: u64,
    /// Live cache entries.
    pub cache_entries: u64,
    /// Cache counters.
    pub cache: CacheCounters,
    /// Live prepared-plan entries.
    pub plan_entries: u64,
    /// Prepared-plan cache counters.
    pub plans: PlanCacheCounters,
    /// Delta-log compactions in the published system (sealed entries
    /// merged to bound log growth; see `proql_provgraph::DeltaLog`).
    pub delta_compactions: u64,
    /// Provenance-graph builds from scratch, accumulated across every
    /// published snapshot plus the current one.
    pub graph_builds: u64,
    /// Provenance-graph delta patches, accumulated the same way.
    pub graph_patches: u64,
    /// Transport counters and latency percentiles, when a TCP front end
    /// is attached (zeros otherwise).
    pub transport: TransportSnapshot,
    /// Sealed entries currently retained in the published system's delta
    /// log (bounded by `delta_log_cap`).
    pub delta_log_depth: u64,
    /// The delta log's trimmed low watermark: the oldest version the log
    /// can still replicate **from**.
    pub delta_log_base: u64,
    /// The delta log's configured retention bound, in entries
    /// (`PROQL_DELTA_LOG_CAP`).
    pub delta_log_cap: u64,
    /// Live replica subscriptions on this node.
    pub repl_subscribers: u64,
    /// `REPL_DELTA` frames streamed to replica subscribers.
    pub repl_deltas_streamed: u64,
    /// `REPL_SNAPSHOT` frames streamed to replica subscribers (each one
    /// is a broken-chain fallback — never silent).
    pub repl_snapshots_streamed: u64,
    /// Replicated deltas applied on this node (replica mode).
    pub repl_deltas_applied: u64,
    /// Full snapshots installed on this node (replica mode).
    pub repl_snapshots_installed: u64,
    /// Replayed-digest mismatches detected **before** publishing (each
    /// one triggers a forced snapshot resubscribe).
    pub repl_digest_mismatches: u64,
    /// Times this node's replica loop re-subscribed to its primary
    /// (reconnects and digest-mismatch recoveries).
    pub repl_resubscribes: u64,
    /// Replication apply-lag observations (primary seal → replica
    /// publish, same clock domain).
    pub repl_lag_count: u64,
    /// Apply-lag p50 in milliseconds.
    pub repl_lag_p50_ms: f64,
    /// Apply-lag p99 in milliseconds.
    pub repl_lag_p99_ms: f64,
}

impl ServiceStats {
    /// Assemble the unified metrics registry — the **single** source both
    /// the JSON (`STATS`) and text (`STATS TEXT`) renderings draw from,
    /// so the two surfaces can never drift apart.
    pub fn registry(&self) -> Metrics {
        let mut m = Metrics::new();
        m.push_u64("version", self.version);
        m.push_u64("queries", self.queries);
        m.push_u64("writes", self.writes);
        m.push_u64("cache_entries", self.cache_entries);
        m.push_u64("cache_hits", self.cache.hits);
        m.push_u64("cache_misses", self.cache.misses);
        m.push_f64("cache_hit_rate", self.cache.hit_rate(), 6);
        m.push_u64("stale_evictions", self.cache.stale_evictions);
        m.push_u64("capacity_evictions", self.cache.capacity_evictions);
        m.push_u64("rejected_inserts", self.cache.rejected_inserts);
        m.push_u64("maint_hits", self.cache.maint_hits);
        m.push_u64("maint_fallbacks", self.cache.maint_fallbacks);
        m.push_u64("maint_rows_patched", self.cache.maint_rows_patched);
        m.push_u64("delta_compactions", self.delta_compactions);
        m.push_u64("graph_builds", self.graph_builds);
        m.push_u64("graph_patches", self.graph_patches);
        m.push_u64("plan_entries", self.plan_entries);
        m.push_u64("plan_cache_hits", self.plans.hits);
        m.push_u64("plan_cache_misses", self.plans.misses);
        m.push_f64("plan_cache_hit_rate", self.plans.hit_rate(), 6);
        m.push_u64("plan_reprepares", self.plans.reprepares);
        m.push_u64("connections_open", self.transport.connections_open);
        m.push_u64("connections_total", self.transport.connections_total);
        m.push_u64("frames_in", self.transport.frames_in);
        m.push_u64("frames_out", self.transport.frames_out);
        m.push_u64("shed_count", self.transport.shed_count);
        m.push_u64("protocol_errors", self.transport.protocol_errors);
        m.push_u64("requests_recorded", self.transport.requests_recorded);
        m.push_f64("latency_p50_ms", self.transport.latency_p50_ms, 4);
        m.push_f64("latency_p95_ms", self.transport.latency_p95_ms, 4);
        m.push_f64("latency_p99_ms", self.transport.latency_p99_ms, 4);
        m.push_u64("delta_log_depth", self.delta_log_depth);
        m.push_u64("delta_log_base", self.delta_log_base);
        m.push_u64("delta_log_cap", self.delta_log_cap);
        m.push_u64("repl_subscribers", self.repl_subscribers);
        m.push_u64("repl_deltas_streamed", self.repl_deltas_streamed);
        m.push_u64("repl_snapshots_streamed", self.repl_snapshots_streamed);
        m.push_u64("repl_deltas_applied", self.repl_deltas_applied);
        m.push_u64("repl_snapshots_installed", self.repl_snapshots_installed);
        m.push_u64("repl_digest_mismatches", self.repl_digest_mismatches);
        m.push_u64("repl_resubscribes", self.repl_resubscribes);
        m.push_u64("repl_lag_count", self.repl_lag_count);
        m.push_f64("repl_lag_p50_ms", self.repl_lag_p50_ms, 4);
        m.push_f64("repl_lag_p99_ms", self.repl_lag_p99_ms, 4);
        m
    }

    /// Single-line JSON rendering of [`Self::registry`] (the workspace
    /// has no serde).
    pub fn to_json(&self) -> String {
        self.registry().to_json()
    }

    /// `name value` line rendering of [`Self::registry`] (the `STATS
    /// TEXT` payload).
    pub fn to_text(&self) -> String {
        self.registry().to_text()
    }
}

/// A query answer plus the service-level context it was produced in.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The system version this answer is valid at: a serial [`Engine`]
    /// replay against the system state of this version returns a
    /// bit-identical result.
    pub version: u64,
    /// Whether the answer came from the result cache.
    pub cache_hit: bool,
    /// Whether the query reused a cached prepared plan (always `false`
    /// on result-cache hits, which never consult the plan cache).
    pub plan_cache_hit: bool,
    /// The answer.
    pub output: Arc<QueryOutput>,
}

/// The receiving end of a subscription channel: `(subscription id,
/// event)` pairs, one sender shared by all of a connection's
/// subscriptions.
pub type SubscriptionReceiver = mpsc::Receiver<(u64, SubscriptionEvent)>;

/// What happened to a subscribed query's answer after a write (pushed to
/// `SUBSCRIBE` clients, tagged with the subscription id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscriptionEvent {
    /// The cached answer was patched forward by incremental maintenance:
    /// the subscriber's view is current again at `version` without a
    /// recompute. `digest` is the canonical result digest of the patched
    /// answer (what a re-`QUERY` would report); `rows_patched` is how
    /// many projection/annotation rows actually changed.
    Delta {
        /// The version the patched answer is valid at.
        version: u64,
        /// Projection and annotation rows added, removed, or revalued.
        rows_patched: u64,
        /// Canonical digest of the patched answer.
        digest: u64,
    },
    /// The write could not be maintained (fallback or the entry was
    /// gone): the cached answer died and the subscriber must re-issue
    /// the query to resynchronize.
    Resync {
        /// The version the subscriber should re-query at (or later).
        version: u64,
    },
}

/// Where subscription events are delivered: called with `(subscription
/// id, event)` on every intersecting write, returning whether the
/// subscriber is still alive (`false` prunes the subscription). Sinks
/// run on the writer's thread and must be cheap and non-blocking — the
/// TCP server's sink appends a pre-rendered PUSH frame to the
/// connection's outbound queue and wakes the event loop.
pub type PushSink = Box<dyn Fn(u64, SubscriptionEvent) -> bool + Send + Sync>;

/// One live subscription: where to push events for a cache key.
struct Subscription {
    id: u64,
    key: String,
    /// The answer's read set at subscribe time — a write intersecting it
    /// triggers an event even if the cache entry itself has vanished.
    deps: BTreeSet<String>,
    sink: PushSink,
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("id", &self.id)
            .field("key", &self.key)
            .field("deps", &self.deps)
            .finish_non_exhaustive()
    }
}

/// The payload kind of a replication frame (selects the transport verb:
/// `REPL_DELTA` vs `REPL_SNAPSHOT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplFrameKind {
    /// A [`wire`]-encoded [`wire::DeltaFrame`].
    Delta,
    /// A [`wire`]-encoded [`wire::SnapshotFrame`] (broken-chain or
    /// forced-recovery fallback).
    Snapshot,
}

/// Where replication frames are delivered: called with `(kind, encoded
/// payload)` on every published write, returning whether the subscriber
/// is still alive (`false` prunes the subscription). Payloads are
/// encoded once and shared across subscribers; like [`PushSink`], sinks
/// run on the writer's thread and must be cheap and non-blocking.
pub type ReplSink = Box<dyn Fn(ReplFrameKind, &Arc<Vec<u8>>) -> bool + Send + Sync>;

/// What applying one replication frame did to a replica's state (see
/// [`ServiceCore::apply_repl_delta_frame`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplApplyOutcome {
    /// The frame was applied and published; the node now serves `version`.
    Applied {
        /// The version the node now serves.
        version: u64,
    },
    /// The frame sealed a version at or below the node's — a benign
    /// re-delivery (the subscribe/write race) — and was ignored.
    Stale {
        /// The node's (unchanged) version.
        version: u64,
    },
    /// The frame does not chain onto the node's version: the replica
    /// must resubscribe (the primary falls back to a snapshot when its
    /// log cannot bridge the gap).
    Gap {
        /// The node's version.
        local: u64,
        /// The version the rejected frame seals.
        frame: u64,
    },
    /// The replayed state's digest differs from the primary's — the
    /// frame was **discarded before publishing** (corrupt state is never
    /// served) and the replica must force a snapshot resubscribe.
    DigestMismatch {
        /// The version whose digests disagreed.
        version: u64,
        /// The primary's digest.
        expected: u64,
        /// The locally replayed digest.
        actual: u64,
    },
}

/// One live replica subscription.
struct ReplSub {
    id: u64,
    sink: ReplSink,
}

impl std::fmt::Debug for ReplSub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplSub")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

/// A shared, thread-safe ProQL query service over a [`ProvenanceSystem`]:
/// single-writer / multi-reader with versioned snapshots and a
/// dependency-tracked result cache.
#[derive(Debug)]
pub struct ServiceCore {
    state: RwLock<Arc<Snapshot>>,
    write_gate: Mutex<()>,
    cache: Mutex<ResultCache>,
    plans: Mutex<PlanCache>,
    options: EngineOptions,
    queries: AtomicU64,
    writes: AtomicU64,
    /// Graph build/patch counts accumulated from **retired** snapshots:
    /// each published engine counts only its own lifetime (a write
    /// installs a fresh engine), so the write path folds the outgoing
    /// snapshot's counters in here before publishing. `stats()` reports
    /// accumulated + current-snapshot counts.
    graph_builds: AtomicU64,
    graph_patches: AtomicU64,
    /// Incremental view maintenance switch: `true` patches intersecting
    /// cache entries forward across writes; `false` reproduces the old
    /// evict-on-write behavior (the ablation baseline).
    maintenance: bool,
    subs: Mutex<Vec<Subscription>>,
    next_sub_id: AtomicU64,
    /// Metrics of the attached TCP front end, if any (installed by
    /// `serve`); folded into [`ServiceStats`].
    transport: Mutex<Option<Arc<TransportMetrics>>>,
    /// Replica subscriptions: every published write streams its sealed
    /// delta (or a snapshot, on a broken chain) to each sink.
    repl: Mutex<Vec<ReplSub>>,
    next_repl_id: AtomicU64,
    repl_deltas_streamed: AtomicU64,
    repl_snapshots_streamed: AtomicU64,
    repl_deltas_applied: AtomicU64,
    repl_snapshots_installed: AtomicU64,
    repl_digest_mismatches: AtomicU64,
    repl_resubscribes: AtomicU64,
    /// Primary-seal → replica-publish latency (meaningful on replicas).
    repl_lag: LatencyHistogram,
    /// Replica mode: local mutations are refused so the node's state
    /// only ever advances by replication frames from its primary.
    read_only: AtomicBool,
}

/// Default bound on live cache entries.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Default bound on cached prepared plans.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

impl ServiceCore {
    /// Serve `sys` with engine `options` and the default cache capacities.
    pub fn new(sys: ProvenanceSystem, options: EngineOptions) -> Self {
        ServiceCore::with_capacities(
            sys,
            options,
            DEFAULT_CACHE_CAPACITY,
            DEFAULT_PLAN_CACHE_CAPACITY,
        )
    }

    /// Serve `sys` with an explicit result-cache capacity and the default
    /// plan-cache capacity.
    pub fn with_cache_capacity(
        sys: ProvenanceSystem,
        options: EngineOptions,
        capacity: usize,
    ) -> Self {
        ServiceCore::with_capacities(sys, options, capacity, DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// Serve `sys` with explicit result-cache and plan-cache capacities
    /// (a plan capacity of 0 disables prepared-plan reuse — the
    /// unprepared baseline benchmarks measure against).
    pub fn with_capacities(
        sys: ProvenanceSystem,
        options: EngineOptions,
        capacity: usize,
        plan_capacity: usize,
    ) -> Self {
        // Honor PROQL_TRACE / PROQL_TRACE_SPANS before the first query
        // can record a span. Idempotent, so repeated cores are fine.
        trace::init_from_env();
        let version = sys.version();
        let engine = Engine::with_options(sys, options.clone());
        ServiceCore {
            state: RwLock::new(Arc::new(Snapshot { version, engine })),
            write_gate: Mutex::new(()),
            cache: Mutex::new(ResultCache::new(capacity)),
            plans: Mutex::new(PlanCache::new(plan_capacity)),
            options,
            queries: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            graph_builds: AtomicU64::new(0),
            graph_patches: AtomicU64::new(0),
            maintenance: true,
            subs: Mutex::new(Vec::new()),
            next_sub_id: AtomicU64::new(0),
            transport: Mutex::new(None),
            repl: Mutex::new(Vec::new()),
            next_repl_id: AtomicU64::new(0),
            repl_deltas_streamed: AtomicU64::new(0),
            repl_snapshots_streamed: AtomicU64::new(0),
            repl_deltas_applied: AtomicU64::new(0),
            repl_snapshots_installed: AtomicU64::new(0),
            repl_digest_mismatches: AtomicU64::new(0),
            repl_resubscribes: AtomicU64::new(0),
            repl_lag: LatencyHistogram::new(),
            read_only: AtomicBool::new(false),
        }
    }

    /// Attach a transport's metrics so `STATS` reports them. The server
    /// installs its block at startup; a later `serve` over the same core
    /// replaces it (last front end wins).
    pub fn set_transport_metrics(&self, metrics: Arc<TransportMetrics>) {
        *lock(&self.transport) = Some(metrics);
    }

    /// Toggle incremental view maintenance (on by default). Disabling it
    /// reproduces the pre-maintenance write path — every write evicts
    /// intersecting entries — which benchmarks use as the ablation
    /// baseline.
    pub fn with_maintenance(mut self, enabled: bool) -> Self {
        self.maintenance = enabled;
        self
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&read_lock(&self.state))
    }

    /// The currently published system version.
    pub fn version(&self) -> u64 {
        self.snapshot().version
    }

    /// Cache keys are whitespace-normalized query text, so reformatted
    /// copies of the same query share an entry. Normalization mirrors
    /// the ProQL lexer: single-quoted string literals are preserved
    /// verbatim (whitespace inside them is significant) and `--` line
    /// comments are stripped. A leading `EXPLAIN` keyword — which the
    /// parser matches case-insensitively — is canonicalized to an
    /// explicit uppercase flag, so `explain q` and `EXPLAIN q` share one
    /// entry that is always distinct from `q`'s (an `EXPLAIN` answer has
    /// no result rows; conflating the two keys would serve an empty
    /// projection for the real query or vice versa). A following
    /// `ANALYZE` keyword is canonicalized the same way — the query path
    /// uses the `EXPLAIN ANALYZE ` prefix to bypass the result cache,
    /// since a cached analyze answer would replay stale timings.
    pub fn cache_key(text: &str) -> String {
        let normalized = Self::normalize_text(text);
        match normalized.split_once(' ') {
            Some((head, rest)) if head.eq_ignore_ascii_case("EXPLAIN") => {
                match rest.split_once(' ') {
                    Some((next, tail)) if next.eq_ignore_ascii_case("ANALYZE") => {
                        format!("EXPLAIN ANALYZE {tail}")
                    }
                    _ => format!("EXPLAIN {rest}"),
                }
            }
            _ => normalized,
        }
    }

    /// Whether a canonical cache key is an `EXPLAIN ANALYZE` query, which
    /// must re-execute every time (its payload is measured timings).
    fn is_analyze_key(key: &str) -> bool {
        key.starts_with("EXPLAIN ANALYZE ")
    }

    /// Whitespace/comment normalization behind [`Self::cache_key`].
    fn normalize_text(text: &str) -> String {
        let mut out = String::with_capacity(text.len());
        let mut chars = text.chars().peekable();
        let mut pending_space = false;
        let emit = |c: char, out: &mut String, pending: &mut bool| {
            if *pending && !out.is_empty() {
                out.push(' ');
            }
            *pending = false;
            out.push(c);
        };
        while let Some(c) = chars.next() {
            match c {
                '\'' => {
                    emit('\'', &mut out, &mut pending_space);
                    for c in chars.by_ref() {
                        out.push(c);
                        if c == '\'' {
                            break;
                        }
                    }
                }
                '-' if chars.peek() == Some(&'-') => {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            break;
                        }
                    }
                    pending_space = true;
                }
                c if c.is_whitespace() => pending_space = true,
                c => emit(c, &mut out, &mut pending_space),
            }
        }
        out
    }

    /// Serve one ProQL query: from the result cache when a fresh entry
    /// exists; otherwise via the prepared-plan cache — a cached plan
    /// (validated against statistics drift) skips parse → translate →
    /// optimize — executing against the current snapshot and caching the
    /// answer keyed by its read set.
    pub fn query(&self, text: &str) -> Result<QueryResponse> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut sp = trace::span("service.query");
        let key = ServiceCore::cache_key(text);
        // EXPLAIN ANALYZE answers are measurements, not results: always
        // re-execute (plan-cache reuse is still fine — it's what the
        // measurement is *of*).
        let analyze = ServiceCore::is_analyze_key(&key);
        if !analyze {
            let mut cache = lock(&self.cache);
            // Read the published version while holding the cache lock:
            // writers record their write set before publishing, so an
            // entry that passes the epoch check is valid at `version`.
            let version = read_lock(&self.state).version;
            if let Some(output) = cache.lookup(&key) {
                sp.field("cache", "hit");
                return Ok(QueryResponse {
                    version,
                    cache_hit: true,
                    plan_cache_hit: false,
                    output,
                });
            }
        }
        sp.field("cache", if analyze { "bypass" } else { "miss" });
        let snap = self.snapshot();
        // Result miss: reuse the cached plan when its statistics are
        // still current (plan reuse is always *correct*; the fingerprint
        // check only guards cost-optimality).
        let cached_plan = lock(&self.plans).lookup(&key, snap.version, |touched| {
            snap.engine.stats_fingerprint(touched)
        });
        let (prepared, plan_cache_hit) = match cached_plan {
            Some(p) => (p, true),
            None => {
                // Prepare outside the plan lock: translation can be slow
                // and must not serialize other queries' lookups. A racing
                // duplicate prepare is benign (last insert wins).
                let p = Arc::new(snap.engine.prepare(text)?);
                lock(&self.plans).insert(key.clone(), Arc::clone(&p), snap.version);
                (p, false)
            }
        };
        sp.field("plan_cache", if plan_cache_hit { "hit" } else { "miss" });
        let output = Arc::new(snap.engine.execute(&prepared)?);
        if !analyze {
            lock(&self.cache).insert(
                key,
                output.touched.clone(),
                snap.version,
                Arc::clone(&output),
                Arc::clone(&prepared),
            );
        }
        Ok(QueryResponse {
            version: snap.version,
            cache_hit: false,
            plan_cache_hit,
            output,
        })
    }

    /// Apply a mutation through the single-writer path: clone the
    /// current system **copy-on-write** (O(#relations) pointer bumps —
    /// only the tables the mutation touches are materialized), run
    /// `mutate` on the clone, then publish the result as the next
    /// snapshot. The published engine **adopts** the previous snapshot's
    /// cached provenance graph, so the first graph query after the write
    /// pays a delta patch instead of a from-scratch rebuild.
    ///
    /// `mutate` returns the write set — the relations it modified —
    /// which is recorded in the cache *before* the new snapshot becomes
    /// visible; returning `None` reports a no-op (nothing is published,
    /// no entry is evicted).
    ///
    /// Before publishing, every **fresh** cache entry whose read set
    /// intersects the write set is run through incremental view
    /// maintenance ([`proql::maintain_output`]): the entry's unfolded
    /// rules are re-run in delta form over the `(snapshot, delta)` pair
    /// and the cached answer is patched to the new version in O(delta).
    /// Entries the maintainer cannot localize (graph-walk answers,
    /// set-valued semirings, broken delta chains, oversized deltas) fall
    /// back to the old behavior — eviction — so maintenance is never a
    /// correctness risk. The patched entries are installed, the write
    /// epoch recorded, and the snapshot published under one cache lock
    /// acquisition, so no reader can observe a new-version answer at the
    /// old published version.
    fn write<T>(
        &self,
        mutate: impl FnOnce(&Snapshot, &mut ProvenanceSystem) -> Result<Option<(BTreeSet<String>, T)>>,
    ) -> Result<Option<(u64, T)>> {
        let _gate = lock(&self.write_gate);
        if self.read_only.load(Ordering::Relaxed) {
            return Err(Error::Other(
                "read-only replica: writes must go to the primary".into(),
            ));
        }
        let mut sp = trace::span("service.write");
        let current = self.snapshot();
        let mut sys = current.engine.sys.clone();
        let Some((write_set, value)) = mutate(&current, &mut sys)? else {
            return Ok(None);
        };
        let version = sys.version();
        debug_assert!(version > current.version, "mutations must bump the version");
        let engine = Engine::with_options(sys, self.options.clone());
        engine.adopt_graph_cache(&current.engine);
        let next = Arc::new(Snapshot { version, engine });
        self.publish(&current, next, &write_set);
        self.writes.fetch_add(1, Ordering::Relaxed);
        sp.field("version", version.to_string());
        Ok(Some((version, value)))
    }

    /// The shared publish tail of every state transition — local writes
    /// and replicated applies alike. Caller holds the write gate. Runs
    /// incremental maintenance over intersecting cache entries, installs
    /// the results + write epoch + snapshot under one cache lock, then
    /// notifies query subscribers and streams the transition to replica
    /// subscribers.
    fn publish(&self, current: &Snapshot, next: Arc<Snapshot>, write_set: &BTreeSet<String>) {
        let version = next.version;
        // Maintenance runs outside the cache lock (it executes delta
        // plans); the write gate keeps the candidate set stable against
        // other writers, and racing readers still see the old entries at
        // the old published version.
        let maintained = if self.maintenance {
            let candidates = lock(&self.cache).take_maintenance_candidates(write_set);
            candidates
                .into_iter()
                .map(|c| {
                    let outcome = maintain_output(
                        &current.engine,
                        &next.engine,
                        &c.prepared,
                        &c.previous,
                        c.state,
                    );
                    (c.key, outcome)
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut events: Vec<(String, SubscriptionEvent)> = Vec::new();
        {
            let mut cache = lock(&self.cache);
            for (key, outcome) in maintained {
                match outcome {
                    Ok(MaintainResult::Maintained {
                        output,
                        rows_patched,
                        state,
                    }) => {
                        let digest = result_digest(&output);
                        cache.apply_maintained(
                            &key,
                            Arc::new(*output),
                            state,
                            version,
                            rows_patched,
                        );
                        events.push((
                            key,
                            SubscriptionEvent::Delta {
                                version,
                                rows_patched,
                                digest,
                            },
                        ));
                    }
                    Ok(MaintainResult::Fallback(_)) | Err(_) => {
                        cache.maintenance_fallback(&key);
                        events.push((key, SubscriptionEvent::Resync { version }));
                    }
                }
            }
            cache.record_write(write_set.iter().map(String::as_str), version);
            // The outgoing snapshot's engine retires here: fold its graph
            // counters into the service-lifetime accumulators (stragglers
            // still reading it may add a few more — an acceptable
            // undercount for monotonic service-level counters).
            self.graph_builds
                .fetch_add(current.engine.graph_build_count(), Ordering::Relaxed);
            self.graph_patches
                .fetch_add(current.engine.graph_patch_count(), Ordering::Relaxed);
            *write_lock(&self.state) = Arc::clone(&next);
        }
        self.notify_subscribers(write_set, version, &events);
        self.stream_to_replicas(current.version, &next);
    }

    /// Push this write's outcome to every subscription whose read set it
    /// intersects: a `Delta` when the subscribed entry was maintained, a
    /// `Resync` otherwise (fallback, eviction, or maintenance disabled).
    /// Subscriptions whose receiver hung up are pruned.
    fn notify_subscribers(
        &self,
        write_set: &BTreeSet<String>,
        version: u64,
        events: &[(String, SubscriptionEvent)],
    ) {
        let mut subs = lock(&self.subs);
        if subs.is_empty() {
            return;
        }
        subs.retain(|sub| {
            if !sub.deps.iter().any(|d| write_set.contains(d)) {
                return true;
            }
            let event = events
                .iter()
                .find(|(key, _)| *key == sub.key)
                .map(|(_, e)| *e)
                .unwrap_or(SubscriptionEvent::Resync { version });
            (sub.sink)(sub.id, event)
        });
    }

    /// CDSS deletion: remove a tuple from `relation`'s local table and
    /// garbage-collect everything no longer derivable. The derivability
    /// analysis runs against the current snapshot's cached provenance
    /// graph (building it once if absent — later deletes patch it
    /// forward), so a delete costs the cascade, not a graph rebuild.
    /// Returns the new version and the deletion stats (whose `touched`
    /// set drove cache invalidation).
    pub fn delete(&self, relation: &str, key: &Tuple) -> Result<(u64, DeleteStats)> {
        let published = self.write(|snap, sys| {
            let graph = snap.engine.graph()?;
            let stats = delete_local_with_graph(sys, relation, key, &graph)?;
            Ok(Some((stats.touched.clone(), stats)))
        })?;
        Ok(published.expect("a successful deletion is never a no-op"))
    }

    /// Insert a tuple into `relation`'s local table and re-run the
    /// exchange (incrementally — seeded with just this row). The write
    /// set rides the sealed graph deltas: exactly the base tables the
    /// insert and its exchange touched. A duplicate insert is a no-op
    /// under set semantics: nothing is published, no cache entry dies,
    /// and the current version is returned with an empty write set.
    pub fn insert_and_exchange(
        &self,
        relation: &str,
        tuple: Tuple,
    ) -> Result<(u64, BTreeSet<String>)> {
        let published = self.write(|_snap, sys| {
            let v0 = sys.version();
            if !sys.insert_local(relation, tuple)? {
                return Ok(None);
            }
            sys.run_exchange()?;
            // Derive the write set from the mutation's own delta entries;
            // if the log cannot bridge the span (it always should for a
            // tracked insert+exchange), fail safe to "everything".
            let write_set = sys
                .write_set_since(v0)
                .unwrap_or_else(|| sys.db.table_names().map(str::to_string).collect());
            Ok(Some((write_set.clone(), write_set)))
        })?;
        Ok(published.unwrap_or_else(|| (self.version(), BTreeSet::new())))
    }

    /// Drop every cached result (the `INVALIDATE` verb). Returns how many
    /// entries were dropped. Prepared plans survive — they are
    /// correctness-independent of data, so only statistics drift (checked
    /// on every reuse) retires them.
    pub fn invalidate(&self) -> usize {
        lock(&self.cache).clear()
    }

    /// Subscribe to a query (the `SUBSCRIBE` verb): runs it once (warming
    /// the cache entry maintenance keeps patched) and registers `sender`
    /// to receive `(subscription id, event)` pairs on every write that
    /// intersects the answer's read set — [`SubscriptionEvent::Delta`]
    /// when the answer was patched forward, [`SubscriptionEvent::Resync`]
    /// when the subscriber must re-query. One sender can serve many
    /// subscriptions (the TCP server uses one channel per connection).
    pub fn subscribe_with(
        &self,
        text: &str,
        sender: mpsc::Sender<(u64, SubscriptionEvent)>,
    ) -> Result<(u64, QueryResponse)> {
        self.subscribe_sink(
            text,
            Box::new(move |id, event| sender.send((id, event)).is_ok()),
        )
    }

    /// [`Self::subscribe_with`] with an arbitrary delivery callback
    /// instead of an mpsc channel. The event-loop server uses this to
    /// write PUSH frames straight into a connection's outbound queue —
    /// no per-subscription channel, no polling cadence. The sink
    /// returning `false` prunes the subscription.
    pub fn subscribe_sink(&self, text: &str, sink: PushSink) -> Result<(u64, QueryResponse)> {
        let resp = self.query(text)?;
        let id = self.next_sub_id.fetch_add(1, Ordering::Relaxed) + 1;
        lock(&self.subs).push(Subscription {
            id,
            key: ServiceCore::cache_key(text),
            deps: resp.output.touched.clone(),
            sink,
        });
        Ok((id, resp))
    }

    /// [`Self::subscribe_with`] over a private channel: returns the
    /// subscription id, the initial answer, and the event receiver.
    pub fn subscribe(&self, text: &str) -> Result<(u64, QueryResponse, SubscriptionReceiver)> {
        let (tx, rx) = mpsc::channel();
        let (id, resp) = self.subscribe_with(text, tx)?;
        Ok((id, resp, rx))
    }

    /// Drop a subscription. Returns whether it was live.
    pub fn unsubscribe(&self, id: u64) -> bool {
        let mut subs = lock(&self.subs);
        let before = subs.len();
        subs.retain(|s| s.id != id);
        subs.len() < before
    }

    /// Live subscriptions.
    pub fn subscription_count(&self) -> usize {
        lock(&self.subs).len()
    }

    /// The published provenance graph's digest — the bit-identity check
    /// replicas replay against (0 when the graph cannot be built, which
    /// downgrades the check to "unchecked" rather than failing writes).
    pub fn graph_digest(&self) -> u64 {
        let snap = self.snapshot();
        snap.engine.graph().map(|g| g.digest()).unwrap_or(0)
    }

    /// Switch replica mode on or off: a read-only node refuses local
    /// mutations ([`Self::delete`] / [`Self::insert_and_exchange`]), so
    /// its state only ever advances by replication frames.
    pub fn set_read_only(&self, read_only: bool) {
        self.read_only.store(read_only, Ordering::Relaxed);
    }

    /// Whether this node is in replica (read-only) mode.
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::Relaxed)
    }

    /// Break the delta chain without changing data (the admin/test lever
    /// behind broken-chain recovery): bumps the version out-of-band,
    /// which resets the delta log, so the **next** replication event
    /// falls back to a full snapshot transfer. Returns the new version.
    pub fn rotate_delta_chain(&self) -> Result<u64> {
        let published = self.write(|_snap, sys| {
            sys.bump_version();
            Ok(Some((BTreeSet::new(), ())))
        })?;
        Ok(published.expect("rotation always publishes").0)
    }

    /// Record that this node's replica loop re-subscribed to its primary
    /// (a reconnect or digest-mismatch recovery).
    pub fn note_repl_resubscribe(&self) {
        self.repl_resubscribes.fetch_add(1, Ordering::Relaxed);
    }

    /// Subscribe a replica: `sink` receives every future published write
    /// as encoded replication frames (see [`wire`]), after being caught
    /// up from `from_version` to the current version — via the delta log
    /// when it can bridge the span, via a full snapshot otherwise (or
    /// when `force_snapshot` is set: the digest-mismatch recovery path,
    /// where re-streaming deltas from the same version would replay the
    /// same corruption). Returns the subscription id.
    pub fn repl_subscribe_sink(
        &self,
        from_version: u64,
        force_snapshot: bool,
        sink: ReplSink,
    ) -> u64 {
        let id = self.next_repl_id.fetch_add(1, Ordering::Relaxed) + 1;
        // Lock order matters: taking the repl lock *before* reading the
        // snapshot means a write publishing after our read blocks on
        // this lock and re-delivers its frames once we are registered —
        // no transition can fall between catch-up and live streaming.
        // Replicas treat re-delivered versions as stale no-ops.
        let mut repl = lock(&self.repl);
        let snap = self.snapshot();
        let sys = &snap.engine.sys;
        let now = wall_micros();
        let digest = snap.engine.graph().map(|g| g.digest()).unwrap_or(0);
        let snapshot_frame = || {
            (
                ReplFrameKind::Snapshot,
                Arc::new(wire::encode_snapshot_parts(
                    snap.version,
                    digest,
                    now,
                    &sys.snapshot_tables(),
                )),
            )
        };
        let catch_up: Vec<(ReplFrameKind, Arc<Vec<u8>>)> =
            if force_snapshot || from_version > snap.version {
                vec![snapshot_frame()]
            } else if from_version == snap.version {
                Vec::new()
            } else {
                match Self::delta_frames(sys, from_version, snap.version, digest, now) {
                    Some(frames) => frames,
                    None => vec![snapshot_frame()],
                }
            };
        let mut alive = true;
        for (kind, payload) in &catch_up {
            self.count_streamed(*kind);
            if !sink(*kind, payload) {
                alive = false;
                break;
            }
        }
        if alive {
            repl.push(ReplSub { id, sink });
        }
        id
    }

    /// Drop a replica subscription. Returns whether it was live.
    pub fn repl_unsubscribe(&self, id: u64) -> bool {
        let mut repl = lock(&self.repl);
        let before = repl.len();
        repl.retain(|s| s.id != id);
        repl.len() < before
    }

    /// Live replica subscriptions.
    pub fn repl_subscriber_count(&self) -> usize {
        lock(&self.repl).len()
    }

    /// Encode one `REPL_DELTA` frame per sealed log entry bridging
    /// `from` → `to`, or `None` when the log cannot (chain broken by an
    /// out-of-band bump, an oversized mutation, or retention trimming).
    /// Only the head frame carries the graph digest — intermediate
    /// versions' graphs are never materialized — so replicas check
    /// bit-identity exactly at the versions the primary vouches for.
    fn delta_frames(
        sys: &ProvenanceSystem,
        from: u64,
        to: u64,
        head_digest: u64,
        now: u64,
    ) -> Option<Vec<(ReplFrameKind, Arc<Vec<u8>>)>> {
        let entries: Vec<_> = sys.delta_entries(from, to)?.collect();
        if entries.len() as u64 != to - from || entries.iter().any(|d| d.is_overflowed()) {
            return None;
        }
        let n = entries.len();
        Some(
            entries
                .into_iter()
                .enumerate()
                .map(|(i, d)| {
                    let version = from + i as u64 + 1;
                    let digest = if i + 1 == n { head_digest } else { 0 };
                    let payload = wire::encode_delta_parts(version, digest, now, d);
                    (ReplFrameKind::Delta, Arc::new(payload))
                })
                .collect(),
        )
    }

    fn count_streamed(&self, kind: ReplFrameKind) {
        match kind {
            ReplFrameKind::Delta => &self.repl_deltas_streamed,
            ReplFrameKind::Snapshot => &self.repl_snapshots_streamed,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Stream a just-published transition to every replica subscriber:
    /// delta frames when the log bridges `from_version` → `next.version`,
    /// one full snapshot otherwise (the counted, never-silent fallback).
    /// Payloads are encoded once and shared across subscribers. Chained
    /// topologies compose: a replica applying a delta re-seals it in its
    /// own log, so its downstream gets deltas too, while a snapshot
    /// install resets the log and cascades a snapshot.
    fn stream_to_replicas(&self, from_version: u64, next: &Snapshot) {
        let mut repl = lock(&self.repl);
        if repl.is_empty() {
            return;
        }
        let now = wall_micros();
        let digest = next.engine.graph().map(|g| g.digest()).unwrap_or(0);
        let sys = &next.engine.sys;
        let frames = Self::delta_frames(sys, from_version, next.version, digest, now)
            .unwrap_or_else(|| {
                vec![(
                    ReplFrameKind::Snapshot,
                    Arc::new(wire::encode_snapshot_parts(
                        next.version,
                        digest,
                        now,
                        &sys.snapshot_tables(),
                    )),
                )]
            });
        repl.retain(|sub| {
            for (kind, payload) in &frames {
                self.count_streamed(*kind);
                if !(sub.sink)(*kind, payload) {
                    return false;
                }
            }
            true
        });
    }

    /// Apply one replicated delta frame (the replica-side write path).
    /// The frame must chain directly onto the node's version; the
    /// replayed provenance graph's digest is checked against the
    /// primary's **before** publishing, so corrupt state is never
    /// served. On success the transition runs the same publish tail as
    /// a local write — cache maintenance, subscriber pushes, and
    /// streaming to this node's own replica subscribers all behave
    /// identically.
    pub fn apply_repl_delta_frame(&self, frame: &wire::DeltaFrame) -> Result<ReplApplyOutcome> {
        let _gate = lock(&self.write_gate);
        let current = self.snapshot();
        if frame.version <= current.version {
            return Ok(ReplApplyOutcome::Stale {
                version: current.version,
            });
        }
        if frame.version != current.version + 1 {
            return Ok(ReplApplyOutcome::Gap {
                local: current.version,
                frame: frame.version,
            });
        }
        let mut sys = current.engine.sys.clone();
        sys.apply_replica_delta(frame.version, &frame.delta)?;
        let engine = Engine::with_options(sys, self.options.clone());
        engine.adopt_graph_cache(&current.engine);
        let next = Arc::new(Snapshot {
            version: frame.version,
            engine,
        });
        if frame.digest != 0 {
            let actual = next.engine.graph()?.digest();
            if actual != frame.digest {
                self.repl_digest_mismatches.fetch_add(1, Ordering::Relaxed);
                return Ok(ReplApplyOutcome::DigestMismatch {
                    version: frame.version,
                    expected: frame.digest,
                    actual,
                });
            }
        }
        self.publish(&current, next, &frame.delta.touched);
        self.record_repl_lag(frame.sealed_at_micros);
        self.repl_deltas_applied.fetch_add(1, Ordering::Relaxed);
        Ok(ReplApplyOutcome::Applied {
            version: frame.version,
        })
    }

    /// Install a full snapshot frame (the broken-chain / forced-recovery
    /// path). Replaces every stored table wholesale, so the result cache
    /// is cleared rather than maintained and every intersecting
    /// subscriber is told to resync. The installed state's digest is
    /// checked before publishing, exactly like the delta path.
    pub fn install_repl_snapshot_frame(
        &self,
        frame: &wire::SnapshotFrame,
    ) -> Result<ReplApplyOutcome> {
        let _gate = lock(&self.write_gate);
        let current = self.snapshot();
        if frame.version < current.version {
            return Ok(ReplApplyOutcome::Stale {
                version: current.version,
            });
        }
        let mut sys = current.engine.sys.clone();
        sys.install_snapshot(frame.version, &frame.tables)?;
        let engine = Engine::with_options(sys, self.options.clone());
        // No graph adoption: table state was replaced wholesale, so the
        // graph must rebuild from scratch.
        let next = Arc::new(Snapshot {
            version: frame.version,
            engine,
        });
        if frame.digest != 0 {
            let actual = next.engine.graph()?.digest();
            if actual != frame.digest {
                self.repl_digest_mismatches.fetch_add(1, Ordering::Relaxed);
                return Ok(ReplApplyOutcome::DigestMismatch {
                    version: frame.version,
                    expected: frame.digest,
                    actual,
                });
            }
        }
        let write_set: BTreeSet<String> = next
            .engine
            .sys
            .db
            .table_names()
            .map(str::to_string)
            .collect();
        {
            let mut cache = lock(&self.cache);
            cache.clear();
            cache.record_write(write_set.iter().map(String::as_str), frame.version);
            self.graph_builds
                .fetch_add(current.engine.graph_build_count(), Ordering::Relaxed);
            self.graph_patches
                .fetch_add(current.engine.graph_patch_count(), Ordering::Relaxed);
            *write_lock(&self.state) = Arc::clone(&next);
        }
        self.notify_subscribers(&write_set, frame.version, &[]);
        self.stream_to_replicas(current.version, &next);
        self.record_repl_lag(frame.sealed_at_micros);
        self.repl_snapshots_installed
            .fetch_add(1, Ordering::Relaxed);
        Ok(ReplApplyOutcome::Applied {
            version: frame.version,
        })
    }

    /// Record primary-seal → local-publish latency. Meaningful when the
    /// primary shares this node's clock domain (the multi-process
    /// benchmark's setup); clock skew can only inflate the number, never
    /// hide real lag on one host.
    fn record_repl_lag(&self, sealed_at_micros: u64) {
        if sealed_at_micros == 0 {
            return;
        }
        let now = wall_micros();
        let lag_micros = now.saturating_sub(sealed_at_micros);
        self.repl_lag.record_nanos(lag_micros.saturating_mul(1000));
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> ServiceStats {
        let (entries, counters) = {
            let cache = lock(&self.cache);
            (cache.len() as u64, cache.counters())
        };
        let (plan_entries, plan_counters) = {
            let plans = lock(&self.plans);
            (plans.len() as u64, plans.counters())
        };
        let transport = lock(&self.transport)
            .as_ref()
            .map(|m| m.snapshot())
            .unwrap_or_default();
        let snap = self.snapshot();
        let lag = self.repl_lag.snapshot();
        ServiceStats {
            version: snap.version,
            queries: self.queries.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            cache_entries: entries,
            cache: counters,
            plan_entries,
            plans: plan_counters,
            delta_compactions: snap.engine.sys.delta_compactions(),
            graph_builds: self.graph_builds.load(Ordering::Relaxed)
                + snap.engine.graph_build_count(),
            graph_patches: self.graph_patches.load(Ordering::Relaxed)
                + snap.engine.graph_patch_count(),
            transport,
            delta_log_depth: snap.engine.sys.delta_log_depth() as u64,
            delta_log_base: snap.engine.sys.delta_log_base(),
            delta_log_cap: snap.engine.sys.delta_log_capacity() as u64,
            repl_subscribers: self.repl_subscriber_count() as u64,
            repl_deltas_streamed: self.repl_deltas_streamed.load(Ordering::Relaxed),
            repl_snapshots_streamed: self.repl_snapshots_streamed.load(Ordering::Relaxed),
            repl_deltas_applied: self.repl_deltas_applied.load(Ordering::Relaxed),
            repl_snapshots_installed: self.repl_snapshots_installed.load(Ordering::Relaxed),
            repl_digest_mismatches: self.repl_digest_mismatches.load(Ordering::Relaxed),
            repl_resubscribes: self.repl_resubscribes.load(Ordering::Relaxed),
            repl_lag_count: lag.count(),
            repl_lag_p50_ms: lag.percentile_ms(0.50),
            repl_lag_p99_ms: lag.percentile_ms(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::{tup, Schema, ValueType};

    /// Two disconnected mapping families: X → Y (via mxy) and U → V (via
    /// muv). A query over one family must not be invalidated by writes to
    /// the other.
    fn two_island_system() -> ProvenanceSystem {
        let mut sys = ProvenanceSystem::new();
        for name in ["X", "Y", "U", "V"] {
            sys.add_relation_with_local(
                Schema::build(name, &[("id", ValueType::Int), ("w", ValueType::Int)], &[0])
                    .unwrap(),
            )
            .unwrap();
        }
        sys.add_mapping_text("mxy: Y(i, w) :- X(i, w)").unwrap();
        sys.add_mapping_text("muv: V(i, w) :- U(i, w)").unwrap();
        for i in 0..5 {
            sys.insert_local("X", tup![i, i * 10]).unwrap();
            sys.insert_local("U", tup![i, i * 10]).unwrap();
        }
        sys.run_exchange().unwrap();
        sys
    }

    const Q_Y: &str = "FOR [Y $x] INCLUDE PATH [$x] <-+ [] RETURN $x";
    const Q_V: &str = "FOR [V $x] INCLUDE PATH [$x] <-+ [] RETURN $x";

    #[test]
    fn repeat_query_hits_cache() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let first = core.query(Q_Y).unwrap();
        assert!(!first.cache_hit);
        let second = core.query(Q_Y).unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.version, second.version);
        assert_eq!(
            first.output.projection.bindings,
            second.output.projection.bindings
        );
        let stats = core.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.queries, 2);
    }

    #[test]
    fn whitespace_variants_share_a_cache_entry() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(Q_Y).unwrap();
        let reformatted = "FOR   [Y $x]\n  INCLUDE PATH [$x] <-+ []\n  RETURN $x";
        assert!(core.query(reformatted).unwrap().cache_hit);
    }

    #[test]
    fn cache_key_preserves_string_literals_and_strips_comments() {
        // Whitespace inside single-quoted literals is significant: these
        // are different predicates and must not share a cache entry.
        let a = ServiceCore::cache_key("FOR [Y $x] WHERE $x.n = 'a b' RETURN $x");
        let b = ServiceCore::cache_key("FOR [Y $x] WHERE $x.n = 'a  b' RETURN $x");
        assert_ne!(a, b);
        // `--` line comments are insignificant, like in the lexer.
        let c = ServiceCore::cache_key("FOR [Y $x] -- note\n RETURN $x");
        assert_eq!(c, "FOR [Y $x] RETURN $x");
        // The `<-+` arrow is untouched by comment stripping.
        assert_eq!(ServiceCore::cache_key("[$x]  <-+   []"), "[$x] <-+ []");
    }

    #[test]
    fn write_to_unrelated_relation_keeps_entry_hot() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let before = core.query(Q_Y).unwrap();
        // Delete in the U/V island: the Y answer depends only on X/Y.
        let (v, stats) = core.delete("U", &tup![0]).unwrap();
        assert!(v > before.version);
        assert!(!stats.touched.contains("X_l"));
        let after = core.query(Q_Y).unwrap();
        assert!(after.cache_hit, "unrelated write must not evict");
        assert_eq!(after.version, v, "hit must report the current version");
        assert_eq!(
            before.output.projection.bindings,
            after.output.projection.bindings
        );
    }

    #[test]
    fn write_to_touched_relation_maintains_entry() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let before = core.query(Q_Y).unwrap();
        assert_eq!(before.output.projection.bindings.len(), 5);
        let (v, _) = core.delete("X", &tup![0]).unwrap();
        let after = core.query(Q_Y).unwrap();
        assert!(
            after.cache_hit,
            "a localizable write must patch the entry, not evict it"
        );
        assert_eq!(after.version, v);
        assert_eq!(after.output.projection.bindings.len(), 4);
        // The patched answer is bit-identical to a fresh recomputation.
        let fresh = core.snapshot().engine.query(Q_Y).unwrap();
        assert_eq!(result_digest(&after.output), result_digest(&fresh));
        let stats = core.stats();
        assert_eq!(stats.cache.maint_hits, 1);
        assert_eq!(stats.cache.maint_fallbacks, 0);
        assert!(stats.cache.maint_rows_patched > 0);
        assert_eq!(stats.cache.stale_evictions, 0);
    }

    #[test]
    fn maintenance_disabled_reproduces_evict_on_write() {
        let core =
            ServiceCore::new(two_island_system(), EngineOptions::default()).with_maintenance(false);
        let before = core.query(Q_Y).unwrap();
        assert_eq!(before.output.projection.bindings.len(), 5);
        let (v, _) = core.delete("X", &tup![0]).unwrap();
        let after = core.query(Q_Y).unwrap();
        assert!(!after.cache_hit, "write to a dependency must evict");
        assert_eq!(after.version, v);
        assert_eq!(after.output.projection.bindings.len(), 4);
        let stats = core.stats();
        assert_eq!(stats.cache.stale_evictions, 1);
        assert_eq!(stats.cache.maint_hits, 0);
    }

    #[test]
    fn insert_and_exchange_maintains_dependent_entries() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(Q_Y).unwrap();
        core.query(Q_V).unwrap();
        let (_, write_set) = core.insert_and_exchange("X", tup![9, 90]).unwrap();
        assert!(write_set.contains("X_l"));
        assert!(write_set.contains("Y"), "write set: {write_set:?}");
        assert!(!write_set.contains("V"), "write set: {write_set:?}");
        let y = core.query(Q_Y).unwrap();
        assert!(y.cache_hit, "insert+exchange must patch the Y entry");
        assert_eq!(y.output.projection.bindings.len(), 6);
        let fresh = core.snapshot().engine.query(Q_Y).unwrap();
        assert_eq!(result_digest(&y.output), result_digest(&fresh));
        assert!(core.query(Q_V).unwrap().cache_hit);
        assert_eq!(core.stats().cache.maint_hits, 1);
    }

    #[test]
    fn maintained_annotation_entry_carries_state_across_rounds() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let q = "EVALUATE WEIGHT OF { FOR [Y $x] INCLUDE PATH [$x] <-+ [] RETURN $x } \
                 ASSIGNING EACH leaf_node $y { DEFAULT : SET 1 }";
        core.query(q).unwrap();
        // Two maintenance rounds: the second reuses the carry-over state.
        core.insert_and_exchange("X", tup![7, 70]).unwrap();
        let r1 = core.query(q).unwrap();
        assert!(r1.cache_hit, "round 1 must maintain");
        core.delete("X", &tup![1]).unwrap();
        let r2 = core.query(q).unwrap();
        assert!(r2.cache_hit, "round 2 must maintain");
        let fresh = core.snapshot().engine.query(q).unwrap();
        assert_eq!(result_digest(&r2.output), result_digest(&fresh));
        assert_eq!(core.stats().cache.maint_hits, 2);
    }

    #[test]
    fn duplicate_insert_is_a_noop_and_evicts_nothing() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(Q_Y).unwrap();
        let v0 = core.version();
        // X_l already holds (0, 0): set semantics make this a no-op.
        let (v, write_set) = core.insert_and_exchange("X", tup![0, 0]).unwrap();
        assert_eq!(v, v0, "no-op insert must not publish a new version");
        assert!(write_set.is_empty());
        assert!(
            core.query(Q_Y).unwrap().cache_hit,
            "no-op must evict nothing"
        );
        assert_eq!(core.stats().writes, 0);
    }

    #[test]
    fn result_miss_reuses_cached_plan() {
        // Maintenance off: this test is about the plan-reuse path under
        // forced result misses (the ablation baseline's hot path).
        let core =
            ServiceCore::new(two_island_system(), EngineOptions::default()).with_maintenance(false);
        let first = core.query(Q_Y).unwrap();
        assert!(!first.cache_hit && !first.plan_cache_hit);
        // A write to a dependency evicts the result but not the plan: the
        // point delete stays within the stats fingerprint's buckets.
        core.delete("X", &tup![0]).unwrap();
        let second = core.query(Q_Y).unwrap();
        assert!(!second.cache_hit, "result must re-execute after the write");
        assert!(second.plan_cache_hit, "plan must be reused");
        assert_eq!(second.output.projection.bindings.len(), 4);
        let stats = core.stats();
        assert_eq!(stats.plans.hits, 1);
        assert_eq!(stats.plans.misses, 1);
        assert_eq!(stats.plan_entries, 1);
    }

    #[test]
    fn invalidate_keeps_plans_hot() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(Q_Y).unwrap();
        core.invalidate();
        let again = core.query(Q_Y).unwrap();
        assert!(!again.cache_hit);
        assert!(again.plan_cache_hit, "INVALIDATE must not drop plans");
        assert_eq!(again.output.projection.bindings.len(), 5);
    }

    #[test]
    fn plan_capacity_zero_disables_plan_reuse() {
        let core =
            ServiceCore::with_capacities(two_island_system(), EngineOptions::default(), 1024, 0);
        core.query(Q_Y).unwrap();
        core.invalidate();
        let again = core.query(Q_Y).unwrap();
        assert!(!again.plan_cache_hit);
        assert_eq!(core.stats().plans.hits, 0);
    }

    #[test]
    fn explain_over_the_service_reports_plan() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let resp = core
            .query("EXPLAIN FOR [Y $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap();
        let plan = resp.output.plan.as_deref().expect("EXPLAIN plan text");
        assert!(plan.contains("strategy:"), "{plan}");
        assert!(resp.output.projection.bindings.is_empty());
        // EXPLAIN and the plain query are distinct cache keys.
        assert!(!core.query(Q_Y).unwrap().cache_hit);
    }

    #[test]
    fn explain_flag_is_canonical_in_cache_keys() {
        // The parser matches keywords case-insensitively, so every case
        // variant of EXPLAIN is the same query and must share one entry…
        assert_eq!(
            ServiceCore::cache_key("explain FOR [Y $x] RETURN $x"),
            ServiceCore::cache_key("EXPLAIN  FOR [Y $x] RETURN $x")
        );
        assert_eq!(
            ServiceCore::cache_key("Explain -- plan?\n FOR [Y $x] RETURN $x"),
            ServiceCore::cache_key("EXPLAIN FOR [Y $x] RETURN $x")
        );
        // …that is never conflated with the plain query's entry: an
        // EXPLAIN answer has no result rows, so sharing a key would serve
        // an empty projection for the real query.
        assert_ne!(
            ServiceCore::cache_key("EXPLAIN FOR [Y $x] RETURN $x"),
            ServiceCore::cache_key("FOR [Y $x] RETURN $x")
        );
        // End to end: a lowercase `explain` hits the uppercase entry and
        // still leaves the plain query a miss.
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(&format!("EXPLAIN {Q_Y}")).unwrap();
        let variant = core.query(&format!("explain {Q_Y}")).unwrap();
        assert!(
            variant.cache_hit,
            "case variant of EXPLAIN must share the entry"
        );
        assert!(!core.query(Q_Y).unwrap().cache_hit);
    }

    #[test]
    fn explain_analyze_is_canonical_and_bypasses_the_result_cache() {
        // Case variants canonicalize to one key, distinct from plain
        // EXPLAIN (different payload: measured vs estimated).
        assert_eq!(
            ServiceCore::cache_key("explain analyze FOR [Y $x] RETURN $x"),
            ServiceCore::cache_key("EXPLAIN  ANALYZE  FOR [Y $x] RETURN $x")
        );
        assert_ne!(
            ServiceCore::cache_key("EXPLAIN ANALYZE FOR [Y $x] RETURN $x"),
            ServiceCore::cache_key("EXPLAIN FOR [Y $x] RETURN $x")
        );
        // End to end: analyze re-executes every time (its payload is
        // measured timings), but still reuses the prepared plan.
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let q = format!("EXPLAIN ANALYZE {Q_Y}");
        let first = core.query(&q).unwrap();
        assert!(!first.cache_hit);
        assert!(first.output.plan.as_deref().unwrap().contains("actual"));
        let second = core.query(&q).unwrap();
        assert!(!second.cache_hit, "analyze must bypass the result cache");
        assert!(second.plan_cache_hit, "analyze still reuses the plan");
    }

    #[test]
    fn stats_text_and_json_come_from_one_registry() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(Q_Y).unwrap();
        core.query(Q_Y).unwrap();
        core.delete("X", &tup![0]).unwrap();
        core.query(Q_Y).unwrap();
        let stats = core.stats();
        // Graph counters survive snapshot turnover: the first query built
        // the graph on the retired snapshot, the post-write query patched
        // (or rebuilt) on the current one.
        assert!(stats.graph_builds >= 1);
        let registry = stats.registry();
        assert_eq!(stats.to_json(), registry.to_json());
        assert_eq!(stats.to_text(), registry.to_text());
        // Every registry entry appears in both renderings with the same
        // rendered value — the two surfaces cannot drift.
        let json = stats.to_json();
        let text = stats.to_text();
        for (name, _) in registry.entries() {
            let line = text
                .lines()
                .find(|l| l.starts_with(&format!("{name} ")))
                .unwrap_or_else(|| panic!("{name} missing from text"));
            let value = line.split_once(' ').unwrap().1;
            assert!(
                json.contains(&format!("\"{name}\": {value}")),
                "{name}={value} missing from JSON"
            );
        }
    }

    #[test]
    fn subscriptions_receive_deltas_and_resyncs() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let (id, initial, rx) = core.subscribe(Q_Y).unwrap();
        assert_eq!(initial.output.projection.bindings.len(), 5);
        assert_eq!(core.subscription_count(), 1);

        // Unrelated write: no event.
        core.delete("U", &tup![0]).unwrap();
        assert!(rx.try_recv().is_err(), "unrelated write must not notify");

        // Touching write: maintained → a Delta event with the patched
        // answer's digest.
        let (v, _) = core.delete("X", &tup![0]).unwrap();
        let (got_id, event) = rx.try_recv().expect("touching write must notify");
        assert_eq!(got_id, id);
        match event {
            SubscriptionEvent::Delta {
                version,
                rows_patched,
                digest,
            } => {
                assert_eq!(version, v);
                assert!(rows_patched > 0);
                let served = core.query(Q_Y).unwrap();
                assert!(served.cache_hit);
                assert_eq!(digest, result_digest(&served.output));
            }
            other => panic!("expected Delta, got {other:?}"),
        }

        // INVALIDATE then a touching write: the entry is gone, so the
        // subscriber is told to resync.
        core.invalidate();
        let (v2, _) = core.delete("X", &tup![1]).unwrap();
        match rx.try_recv() {
            Ok((_, SubscriptionEvent::Resync { version })) => assert_eq!(version, v2),
            other => panic!("expected Resync, got {other:?}"),
        }

        assert!(core.unsubscribe(id));
        assert!(!core.unsubscribe(id));
        assert_eq!(core.subscription_count(), 0);
    }

    #[test]
    fn dropped_subscribers_are_pruned_on_notify() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let (_, _, rx) = core.subscribe(Q_Y).unwrap();
        drop(rx);
        core.delete("X", &tup![0]).unwrap();
        assert_eq!(
            core.subscription_count(),
            0,
            "hung-up subscriber must be pruned"
        );
    }

    #[test]
    fn invalidate_clears_everything() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(Q_Y).unwrap();
        core.query(Q_V).unwrap();
        assert_eq!(core.invalidate(), 2);
        assert!(!core.query(Q_Y).unwrap().cache_hit);
    }

    #[test]
    fn query_errors_are_not_cached() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        assert!(core.query("FOR [Y $x RETURN $x").is_err());
        assert_eq!(core.stats().cache_entries, 0);
    }

    #[test]
    fn failed_write_leaves_version_and_snapshot_unchanged() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let v0 = core.version();
        assert!(core.delete("X", &tup![99]).is_err());
        assert_eq!(core.version(), v0);
        assert_eq!(core.query(Q_Y).unwrap().output.projection.bindings.len(), 5);
    }

    #[test]
    fn writes_publish_shared_structure_snapshots() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let before = core.snapshot();
        core.insert_and_exchange("X", tup![9, 90]).unwrap();
        let after = core.snapshot();
        // The U/V island was untouched: its tables are shared pointers.
        assert!(before
            .engine
            .sys
            .db
            .shares_table_storage(&after.engine.sys.db, "U"));
        assert!(before
            .engine
            .sys
            .db
            .shares_table_storage(&after.engine.sys.db, "V"));
        // The written family was materialized copy-on-write.
        assert!(!before
            .engine
            .sys
            .db
            .shares_table_storage(&after.engine.sys.db, "X_l"));
        assert_eq!(before.engine.sys.db.table("X_l").unwrap().len(), 5);
        assert_eq!(after.engine.sys.db.table("X_l").unwrap().len(), 6);
    }

    #[test]
    fn deletes_ride_the_cached_graph_and_deltas() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        // First delete builds the graph once; the published snapshots
        // adopt and patch it, so no further full builds happen.
        core.delete("U", &tup![0]).unwrap();
        core.delete("U", &tup![1]).unwrap();
        core.delete("X", &tup![0]).unwrap();
        let snap = core.snapshot();
        let g = snap.engine.graph().unwrap();
        assert_eq!(
            snap.engine.graph_build_count(),
            0,
            "published engines must patch the adopted graph, not rebuild"
        );
        assert_eq!(
            g.digest(),
            proql_provgraph::ProvGraph::from_system(&snap.engine.sys)
                .unwrap()
                .digest(),
            "patched service graph must match a from-scratch rebuild"
        );
        // And query results over it are correct.
        let y = core.query(Q_Y).unwrap();
        assert_eq!(y.output.projection.bindings.len(), 4);
        let v = core.query(Q_V).unwrap();
        assert_eq!(v.output.projection.bindings.len(), 3);
    }

    #[test]
    fn service_core_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServiceCore>();
    }

    type ReplQueue = mpsc::Receiver<(ReplFrameKind, Arc<Vec<u8>>)>;

    /// A queueing replica sink plus a drain that applies everything it
    /// received to `core`, mimicking the replica loop in-process.
    fn repl_queue() -> (ReplSink, ReplQueue) {
        let (tx, rx) = mpsc::channel();
        let sink: ReplSink =
            Box::new(move |kind, payload| tx.send((kind, Arc::clone(payload))).is_ok());
        (sink, rx)
    }

    fn drain_apply(
        core: &ServiceCore,
        rx: &mpsc::Receiver<(ReplFrameKind, Arc<Vec<u8>>)>,
    ) -> Vec<ReplApplyOutcome> {
        let mut out = Vec::new();
        while let Ok((kind, payload)) = rx.try_recv() {
            let outcome = match kind {
                ReplFrameKind::Delta => core
                    .apply_repl_delta_frame(&wire::decode_delta_frame(&payload).unwrap())
                    .unwrap(),
                ReplFrameKind::Snapshot => core
                    .install_repl_snapshot_frame(&wire::decode_snapshot_frame(&payload).unwrap())
                    .unwrap(),
            };
            out.push(outcome);
        }
        out
    }

    #[test]
    fn replica_follows_primary_with_digest_identity() {
        let primary = ServiceCore::new(two_island_system(), EngineOptions::default());
        let replica = ServiceCore::new(two_island_system(), EngineOptions::default());
        replica.set_read_only(true);
        let (sink, rx) = repl_queue();
        primary.repl_subscribe_sink(replica.version(), false, sink);
        assert_eq!(primary.repl_subscriber_count(), 1);
        assert!(
            rx.try_recv().is_err(),
            "same-version join needs no catch-up"
        );

        primary.insert_and_exchange("X", tup![9, 90]).unwrap();
        primary.delete("U", &tup![0]).unwrap();
        let outcomes = drain_apply(&replica, &rx);
        assert!(!outcomes.is_empty());
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, ReplApplyOutcome::Applied { .. })));
        assert_eq!(replica.version(), primary.version());
        assert_eq!(replica.graph_digest(), primary.graph_digest());
        // Served answers are bit-identical across the two processes.
        let p = primary.query(Q_Y).unwrap();
        let r = replica.query(Q_Y).unwrap();
        assert_eq!(p.version, r.version);
        assert_eq!(result_digest(&p.output), result_digest(&r.output));
        assert!(replica.stats().repl_deltas_applied >= 2);
        assert_eq!(replica.stats().repl_snapshots_installed, 0);
        // Replica mode refuses local mutations.
        assert!(replica.delete("X", &tup![1]).is_err());
    }

    #[test]
    fn replica_maintains_its_own_cache_across_applied_deltas() {
        let primary = ServiceCore::new(two_island_system(), EngineOptions::default());
        let replica = ServiceCore::new(two_island_system(), EngineOptions::default());
        replica.set_read_only(true);
        let (sink, rx) = repl_queue();
        primary.repl_subscribe_sink(replica.version(), false, sink);
        // Warm the replica's cache, then replicate a touching write: the
        // apply path must run the same incremental maintenance a local
        // write would.
        replica.query(Q_Y).unwrap();
        primary.delete("X", &tup![0]).unwrap();
        drain_apply(&replica, &rx);
        let after = replica.query(Q_Y).unwrap();
        assert!(after.cache_hit, "replicated write must patch, not evict");
        assert_eq!(after.output.projection.bindings.len(), 4);
        assert_eq!(replica.stats().cache.maint_hits, 1);
    }

    #[test]
    fn rotated_chain_falls_back_to_snapshot_transfer() {
        let primary = ServiceCore::new(two_island_system(), EngineOptions::default());
        let replica = ServiceCore::new(two_island_system(), EngineOptions::default());
        replica.set_read_only(true);
        let (sink, rx) = repl_queue();
        primary.repl_subscribe_sink(replica.version(), false, sink);
        primary.rotate_delta_chain().unwrap();
        let outcomes = drain_apply(&replica, &rx);
        assert_eq!(outcomes.len(), 1);
        assert!(matches!(outcomes[0], ReplApplyOutcome::Applied { .. }));
        assert_eq!(replica.stats().repl_snapshots_installed, 1);
        assert!(primary.stats().repl_snapshots_streamed >= 1);
        assert_eq!(replica.version(), primary.version());
        assert_eq!(replica.graph_digest(), primary.graph_digest());
        // Streaming resumes with deltas after the snapshot resync.
        primary.insert_and_exchange("X", tup![8, 80]).unwrap();
        let outcomes = drain_apply(&replica, &rx);
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, ReplApplyOutcome::Applied { .. })));
        assert_eq!(replica.stats().repl_snapshots_installed, 1);
        assert_eq!(replica.graph_digest(), primary.graph_digest());
    }

    #[test]
    fn late_joiner_catches_up_from_the_delta_log() {
        let primary = ServiceCore::new(two_island_system(), EngineOptions::default());
        let replica = ServiceCore::new(two_island_system(), EngineOptions::default());
        let joined_at = replica.version();
        primary.insert_and_exchange("X", tup![7, 70]).unwrap();
        primary.delete("U", &tup![1]).unwrap();
        let (sink, rx) = repl_queue();
        primary.repl_subscribe_sink(joined_at, false, sink);
        let outcomes = drain_apply(&replica, &rx);
        assert!(!outcomes.is_empty());
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, ReplApplyOutcome::Applied { .. })));
        assert_eq!(replica.stats().repl_snapshots_installed, 0);
        assert_eq!(replica.version(), primary.version());
        assert_eq!(replica.graph_digest(), primary.graph_digest());
    }

    #[test]
    fn late_joiner_past_log_retention_gets_a_snapshot() {
        let mut sys = two_island_system();
        sys.set_delta_log_capacity(1);
        let primary = ServiceCore::new(sys, EngineOptions::default());
        let replica = ServiceCore::new(two_island_system(), EngineOptions::default());
        let joined_at = replica.version();
        // Two writes with a one-entry log: the span back to `joined_at`
        // is no longer bridgeable.
        primary.insert_and_exchange("X", tup![7, 70]).unwrap();
        primary.insert_and_exchange("X", tup![8, 80]).unwrap();
        let (sink, rx) = repl_queue();
        primary.repl_subscribe_sink(joined_at, false, sink);
        let outcomes = drain_apply(&replica, &rx);
        assert_eq!(outcomes.len(), 1);
        assert!(matches!(outcomes[0], ReplApplyOutcome::Applied { .. }));
        assert_eq!(replica.stats().repl_snapshots_installed, 1);
        assert_eq!(replica.graph_digest(), primary.graph_digest());
    }

    #[test]
    fn gapped_and_stale_frames_are_rejected_without_state_change() {
        let primary = ServiceCore::new(two_island_system(), EngineOptions::default());
        let replica = ServiceCore::new(two_island_system(), EngineOptions::default());
        let (sink, rx) = repl_queue();
        primary.repl_subscribe_sink(replica.version(), false, sink);
        primary.insert_and_exchange("X", tup![7, 70]).unwrap();
        let mut frames = Vec::new();
        while let Ok((kind, payload)) = rx.try_recv() {
            assert_eq!(kind, ReplFrameKind::Delta);
            frames.push(wire::decode_delta_frame(&payload).unwrap());
        }
        assert!(!frames.is_empty());
        let v0 = replica.version();
        // A frame from the future: gap, nothing applied.
        let mut gapped = frames[0].clone();
        gapped.version = v0 + 10;
        match replica.apply_repl_delta_frame(&gapped).unwrap() {
            ReplApplyOutcome::Gap { local, frame } => {
                assert_eq!(local, v0);
                assert_eq!(frame, v0 + 10);
            }
            other => panic!("expected Gap, got {other:?}"),
        }
        assert_eq!(replica.version(), v0);
        // Apply the real frames, then re-deliver them: stale no-ops.
        for f in &frames {
            assert!(matches!(
                replica.apply_repl_delta_frame(f).unwrap(),
                ReplApplyOutcome::Applied { .. }
            ));
        }
        let v1 = replica.version();
        for f in &frames {
            assert!(matches!(
                replica.apply_repl_delta_frame(f).unwrap(),
                ReplApplyOutcome::Stale { .. }
            ));
        }
        assert_eq!(replica.version(), v1);
        assert_eq!(replica.graph_digest(), primary.graph_digest());
    }

    #[test]
    fn digest_mismatch_is_detected_before_publish_and_snapshot_recovers() {
        let primary = ServiceCore::new(two_island_system(), EngineOptions::default());
        let replica = ServiceCore::new(two_island_system(), EngineOptions::default());
        let (sink, rx) = repl_queue();
        primary.repl_subscribe_sink(replica.version(), false, sink);
        primary.insert_and_exchange("X", tup![7, 70]).unwrap();
        let mut frames = Vec::new();
        while let Ok((kind, payload)) = rx.try_recv() {
            assert_eq!(kind, ReplFrameKind::Delta);
            frames.push(wire::decode_delta_frame(&payload).unwrap());
        }
        // Only the head frame of the span vouches a digest; apply the
        // intermediate frames cleanly, then tamper the head's digest.
        let mut head = frames.pop().unwrap();
        assert_ne!(head.digest, 0, "live head frames must carry the digest");
        for f in &frames {
            assert!(matches!(
                replica.apply_repl_delta_frame(f).unwrap(),
                ReplApplyOutcome::Applied { .. }
            ));
        }
        let v0 = replica.version();
        head.digest ^= 1;
        match replica.apply_repl_delta_frame(&head).unwrap() {
            ReplApplyOutcome::DigestMismatch { version, .. } => assert_eq!(version, v0 + 1),
            other => panic!("expected DigestMismatch, got {other:?}"),
        }
        assert_eq!(replica.version(), v0, "corrupt state must never publish");
        assert_eq!(replica.stats().repl_digest_mismatches, 1);
        // Recovery: force a snapshot resubscribe (re-streaming the same
        // deltas would replay the same mismatch).
        let (sink2, rx2) = repl_queue();
        replica.note_repl_resubscribe();
        primary.repl_subscribe_sink(replica.version(), true, sink2);
        let outcomes = drain_apply(&replica, &rx2);
        assert!(matches!(outcomes[0], ReplApplyOutcome::Applied { .. }));
        assert_eq!(replica.version(), primary.version());
        assert_eq!(replica.graph_digest(), primary.graph_digest());
        assert_eq!(replica.stats().repl_resubscribes, 1);
    }

    #[test]
    fn hung_up_replica_sinks_are_pruned() {
        let primary = ServiceCore::new(two_island_system(), EngineOptions::default());
        let (sink, rx) = repl_queue();
        let id = primary.repl_subscribe_sink(primary.version(), false, sink);
        drop(rx);
        primary.insert_and_exchange("X", tup![7, 70]).unwrap();
        assert_eq!(primary.repl_subscriber_count(), 0);
        assert!(!primary.repl_unsubscribe(id), "already pruned");
    }
}
