//! Hash-sharded scatter-gather read routing.
//!
//! Sharding exploits the same structure the result cache and the
//! incremental maintainer already lean on: a CDSS schema decomposes
//! into **relation families** — connected components of the "appears in
//! the same mapping rule" graph. Provenance edges only ever connect
//! relations inside one family (a derivation crosses a mapping, and
//! mappings define the components), so a family is a self-contained
//! provenance island: a shard holding a family's base data answers any
//! path query over that family exactly as a fat single node would.
//!
//! [`ShardMap`] computes the families by union-find over the system's
//! datalog program (locals `R_l` are tied to their base `R`, and the
//! translated provenance relations ride along because they appear in
//! the same rules) and assigns each family to a shard by FNV-1a hash of
//! its canonical (lexicographically smallest) member — deterministic
//! across processes, so every router and shard derives the identical
//! map from the schema alone.
//!
//! [`Router`] routes *statically*: it parses each incoming query and
//! collects every relation and mapping the text mentions (node
//! patterns, `$x in Rel` conditions, `<m` derivation patterns). That
//! is exact at family granularity — a path can only reach relations in
//! the family of any relation it mentions — and, unlike the engine's
//! runtime read set, it is data-independent, so the router needs no
//! local data at all. The mentioned set folds to the owning shard set
//! (memoized per query text). A query mentioning nothing (`FOR [$x]
//! <-+ [] ...`) walks the whole graph and fans out to every shard.
//! The common case — every relation in one family — is
//! forwarded to that single shard verbatim: **zero fan-out**, one hop,
//! and the shard's answer (digest included) is byte-identical to a fat
//! node's. Queries whose read set spans families are scattered to the
//! owning shards and gathered into a reply that carries each shard's
//! sub-answer under a `"shards"` array. The gather is deliberately
//! *not* presented as a composed relational answer: ProQL queries are
//! conjunctive, and a cross-family conjunction does not decompose into
//! a union of per-shard runs — composing it would require row-level
//! transfer, which this summary protocol does not carry. Clients that
//! need a true cross-family join run it against an unsharded node;
//! everything family-local scales out linearly with the shard count.

use crate::proto::{json_str, json_u64_field};
use crate::retry::{retry_with, RetryPolicy};
use crate::server::BinClient;
use proql::ast::{Condition, PathExpr, Query};
use proql::parse_query;
use proql_common::{Error, Result};
use proql_provgraph::ProvenanceSystem;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::SocketAddr;

/// FNV-1a 64-bit — the deterministic, dependency-free hash every node
/// uses to agree on family placement.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Deterministic relation → shard assignment derived from the schema.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: usize,
    owner: BTreeMap<String, usize>,
    families: Vec<(usize, Vec<String>)>,
}

impl ShardMap {
    /// Compute families from `sys`'s program and place each on
    /// `fnv64(canonical member) % shards`.
    pub fn from_system(sys: &ProvenanceSystem, shards: usize) -> ShardMap {
        ShardMap::from_system_with(sys, shards, |canonical| {
            (fnv64(canonical.as_bytes()) % shards.max(1) as u64) as usize
        })
    }

    /// Same family computation, custom placement (`assign` maps a
    /// family's canonical relation name to a shard index) — the seam
    /// for explicit rebalancing and for tests that need families on
    /// distinct shards regardless of how the hash falls.
    pub fn from_system_with(
        sys: &ProvenanceSystem,
        shards: usize,
        assign: impl Fn(&str) -> usize,
    ) -> ShardMap {
        let shards = shards.max(1);
        // Collect every relation name the program mentions plus the
        // declared base/local pairs.
        let mut names: BTreeSet<String> = BTreeSet::new();
        for rule in &sys.program().rules {
            for atom in rule.heads.iter().chain(rule.body.iter()) {
                names.insert(atom.relation.clone());
            }
        }
        for base in sys.relations_with_locals() {
            if let Some(local) = sys.local_of(&base) {
                names.insert(local);
            }
            names.insert(base);
        }
        // Provenance relations (`P_m1`, `P_L_X`, ...) live outside the
        // program's rules but inside their mapping's family.
        for spec in sys.specs() {
            names.insert(spec.prov_rel.clone());
            for recipe in &spec.atoms {
                names.insert(recipe.relation.clone());
            }
        }
        let index: BTreeMap<&str, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut parent: Vec<usize> = (0..names.len()).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        let union = |parent: &mut [usize], a: usize, b: usize| {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        };
        // Every rule welds its relations into one family; the declared
        // local of each base is welded on explicitly (a base with no
        // rules yet still owns its local).
        for rule in &sys.program().rules {
            let mut atoms = rule.heads.iter().chain(rule.body.iter());
            if let Some(first) = atoms.next() {
                let f = index[first.relation.as_str()];
                for atom in atoms {
                    union(&mut parent, f, index[atom.relation.as_str()]);
                }
            }
        }
        for base in sys.relations_with_locals() {
            if let Some(local) = sys.local_of(&base) {
                union(&mut parent, index[base.as_str()], index[local.as_str()]);
            }
        }
        for spec in sys.specs() {
            let p = index[spec.prov_rel.as_str()];
            for recipe in &spec.atoms {
                union(&mut parent, p, index[recipe.relation.as_str()]);
            }
        }
        // Group by root, pick the lexicographically smallest member as
        // the family's canonical name, and place it.
        let ordered: Vec<&String> = names.iter().collect();
        let mut groups: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for (i, name) in ordered.iter().enumerate() {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push((*name).clone());
        }
        let mut owner = BTreeMap::new();
        let mut families = Vec::new();
        for members in groups.into_values() {
            // BTreeSet iteration order makes members[0] the canonical
            // (lexicographically smallest) relation.
            let shard = assign(&members[0]).min(shards - 1);
            for m in &members {
                owner.insert(m.clone(), shard);
            }
            families.push((shard, members));
        }
        ShardMap {
            shards,
            owner,
            families,
        }
    }

    /// Number of shards this map distributes over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Owning shard of `relation`, `None` if the schema never mentions
    /// it (callers must then fan out conservatively).
    pub fn owner_of(&self, relation: &str) -> Option<usize> {
        self.owner.get(relation).copied()
    }

    /// The families and their placements: `(shard, members)` with
    /// members sorted, canonical first.
    pub fn families(&self) -> &[(usize, Vec<String>)] {
        &self.families
    }

    /// Base relations (those with declared locals) owned by `shard` —
    /// what a shard-node loads data for.
    pub fn owned_bases(&self, sys: &ProvenanceSystem, shard: usize) -> Vec<String> {
        sys.relations_with_locals()
            .into_iter()
            .filter(|r| self.owner_of(r) == Some(shard))
            .collect()
    }

    /// Fold a read set to the owning shards. An unmapped relation
    /// means the planner knows something the map does not — scatter to
    /// every shard rather than silently missing data.
    pub fn shard_set<'a>(&self, touched: impl IntoIterator<Item = &'a str>) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for rel in touched {
            match self.owner_of(rel) {
                Some(s) => {
                    out.insert(s);
                }
                None => return (0..self.shards).collect(),
            }
        }
        if out.is_empty() {
            // A read set the planner could not attribute (or an empty
            // one) has no owner; any shard can answer it.
            out.insert(0);
        }
        out
    }
}

/// Fan-out counters a router accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterCounters {
    /// Queries forwarded to exactly one shard (zero fan-out).
    pub single_shard: u64,
    /// Queries scattered to two or more shards.
    pub scattered: u64,
    /// Route-cache entries evicted to stay within capacity.
    pub route_evictions: u64,
}

/// Default bound on the per-query-text route memo. Routing is cheap to
/// recompute (one parse), so the cache only needs to cover the working
/// set of repeated query texts, not every text ever seen.
pub const ROUTE_CACHE_CAPACITY: usize = 1024;

/// Every relation and mapping name a query's text mentions — the
/// static routing key. Exact at family granularity: provenance paths
/// never leave the family of a mentioned relation, so the families of
/// the mentioned names cover everything the query can read.
pub fn mentioned_names(q: &Query) -> BTreeSet<String> {
    fn walk_cond(c: &Condition, out: &mut BTreeSet<String>) {
        match c {
            Condition::And(cs) | Condition::Or(cs) => cs.iter().for_each(|c| walk_cond(c, out)),
            Condition::Not(c) => walk_cond(c, out),
            Condition::InRelation { relation, .. } => {
                out.insert(relation.clone());
            }
            Condition::MappingIs { mapping, .. } => {
                out.insert(format!("P_{mapping}"));
            }
            Condition::AttrCmp { .. } => {}
        }
    }
    fn walk_path(p: &PathExpr, out: &mut BTreeSet<String>) {
        if let Some(r) = &p.start.relation {
            out.insert(r.clone());
        }
        for (step, node) in &p.steps {
            if let proql::ast::StepPattern::Single(d) = step {
                if let Some(m) = &d.mapping {
                    // A named mapping pins the step to that mapping's
                    // family via its provenance relation.
                    out.insert(format!("P_{m}"));
                }
            }
            if let Some(r) = &node.relation {
                out.insert(r.clone());
            }
        }
    }
    let mut out = BTreeSet::new();
    for p in &q.projection.for_paths {
        walk_path(p, &mut out);
    }
    for p in &q.projection.include_paths {
        walk_path(p, &mut out);
    }
    if let Some(c) = &q.projection.where_cond {
        walk_cond(c, &mut out);
    }
    if let Some(ev) = &q.evaluate {
        for (c, _) in ev
            .leaf_assign
            .iter()
            .flat_map(|l| l.cases.iter())
            .chain(ev.map_assign.iter().flat_map(|m| m.cases.iter()))
        {
            walk_cond(c, &mut out);
        }
    }
    out
}

/// A scatter-gather read router: a shard map derived from the schema,
/// one binary connection per shard, no local data.
#[derive(Debug)]
pub struct Router {
    map: ShardMap,
    conns: Vec<BinClient>,
    route_cache: HashMap<String, Vec<usize>>,
    /// Insertion order of `route_cache` keys — FIFO eviction queue.
    route_order: std::collections::VecDeque<String>,
    route_cache_capacity: usize,
    counters: RouterCounters,
}

impl Router {
    /// Connect to every shard (jittered-backoff dial, then the `HELLO`
    /// version handshake).
    pub fn connect(map: ShardMap, addrs: &[SocketAddr], retry: RetryPolicy) -> Result<Router> {
        if addrs.len() != map.shards() {
            return Err(Error::Other(format!(
                "shard map expects {} shards, got {} addresses",
                map.shards(),
                addrs.len()
            )));
        }
        let mut conns = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let mut c = retry_with(retry.clone(), std::thread::sleep, || {
                BinClient::connect(*addr)
            })?;
            c.hello()?;
            conns.push(c);
        }
        Ok(Router {
            map,
            conns,
            route_cache: HashMap::new(),
            route_order: std::collections::VecDeque::new(),
            route_cache_capacity: ROUTE_CACHE_CAPACITY,
            counters: RouterCounters::default(),
        })
    }

    /// Override the route-cache bound (0 disables memoization). Evicts
    /// oldest entries immediately if the cache is already over the new
    /// capacity.
    pub fn set_route_cache_capacity(&mut self, capacity: usize) {
        self.route_cache_capacity = capacity;
        while self.route_cache.len() > capacity {
            self.evict_oldest_route();
        }
    }

    fn evict_oldest_route(&mut self) {
        if let Some(oldest) = self.route_order.pop_front() {
            self.route_cache.remove(&oldest);
            self.counters.route_evictions += 1;
        }
    }

    /// The map this router routes by.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Fan-out counters so far.
    pub fn counters(&self) -> RouterCounters {
        self.counters
    }

    /// The shards `proql` must visit (memoized per query text).
    pub fn shard_set_for(&mut self, proql: &str) -> Result<Vec<usize>> {
        if let Some(hit) = self.route_cache.get(proql) {
            return Ok(hit.clone());
        }
        let q = parse_query(proql)?;
        let mentioned = mentioned_names(&q);
        let set: Vec<usize> = if mentioned.is_empty() {
            // Nothing pins the query to a family: it can walk the whole
            // provenance graph, so every shard owns part of the answer.
            (0..self.map.shards()).collect()
        } else {
            self.map
                .shard_set(mentioned.iter().map(|s| s.as_str()))
                .into_iter()
                .collect()
        };
        if self.route_cache_capacity > 0 {
            while self.route_cache.len() >= self.route_cache_capacity {
                self.evict_oldest_route();
            }
            if self
                .route_cache
                .insert(proql.to_string(), set.clone())
                .is_none()
            {
                self.route_order.push_back(proql.to_string());
            }
        }
        Ok(set)
    }

    /// Route one query. Single-owner read sets forward verbatim and
    /// return the shard's payload untouched; multi-family read sets
    /// scatter to the owning shards and gather each sub-answer under a
    /// `"shards"` array (see the module docs for why the gather does
    /// not pretend to compose a conjunctive cross-family answer).
    pub fn query(&mut self, proql: &str) -> Result<String> {
        let targets = self.shard_set_for(proql)?;
        if targets.len() == 1 {
            self.counters.single_shard += 1;
            return self.conns[targets[0]].query(proql);
        }
        self.counters.scattered += 1;
        // Scatter: one pipelined send per shard connection, then gather
        // in shard order.
        for &s in &targets {
            self.conns[s].send(crate::frame::verb::QUERY, proql.as_bytes())?;
        }
        let mut subs = Vec::with_capacity(targets.len());
        let mut version_max = 0u64;
        let mut bindings = 0u64;
        for &s in &targets {
            let f = self.conns[s].recv_response()?;
            let payload = match f.verb {
                crate::frame::verb::OK => f.text().unwrap_or("").to_string(),
                crate::frame::verb::ERR => {
                    return Err(Error::Other(format!(
                        "shard {s}: {}",
                        f.text().unwrap_or("<non-utf8>")
                    )))
                }
                other => return Err(Error::Other(format!("shard {s}: unexpected verb {other}"))),
            };
            version_max = version_max.max(json_u64_field(&payload, "version").unwrap_or(0));
            bindings += json_u64_field(&payload, "bindings").unwrap_or(0);
            subs.push(format!("{{\"shard\": {s}, \"answer\": {payload}}}"));
        }
        Ok(format!(
            "{{\"version\": {version_max}, \"fanout\": {}, \"bindings\": {bindings}, \
             \"shards\": [{}]}}",
            targets.len(),
            subs.join(", ")
        ))
    }

    /// Gather `STATS` from every shard: `[{"shard": i, "stats": {...}}]`.
    pub fn stats(&mut self) -> Result<String> {
        let mut subs = Vec::with_capacity(self.conns.len());
        for (s, conn) in self.conns.iter_mut().enumerate() {
            let payload = conn.stats()?;
            subs.push(format!("{{\"shard\": {s}, \"stats\": {payload}}}"));
        }
        Ok(format!(
            "{{\"shards\": {}, \"single_shard\": {}, \"scattered\": {}, \
             \"route_cache\": {}, \"route_evictions\": {}, \"per_shard\": [{}]}}",
            self.conns.len(),
            self.counters.single_shard,
            self.counters.scattered,
            self.route_cache.len(),
            self.counters.route_evictions,
            subs.join(", ")
        ))
    }

    /// Describe the routing table itself (families and placements).
    pub fn describe(&self) -> String {
        let fams: Vec<String> = self
            .map
            .families()
            .iter()
            .map(|(shard, members)| {
                let names: Vec<String> = members.iter().map(|m| json_str(m)).collect();
                format!(
                    "{{\"shard\": {shard}, \"relations\": [{}]}}",
                    names.join(", ")
                )
            })
            .collect();
        format!(
            "{{\"shards\": {}, \"families\": [{}]}}",
            self.map.shards(),
            fams.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::ServiceCore;
    use crate::server::serve;
    use proql::engine::EngineOptions;
    use proql_common::{tup, Schema, ValueType};
    use std::sync::Arc;

    /// Two disconnected mapping families, optionally loading each
    /// island's data: X → Y (mxy) and U → V (muv).
    fn island_system(with_xy_data: bool, with_uv_data: bool) -> ProvenanceSystem {
        let mut sys = ProvenanceSystem::new();
        for name in ["X", "Y", "U", "V"] {
            sys.add_relation_with_local(
                Schema::build(name, &[("id", ValueType::Int), ("w", ValueType::Int)], &[0])
                    .unwrap(),
            )
            .unwrap();
        }
        sys.add_mapping_text("mxy: Y(i, w) :- X(i, w)").unwrap();
        sys.add_mapping_text("muv: V(i, w) :- U(i, w)").unwrap();
        for i in 0..5 {
            if with_xy_data {
                sys.insert_local("X", tup![i, i * 10]).unwrap();
            }
            if with_uv_data {
                sys.insert_local("U", tup![i, i * 100]).unwrap();
            }
        }
        sys.run_exchange().unwrap();
        sys
    }

    /// Deterministic two-shard placement: the U/V island on shard 0,
    /// the X/Y island on shard 1.
    fn split_map(sys: &ProvenanceSystem) -> ShardMap {
        // The canonical member of the X/Y family is its provenance
        // relation `P_L_X` (it sorts first), hence `contains`.
        ShardMap::from_system_with(sys, 2, |canonical| usize::from(canonical.contains('X')))
    }

    const Q_Y: &str = "FOR [Y $x] INCLUDE PATH [$x] <-+ [] RETURN $x";
    const Q_BOTH: &str = "FOR [Y $x] <-+ [], [V $y] <-+ [] RETURN $x, $y";

    #[test]
    fn families_are_connected_components_with_locals_attached() {
        let sys = island_system(true, true);
        let map = ShardMap::from_system(&sys, 4);
        for (a, b) in [("X", "Y"), ("X", "X_l"), ("Y", "Y_l"), ("U", "V")] {
            assert_eq!(map.owner_of(a), map.owner_of(b), "{a} and {b} must co-own");
        }
        assert_eq!(map.families().len(), 2, "{:?}", map.families());
        assert_eq!(map.owner_of("nope"), None);
        // An unmapped relation in a read set forces full fan-out.
        assert_eq!(map.shard_set(["X", "nope"]).len(), 4);
        // Determinism: recomputing from the same schema reproduces the
        // exact placement every process agrees on.
        let again = ShardMap::from_system(&sys, 4);
        assert_eq!(map.owner, again.owner);
    }

    #[test]
    fn single_family_queries_route_to_one_shard_and_match_a_fat_node() {
        // Shard 0 holds U/V data, shard 1 holds X/Y data; the schema is
        // identical everywhere.
        let sys = island_system(true, true);
        let map = split_map(&sys);
        let shard0 = Arc::new(ServiceCore::new(
            island_system(false, true),
            EngineOptions::default(),
        ));
        let shard1 = Arc::new(ServiceCore::new(
            island_system(true, false),
            EngineOptions::default(),
        ));
        let s0 = serve(Arc::clone(&shard0), "127.0.0.1:0", 2).unwrap();
        let s1 = serve(Arc::clone(&shard1), "127.0.0.1:0", 2).unwrap();
        let fat = ServiceCore::new(island_system(true, true), EngineOptions::default());

        let mut router =
            Router::connect(map, &[s0.addr(), s1.addr()], RetryPolicy::default()).unwrap();

        assert_eq!(router.shard_set_for(Q_Y).unwrap(), vec![1]);
        let routed = router.query(Q_Y).unwrap();
        let serial = fat.query(Q_Y).unwrap();
        assert_eq!(
            json_u64_field(&routed, "bindings").unwrap(),
            serial.output.projection.bindings.len() as u64
        );
        // Byte-level digest identity with the fat node: the owning
        // shard holds the family's complete data.
        assert_eq!(
            crate::proto::json_str_field(&routed, "digest").unwrap(),
            crate::proto::result_digest(&serial.output).to_string()
        );
        assert_eq!(
            router.counters(),
            RouterCounters {
                single_shard: 1,
                scattered: 0,
                route_evictions: 0
            }
        );
        // Zero fan-out goes to the *right* shard: only shard 1 (X/Y)
        // saw a query.
        assert_eq!(shard1.stats().queries, 1);
        assert_eq!(shard0.stats().queries, 0);

        s0.shutdown();
        s1.shutdown();
    }

    #[test]
    fn cross_family_queries_scatter_and_gather_per_shard_answers() {
        let sys = island_system(true, true);
        let map = split_map(&sys);
        let shard0 = Arc::new(ServiceCore::new(
            island_system(false, true),
            EngineOptions::default(),
        ));
        let shard1 = Arc::new(ServiceCore::new(
            island_system(true, false),
            EngineOptions::default(),
        ));
        let s0 = serve(shard0, "127.0.0.1:0", 2).unwrap();
        let s1 = serve(shard1, "127.0.0.1:0", 2).unwrap();
        let mut router =
            Router::connect(map, &[s0.addr(), s1.addr()], RetryPolicy::default()).unwrap();

        assert_eq!(router.shard_set_for(Q_BOTH).unwrap(), vec![0, 1]);
        let gathered = router.query(Q_BOTH).unwrap();
        assert_eq!(json_u64_field(&gathered, "fanout"), Some(2));
        assert!(gathered.contains("\"shards\": ["), "{gathered}");
        assert_eq!(router.counters().scattered, 1);

        let stats = router.stats().unwrap();
        assert_eq!(json_u64_field(&stats, "shards"), Some(2));
        assert_eq!(json_u64_field(&stats, "route_evictions"), Some(0));
        let desc = router.describe();
        assert!(desc.contains("\"families\""), "{desc}");

        s0.shutdown();
        s1.shutdown();
    }

    #[test]
    fn route_cache_is_bounded_with_fifo_eviction() {
        let sys = island_system(true, true);
        let map = split_map(&sys);
        let shard0 = Arc::new(ServiceCore::new(
            island_system(false, true),
            EngineOptions::default(),
        ));
        let shard1 = Arc::new(ServiceCore::new(
            island_system(true, false),
            EngineOptions::default(),
        ));
        let s0 = serve(shard0, "127.0.0.1:0", 2).unwrap();
        let s1 = serve(shard1, "127.0.0.1:0", 2).unwrap();
        let mut router =
            Router::connect(map, &[s0.addr(), s1.addr()], RetryPolicy::default()).unwrap();
        router.set_route_cache_capacity(2);

        // Three distinct query texts through a 2-entry cache: the first
        // (oldest) is evicted, the last two stay resident.
        let texts = [
            "FOR [Y $x] RETURN $x",
            "FOR [V $x] RETURN $x",
            "FOR [X $x] RETURN $x",
        ];
        for t in &texts {
            router.shard_set_for(t).unwrap();
        }
        assert_eq!(router.counters().route_evictions, 1);
        // Re-resolving the cached texts evicts nothing further...
        router.shard_set_for(texts[1]).unwrap();
        router.shard_set_for(texts[2]).unwrap();
        assert_eq!(router.counters().route_evictions, 1);
        // ...and the evicted text re-enters by displacing the oldest
        // (texts[1], which then misses and displaces texts[2] in turn).
        router.shard_set_for(texts[0]).unwrap();
        assert_eq!(router.counters().route_evictions, 2);
        // Routing answers stay correct across eviction and re-entry.
        assert_eq!(router.shard_set_for(texts[0]).unwrap(), vec![1]);
        assert_eq!(router.shard_set_for(texts[1]).unwrap(), vec![0]);
        assert_eq!(router.counters().route_evictions, 3);
        // Shrinking the capacity evicts down immediately.
        router.set_route_cache_capacity(0);
        assert_eq!(router.counters().route_evictions, 5);
        let stats = router.stats().unwrap();
        assert_eq!(json_u64_field(&stats, "route_cache"), Some(0));
        assert_eq!(json_u64_field(&stats, "route_evictions"), Some(5));

        s0.shutdown();
        s1.shutdown();
    }
}
