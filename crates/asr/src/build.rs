//! Materializing ASRs as relational tables.
//!
//! An ASR over path `[m0, ..., mk]` is stored as one table whose columns
//! are the concatenated provenance-relation columns (`m0_i, m0_n, m1_i,
//! ...`). Each indexed segment `(i, j)` contributes the inner join of
//! `P_{mi} ⋈ ... ⋈ P_{mj}` padded with NULLs outside the segment; the
//! table is the distinct union of all segments.

use crate::def::AsrDefinition;
use proql_common::{Attribute, Error, Result, Schema, Value, ValueType};
use proql_datalog::ast::{Atom, Term};
use proql_provgraph::encode::{ProvSpec, RecipeTerm};
use proql_provgraph::ProvenanceSystem;
use proql_storage::{execute, Expr, IndexKind, Plan};
use std::collections::HashMap;

/// A materialized ASR plus the metadata rewriting needs.
#[derive(Debug, Clone)]
pub struct BuiltAsr {
    /// The definition.
    pub def: AsrDefinition,
    /// Column names of the ASR table.
    pub columns: Vec<String>,
    /// Per path position: (first column, number of columns).
    pub spans: Vec<(usize, usize)>,
    /// Per indexed segment of length ≥ 2: the conjunctive pattern (P atoms
    /// with unified join variables) and the full-width ASR head terms
    /// (NULL constants outside the segment).
    pub seg_patterns: Vec<SegPattern>,
    /// Rows materialized.
    pub rows: usize,
}

/// One rewritable segment.
#[derive(Debug, Clone)]
pub struct SegPattern {
    /// Segment bounds (inclusive path positions).
    pub range: (usize, usize),
    /// Pattern body to match in unfolded rules.
    pub pattern: Vec<Atom>,
    /// ASR-atom terms (pattern variables inside the segment, NULLs outside).
    pub head_terms: Vec<Term>,
}

/// The ASR registry: builds, stores, refreshes, and (via
/// [`proql::BodyRewriter`]) applies ASRs.
#[derive(Debug, Clone, Default)]
pub struct AsrRegistry {
    asrs: Vec<BuiltAsr>,
}

impl AsrRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        AsrRegistry::default()
    }

    /// The built ASRs.
    pub fn asrs(&self) -> &[BuiltAsr] {
        &self.asrs
    }

    /// Validate, materialize, and register an ASR.
    pub fn build(&mut self, sys: &mut ProvenanceSystem, def: AsrDefinition) -> Result<&BuiltAsr> {
        def.validate(sys)?;
        for existing in &self.asrs {
            if existing.def.overlaps(&def) {
                return Err(Error::Asr(format!(
                    "ASR {} overlaps {}; only non-overlapping ASR definitions \
                     are supported (paper §5.2)",
                    def.name, existing.def.name
                )));
            }
            if existing.def.name == def.name {
                return Err(Error::AlreadyExists(format!("ASR {}", def.name)));
            }
        }
        let built = materialize(sys, def)?;
        self.asrs.push(built);
        Ok(self.asrs.last().expect("just pushed"))
    }

    /// Re-materialize every ASR (call after further exchanges).
    pub fn refresh(&mut self, sys: &mut ProvenanceSystem) -> Result<()> {
        let defs: Vec<AsrDefinition> = self.asrs.drain(..).map(|b| b.def).collect();
        for def in defs {
            sys.db.drop_relation(&def.name)?;
            let built = materialize(sys, def)?;
            self.asrs.push(built);
        }
        Ok(())
    }

    /// Drop all ASR tables and clear the registry.
    pub fn clear(&mut self, sys: &mut ProvenanceSystem) -> Result<()> {
        for b in self.asrs.drain(..) {
            sys.db.drop_relation(&b.def.name)?;
        }
        Ok(())
    }

    /// Total rows across all ASR tables (storage-overhead metric).
    pub fn total_rows(&self) -> usize {
        self.asrs.iter().map(|b| b.rows).sum()
    }
}

/// Template variable for path position `t`, column `c`.
fn tvar(t: usize, c: &str) -> String {
    format!("a{t}_{c}")
}

fn materialize(sys: &mut ProvenanceSystem, def: AsrDefinition) -> Result<BuiltAsr> {
    let specs: Vec<&ProvSpec> = def
        .path
        .iter()
        .map(|m| {
            sys.spec_for(m)
                .ok_or_else(|| Error::Asr(format!("unknown mapping {m}")))
        })
        .collect::<Result<_>>()?;
    if def
        .path
        .iter()
        .collect::<std::collections::HashSet<_>>()
        .len()
        != def.path.len()
    {
        return Err(Error::Asr(format!(
            "ASR {} repeats a mapping in its path",
            def.name
        )));
    }

    // Columns and spans.
    let mut columns = Vec::new();
    let mut spans = Vec::new();
    for (t, spec) in specs.iter().enumerate() {
        spans.push((columns.len(), spec.columns.len()));
        for c in &spec.columns {
            columns.push(format!("{}_{}", def.path[t], c));
        }
    }

    // Adjacent join equalities over template terms.
    let mut pair_eqs: Vec<Vec<(Term, Term)>> = Vec::new();
    for t in 0..specs.len() - 1 {
        pair_eqs.push(join_terms(&def, specs[t], specs[t + 1], t)?);
    }

    // Template atoms.
    let templates: Vec<Atom> = specs
        .iter()
        .enumerate()
        .map(|(t, spec)| {
            Atom::new(
                spec.prov_rel.clone(),
                spec.columns.iter().map(|c| Term::var(tvar(t, c))).collect(),
            )
        })
        .collect();

    // Build per-segment patterns and plans.
    let all_segments = def.kind.segments(def.path.len());
    let mut seg_patterns = Vec::new();
    let mut branch_plans: Vec<Plan> = Vec::new();
    for &(i, j) in &all_segments {
        let Some((pattern, head_terms)) =
            segment_pattern(&templates, &pair_eqs, &spans, &columns, i, j)
        else {
            continue; // statically contradictory constants: no rows
        };
        branch_plans.push(segment_plan(
            sys,
            &specs,
            &pair_eqs,
            &spans,
            columns.len(),
            i,
            j,
        )?);
        if j > i {
            seg_patterns.push(SegPattern {
                range: (i, j),
                pattern,
                head_terms,
            });
        }
    }

    let union = Plan::Union {
        inputs: branch_plans,
        distinct: true,
    };
    let rel = execute(&sys.db, &union)?;

    // Create and fill the table: all columns, all-key (rows are identities).
    let schema = Schema::new(
        &def.name,
        columns
            .iter()
            .map(|c| Attribute::new(c.clone(), ValueType::Null))
            .collect(),
        (0..columns.len()).collect(),
    )?;
    sys.db.create_table(schema)?;
    let table = sys.db.table_mut(&def.name)?;
    let rows = table.insert_all(rel.rows)?;
    // Index the first mapping's columns: lookups by the downstream key are
    // the common access path.
    let (s0, l0) = spans[0];
    table.create_index(
        format!("{}_down", def.name),
        (s0..s0 + l0).collect(),
        IndexKind::Hash,
    )?;
    // Per-segment indexes on the NULL-padding columns: the rewriting pins
    // out-of-segment columns to NULL, and these indexes let the executor's
    // IndexLookup select exactly that segment's rows (the paper's
    // "relational indices on key columns of the ASRs", §5).
    for seg in &seg_patterns {
        let (i, j) = seg.range;
        let null_cols: Vec<usize> = spans
            .iter()
            .enumerate()
            .filter(|(t, _)| *t < i || *t > j)
            .flat_map(|(_, &(start, len))| start..start + len)
            .collect();
        if !null_cols.is_empty() {
            table.create_index(
                format!("{}_seg_{i}_{j}", def.name),
                null_cols,
                IndexKind::Hash,
            )?;
        }
    }

    Ok(BuiltAsr {
        def,
        columns,
        spans,
        seg_patterns,
        rows,
    })
}

/// The join equalities between consecutive provenance relations: the key of
/// the shared relation, once as reconstructed by the downstream mapping's
/// source recipe and once by the upstream mapping's target recipe.
fn join_terms(
    def: &AsrDefinition,
    down: &ProvSpec,
    up: &ProvSpec,
    t: usize,
) -> Result<Vec<(Term, Term)>> {
    for src in down.sources() {
        for tgt in up.targets() {
            if src.relation != tgt.relation {
                continue;
            }
            let mut eqs = Vec::new();
            for (a, b) in src.key_recipe.iter().zip(&tgt.key_recipe) {
                let ta = recipe_to_term(a, t, down);
                let tb = recipe_to_term(b, t + 1, up);
                eqs.push((ta, tb));
            }
            return Ok(eqs);
        }
    }
    Err(Error::Asr(format!(
        "ASR {}: no shared relation between {} and {}",
        def.name, down.mapping, up.mapping
    )))
}

fn recipe_to_term(r: &RecipeTerm, t: usize, spec: &ProvSpec) -> Term {
    match r {
        RecipeTerm::Col(c) => Term::var(tvar(t, &spec.columns[*c])),
        RecipeTerm::Const(v) => Term::Const(v.clone()),
    }
}

/// Build the conjunctive pattern of segment `(i, j)`: templates with the
/// adjacent join equalities applied as a substitution. Returns `None` when
/// two constants clash.
fn segment_pattern(
    templates: &[Atom],
    pair_eqs: &[Vec<(Term, Term)>],
    spans: &[(usize, usize)],
    columns: &[String],
    i: usize,
    j: usize,
) -> Option<(Vec<Atom>, Vec<Term>)> {
    let mut subst: HashMap<String, Term> = HashMap::new();
    for eqs in pair_eqs.iter().take(j).skip(i) {
        for (l, r) in eqs {
            let l = proql_datalog::unfold::apply_term(&subst, l);
            let r = proql_datalog::unfold::apply_term(&subst, r);
            match (&l, &r) {
                (Term::Var(v), other) => {
                    subst.insert(v.clone(), other.clone());
                }
                (other, Term::Var(v)) => {
                    subst.insert(v.clone(), other.clone());
                }
                (Term::Const(a), Term::Const(b)) => {
                    if a != b {
                        return None;
                    }
                }
                _ => return None,
            }
        }
    }
    let pattern: Vec<Atom> = templates[i..=j]
        .iter()
        .map(|a| proql_datalog::unfold::substitute_atom(&subst, a))
        .collect();
    let mut head_terms = Vec::with_capacity(columns.len());
    for (t, &(_start, len)) in spans.iter().enumerate() {
        for c in 0..len {
            if t >= i && t <= j {
                let term = &templates[t].terms[c];
                head_terms.push(proql_datalog::unfold::apply_term(&subst, term));
            } else {
                head_terms.push(Term::Const(Value::Null));
            }
        }
    }
    Some((pattern, head_terms))
}

/// The relational plan of one segment: inner joins of the segment's
/// provenance relations projected to full ASR width with NULL padding.
fn segment_plan(
    sys: &ProvenanceSystem,
    specs: &[&ProvSpec],
    pair_eqs: &[Vec<(Term, Term)>],
    spans: &[(usize, usize)],
    width: usize,
    i: usize,
    j: usize,
) -> Result<Plan> {
    let _ = sys;
    // Offsets of each in-segment position in the join output.
    let mut plan = Plan::scan(specs[i].prov_rel.clone());
    let mut offsets: HashMap<usize, usize> = HashMap::new();
    offsets.insert(i, 0);
    let mut acc_width = specs[i].columns.len();
    let mut filters: Vec<Expr> = Vec::new();
    for t in i + 1..=j {
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        for (l, r) in &pair_eqs[t - 1] {
            match (
                term_col(l, t - 1, specs, &offsets, 0),
                term_col(r, t, specs, &offsets, acc_width),
            ) {
                (TermCol::Col(lc), TermCol::Col(rc)) => {
                    left_keys.push(lc);
                    right_keys.push(rc - acc_width);
                }
                (TermCol::Col(lc), TermCol::Const(v)) => {
                    filters.push(Expr::col(lc).eq(Expr::Lit(v)));
                }
                (TermCol::Const(v), TermCol::Col(rc)) => {
                    filters.push(Expr::col(rc).eq(Expr::Lit(v)));
                }
                (TermCol::Const(a), TermCol::Const(b)) => {
                    if a != b {
                        filters.push(Expr::lit(false));
                    }
                }
            }
        }
        plan = plan.join(Plan::scan(specs[t].prov_rel.clone()), left_keys, right_keys);
        offsets.insert(t, acc_width);
        acc_width += specs[t].columns.len();
    }
    if !filters.is_empty() {
        plan = plan.filter(Expr::and(filters));
    }
    // Project to full width.
    let mut exprs = Vec::with_capacity(width);
    let mut names = Vec::with_capacity(width);
    for (t, &(start, len)) in spans.iter().enumerate() {
        for c in 0..len {
            names.push(format!("c{}", start + c));
            if t >= i && t <= j {
                exprs.push(Expr::col(offsets[&t] + c));
            } else {
                exprs.push(Expr::Lit(Value::Null));
            }
        }
    }
    Ok(plan.project_named(exprs, names))
}

enum TermCol {
    Col(usize),
    Const(Value),
}

/// Resolve a join term to a column in the (eventual) join output. `t` is
/// the path position the term belongs to; for the right side of the join
/// the caller subtracts the accumulated width again.
fn term_col(
    term: &Term,
    t: usize,
    specs: &[&ProvSpec],
    offsets: &HashMap<usize, usize>,
    right_base: usize,
) -> TermCol {
    match term {
        Term::Const(v) => TermCol::Const(v.clone()),
        Term::Var(v) => {
            // v has the shape "a{t}_{col}"; find the column index.
            let spec = specs[t];
            let col = spec
                .columns
                .iter()
                .position(|c| v == &tvar(t, c))
                .expect("template variable must resolve");
            let base = offsets.get(&t).copied().unwrap_or(right_base);
            TermCol::Col(base + col)
        }
        Term::Skolem(..) => unreachable!("no Skolems in provenance columns"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::AsrKind;
    use proql_common::tup;
    use proql_provgraph::system::example_2_1;

    #[test]
    fn complete_asr_over_m5_m1() {
        let mut sys = example_2_1().unwrap();
        let mut reg = AsrRegistry::new();
        let built = reg
            .build(
                &mut sys,
                AsrDefinition::new(vec!["m5".into(), "m1".into()], AsrKind::Complete),
            )
            .unwrap()
            .clone();
        assert_eq!(built.columns, vec!["m5_i", "m5_n", "m1_i", "m1_n"]);
        // P_m5 = {(1,cn1),(2,cn2)}, P_m1 = {(1,cn1),(2,cn2)}; join on C key
        // (i, n): both pairs align.
        let t = sys.db.table(&built.def.name).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.contains(&tup![1, "cn1", 1, "cn1"]));
        assert!(t.contains(&tup![2, "cn2", 2, "cn2"]));
        assert_eq!(built.rows, 2);
        // Complete kind: one rewritable segment.
        assert_eq!(built.seg_patterns.len(), 1);
        assert_eq!(built.seg_patterns[0].range, (0, 1));
        assert_eq!(built.seg_patterns[0].pattern.len(), 2);
    }

    #[test]
    fn subpath_asr_includes_padded_singles() {
        let mut sys = example_2_1().unwrap();
        let mut reg = AsrRegistry::new();
        let built = reg
            .build(
                &mut sys,
                AsrDefinition::new(vec!["m5".into(), "m1".into()], AsrKind::Subpath),
            )
            .unwrap()
            .clone();
        let t = sys.db.table(&built.def.name).unwrap();
        // 2 complete rows + 2 m5-only rows + 2 m1-only rows.
        assert_eq!(t.len(), 6);
        let nulls = t
            .iter()
            .filter(|r| r.values().iter().any(Value::is_null))
            .count();
        assert_eq!(nulls, 4);
        // Only the length-2 segment is rewritable.
        assert_eq!(built.seg_patterns.len(), 1);
    }

    #[test]
    fn prefix_and_suffix_differ_in_padding_side() {
        let mut sys = example_2_1().unwrap();
        let mut reg = AsrRegistry::new();
        let pre = reg
            .build(
                &mut sys,
                AsrDefinition {
                    name: "PRE".into(),
                    path: vec!["m5".into(), "m1".into()],
                    kind: AsrKind::Prefix,
                },
            )
            .unwrap()
            .clone();
        let t = sys.db.table("PRE").unwrap();
        // complete rows + m5-only rows (upstream padded).
        assert_eq!(t.len(), 4);
        for row in t.iter() {
            if row.get(2).is_null() {
                assert!(!row.get(0).is_null(), "prefix pads the upstream side");
            }
        }
        assert_eq!(pre.spans, vec![(0, 2), (2, 2)]);
    }

    #[test]
    fn overlapping_asrs_rejected() {
        let mut sys = example_2_1().unwrap();
        let mut reg = AsrRegistry::new();
        reg.build(
            &mut sys,
            AsrDefinition::new(vec!["m5".into(), "m1".into()], AsrKind::Complete),
        )
        .unwrap();
        let err = reg
            .build(
                &mut sys,
                AsrDefinition::new(vec!["m1".into(), "m3".into()], AsrKind::Complete),
            )
            .unwrap_err();
        assert!(err.to_string().contains("overlaps"));
    }

    #[test]
    fn refresh_sees_new_data() {
        let mut sys = example_2_1().unwrap();
        let mut reg = AsrRegistry::new();
        reg.build(
            &mut sys,
            AsrDefinition::new(vec!["m5".into(), "m1".into()], AsrKind::Complete),
        )
        .unwrap();
        sys.insert_local("A", tup![3, "sn3", 1]).unwrap();
        sys.insert_local("N", tup![3, "cn3", false]).unwrap();
        sys.run_exchange().unwrap();
        reg.refresh(&mut sys).unwrap();
        let t = sys.db.table("ASR_complete_m5_m1").unwrap();
        assert!(t.contains(&tup![3, "cn3", 3, "cn3"]));
    }

    #[test]
    fn clear_drops_tables() {
        let mut sys = example_2_1().unwrap();
        let mut reg = AsrRegistry::new();
        reg.build(
            &mut sys,
            AsrDefinition::new(vec!["m5".into(), "m1".into()], AsrKind::Complete),
        )
        .unwrap();
        reg.clear(&mut sys).unwrap();
        assert!(!sys.db.has_relation("ASR_complete_m5_m1"));
        assert_eq!(reg.total_rows(), 0);
    }
}
