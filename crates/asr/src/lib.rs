//! # proql-asr
//!
//! **Access support relations** for provenance (paper §5): materialized
//! joins of provenance relations along mapping paths, adapted from
//! Kemper & Moerkotte's ASRs for object bases.
//!
//! An [`AsrDefinition`] names a path of mappings `[m_down, ..., m_up]`
//! (`m_down` closest to the query's target relation) and a kind:
//!
//! * **Complete** — only the full path (inner joins),
//! * **Prefix** — the path and all its prefixes (downstream segments),
//! * **Suffix** — the path and all its suffixes (upstream segments),
//! * **Subpath** — every contiguous segment,
//!
//! realized as a `UNION` of padded inner joins (the paper's
//! `P(3,2,1) = P3 ⋈ P2 ⟕ P1 ∪ P3 ⟕ P2 ⋈ P1` construction generalized:
//! one branch per indexed segment, NULL padding outside the segment).
//!
//! [`AsrRegistry`] materializes ASRs as tables and implements the greedy
//! `unfoldASRs` rewriting of Figure 4 (longest indexed segment first,
//! homomorphism-based matching via `findHomomorphism`), plugging into the
//! query engine as a [`proql::translate::BodyRewriter`].
//!
//! [`advisor`] adds the automated ASR-selection heuristic the paper lists
//! as future work (§8).

pub mod advisor;
pub mod build;
pub mod def;
pub mod rewrite;

pub use advisor::advise;
pub use build::AsrRegistry;
pub use def::{AsrDefinition, AsrKind};
