//! The greedy `unfoldASRs` rewriting of the paper's Figure 4.
//!
//! For each unfolded rule, each ASR's indexed segments are tried longest
//! first; a segment applies when its conjunctive pattern embeds into the
//! rule body (via `findHomomorphism`). The matched provenance atoms are
//! removed and replaced by a single ASR atom whose out-of-segment columns
//! are pinned to NULL — selecting exactly the padding rows materialized
//! for that segment. Because registered ASRs are non-overlapping, the
//! greedy order yields a minimal rewriting (paper §5.2).

use crate::build::AsrRegistry;
use proql::translate::BodyRewriter;
use proql_common::Result;
use proql_datalog::ast::Atom;
use proql_datalog::homomorphism::{apply_homomorphism, find_homomorphism};

impl BodyRewriter for AsrRegistry {
    fn rewrite(&self, mut body: Vec<Atom>) -> Result<Vec<Atom>> {
        loop {
            let mut did_something = false;
            for asr in self.asrs() {
                // Inverse order of length is precomputed in seg_patterns
                // (AsrKind::segments sorts longest first).
                let mut found_unfolding = false;
                for seg in &asr.seg_patterns {
                    if found_unfolding {
                        break;
                    }
                    if let Some((h, matched)) = find_homomorphism(&seg.pattern, &body) {
                        // Remove matched atoms (descending index order).
                        let mut idxs = matched;
                        idxs.sort_unstable_by(|a, b| b.cmp(a));
                        for i in idxs {
                            body.remove(i);
                        }
                        // Add the image of the ASR head under h.
                        let head = Atom::new(asr.def.name.clone(), seg.head_terms.clone());
                        body.push(apply_homomorphism(&h, &head));
                        found_unfolding = true;
                    }
                }
                if found_unfolding {
                    did_something = true;
                }
            }
            if !did_something {
                return Ok(body);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::{AsrDefinition, AsrKind};
    use proql::engine::{Engine, EngineOptions, Strategy};
    use proql::parser::parse_query;
    use proql::translate::{translate, TranslateOptions};
    use proql_provgraph::system::example_2_1;
    use std::sync::Arc;

    fn registry(kind: AsrKind) -> (proql_provgraph::ProvenanceSystem, AsrRegistry) {
        let mut sys = example_2_1().unwrap();
        let mut reg = AsrRegistry::new();
        reg.build(
            &mut sys,
            AsrDefinition::new(vec!["m5".into(), "m1".into()], kind),
        )
        .unwrap();
        (sys, reg)
    }

    #[test]
    fn rewrites_m5_m1_pair_into_asr_atom() {
        let (sys, reg) = registry(AsrKind::Complete);
        let q = parse_query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x").unwrap();
        let plain = translate(&sys, &q, None, &TranslateOptions::default()).unwrap();
        let rewritten = translate(&sys, &q, Some(&reg), &TranslateOptions::default()).unwrap();
        assert_eq!(plain.rules.len(), rewritten.rules.len());
        // Some rule had both P_m5 and P_m1 and now references the ASR.
        let uses_asr = rewritten
            .rules
            .iter()
            .any(|r| r.atoms.iter().any(|a| a.relation == "ASR_complete_m5_m1"));
        assert!(uses_asr, "no rule was rewritten to use the ASR");
        // Rewritten rules never contain P_m5 and P_m1 together.
        for r in &rewritten.rules {
            let has5 = r.atoms.iter().any(|a| a.relation == "P_m5");
            let has1 = r.atoms.iter().any(|a| a.relation == "P_m1");
            assert!(!(has5 && has1), "pair should have been replaced");
        }
        // Atom count shrinks in the rewritten rules that use the ASR.
        let plain_atoms: usize = plain.stats.total_atoms;
        let rew_atoms: usize = rewritten.stats.total_atoms;
        assert!(rew_atoms < plain_atoms);
    }

    #[test]
    fn query_results_identical_with_and_without_asrs() {
        let (sys, reg) = registry(AsrKind::Subpath);
        let q = "FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x";
        let mut plain_engine = Engine::new(sys.clone());
        plain_engine.options.strategy = Strategy::Unfold;
        let plain = plain_engine.query(q).unwrap();

        let opts = EngineOptions {
            strategy: Strategy::Unfold,
            rewriter: Some(Arc::new(reg)),
            ..Default::default()
        };
        let asr_engine = Engine::with_options(sys, opts);
        let with_asr = asr_engine.query(q).unwrap();

        assert_eq!(plain.projection.bindings, with_asr.projection.bindings);
        assert_eq!(
            plain.projection.derivations,
            with_asr.projection.derivations
        );
        // And the rewritten plans contain fewer joins.
        assert!(with_asr.stats.total_joins < plain.stats.total_joins);
    }

    #[test]
    fn annotation_results_survive_rewriting() {
        let (sys, reg) = registry(AsrKind::Complete);
        let q = "EVALUATE LINEAGE OF {
                   FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
                 }";
        let mut plain_engine = Engine::new(sys.clone());
        plain_engine.options.strategy = Strategy::Unfold;
        let plain = plain_engine.query(q).unwrap().annotated.unwrap();

        let opts = EngineOptions {
            strategy: Strategy::Unfold,
            rewriter: Some(Arc::new(reg)),
            ..Default::default()
        };
        let asr_engine = Engine::with_options(sys, opts);
        let with_asr = asr_engine.query(q).unwrap().annotated.unwrap();

        for row in &plain.rows {
            let other = with_asr
                .annotation_of(&row.relation, &row.key)
                .unwrap_or_else(|| panic!("missing {} {}", row.relation, row.key));
            assert_eq!(&row.annotation, other);
        }
    }

    #[test]
    fn non_matching_bodies_unchanged() {
        let (_, reg) = registry(AsrKind::Complete);
        let body = vec![Atom::new("P_m4", vec![proql_datalog::ast::Term::var("x")])];
        let out = reg.rewrite(body.clone()).unwrap();
        assert_eq!(out, body);
    }
}
