//! Automated ASR selection — the paper's §8 future work, implemented as a
//! topology-driven heuristic.
//!
//! Starting from a target relation, the advisor walks the mapping graph
//! backwards collecting **linear chains** (runs of mappings where each
//! step has a unique non-local deriving mapping), splits each chain into
//! segments of at most `max_len` mappings, and emits one non-overlapping
//! ASR definition per segment. This mirrors how the paper's experiments
//! "split the chain into paths up to this length" (§6.4).

use crate::def::{AsrDefinition, AsrKind};
use proql_provgraph::ProvenanceSystem;
use std::collections::HashSet;

/// Propose ASR definitions for queries targeting `target_relation`.
pub fn advise(
    sys: &ProvenanceSystem,
    target_relation: &str,
    max_len: usize,
    kind: AsrKind,
) -> Vec<AsrDefinition> {
    let graph = sys.schema_graph();
    let mut used: HashSet<String> = HashSet::new();
    let mut chains: Vec<Vec<String>> = Vec::new();

    // Breadth-first over relations, growing chains downstream-first.
    let mut frontier: Vec<String> = vec![target_relation.to_string()];
    let mut seen_rel: HashSet<String> = HashSet::new();
    while let Some(rel) = frontier.pop() {
        if !seen_rel.insert(rel.clone()) {
            continue;
        }
        for m in graph.mappings_deriving(&rel) {
            if graph.is_local_mapping(m) || used.contains(m) {
                continue;
            }
            // Grow a chain from m while each step is linear.
            let mut chain = vec![m.to_string()];
            used.insert(m.to_string());
            let mut current = m.to_string();
            loop {
                let sources = graph.sources_of(&current);
                // Candidate next mappings: unique non-local mapping deriving
                // any source relation.
                let mut next: Vec<String> = Vec::new();
                for s in &sources {
                    for m2 in graph.mappings_deriving(s) {
                        if !graph.is_local_mapping(m2) && !used.contains(m2) {
                            next.push(m2.to_string());
                        }
                    }
                }
                next.sort();
                next.dedup();
                if next.len() == 1 {
                    let m2 = next.pop().expect("len checked");
                    used.insert(m2.clone());
                    chain.push(m2.clone());
                    current = m2;
                } else {
                    // Branch point (or dead end): stop the chain, resume
                    // the BFS from the sources.
                    for s in sources {
                        frontier.push(s.to_string());
                    }
                    break;
                }
            }
            chains.push(chain);
        }
    }

    // Split chains into segments of at most max_len; segments of length < 2
    // index nothing and are dropped.
    let mut defs = Vec::new();
    for chain in chains {
        for seg in chain.chunks(max_len.max(2)) {
            if seg.len() >= 2 {
                defs.push(AsrDefinition::new(seg.to_vec(), kind));
            }
        }
    }
    defs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::AsrRegistry;
    use proql_common::{tup, Schema, ValueType};
    use proql_provgraph::ProvenanceSystem;

    /// A 5-relation chain R0 <- R1 <- ... <- R4 with data at R4.
    fn chain_system() -> ProvenanceSystem {
        let mut sys = ProvenanceSystem::new();
        for i in 0..5 {
            sys.add_relation_with_local(
                Schema::build(
                    &format!("R{i}"),
                    &[("k", ValueType::Int), ("v", ValueType::Int)],
                    &[0],
                )
                .unwrap(),
            )
            .unwrap();
        }
        for i in 0..4 {
            sys.add_mapping_text(&format!("c{i}: R{i}(k, v) :- R{}(k, v)", i + 1))
                .unwrap();
        }
        sys.insert_local("R4", tup![1, 10]).unwrap();
        sys.insert_local("R4", tup![2, 20]).unwrap();
        sys.run_exchange().unwrap();
        sys
    }

    #[test]
    fn advises_chain_segments() {
        let sys = chain_system();
        let defs = advise(&sys, "R0", 2, AsrKind::Complete);
        // Chain c0,c1,c2,c3 split into [c0,c1], [c2,c3].
        assert_eq!(defs.len(), 2);
        assert_eq!(defs[0].path, vec!["c0", "c1"]);
        assert_eq!(defs[1].path, vec!["c2", "c3"]);
        // Non-overlapping by construction.
        assert!(!defs[0].overlaps(&defs[1]));
    }

    #[test]
    fn advised_asrs_build_cleanly() {
        let mut sys = chain_system();
        let defs = advise(&sys, "R0", 4, AsrKind::Suffix);
        assert_eq!(defs.len(), 1);
        let mut reg = AsrRegistry::new();
        for d in defs {
            reg.build(&mut sys, d).unwrap();
        }
        assert!(reg.total_rows() > 0);
    }

    #[test]
    fn branch_points_cut_chains() {
        let sys = proql_provgraph::system::example_2_1().unwrap();
        let defs = advise(&sys, "O", 4, AsrKind::Complete);
        // Every advised path must validate (connected, known mappings).
        for d in &defs {
            d.validate(&sys).unwrap();
        }
        // No mapping appears in two definitions.
        for (i, a) in defs.iter().enumerate() {
            for b in defs.iter().skip(i + 1) {
                assert!(!a.overlaps(b));
            }
        }
    }
}
