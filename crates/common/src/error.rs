//! The workspace-wide error type.

use std::fmt;

/// Result alias used across all ProQL crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised anywhere in the ProQL stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Schema definition or tuple/schema conformance problem.
    Schema(String),
    /// Unknown relation, mapping, or other catalog object.
    NotFound(String),
    /// An object with this name already exists.
    AlreadyExists(String),
    /// Malformed Datalog rule or program (unsafe variable, arity, ...).
    Datalog(String),
    /// ProQL lexing/parsing failure, with position info in the message.
    Parse(String),
    /// ProQL query is well-formed but invalid against the provenance schema.
    Query(String),
    /// Semiring evaluation problem (divergence on cyclic graph, bad
    /// assignment, unsupported operation).
    Semiring(String),
    /// ASR definition or rewriting problem (overlap, bad path).
    Asr(String),
    /// Storage engine failure (bad plan, index misuse).
    Storage(String),
    /// Fixed-width arithmetic overflowed (integer SUM, derivation counts).
    /// All executors surface overflow as this error instead of wrapping.
    Overflow(String),
    /// Anything else.
    Other(String),
}

impl Error {
    /// The category label used in `Display`.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Schema(_) => "schema",
            Error::NotFound(_) => "not found",
            Error::AlreadyExists(_) => "already exists",
            Error::Datalog(_) => "datalog",
            Error::Parse(_) => "parse",
            Error::Query(_) => "query",
            Error::Semiring(_) => "semiring",
            Error::Asr(_) => "asr",
            Error::Storage(_) => "storage",
            Error::Overflow(_) => "overflow",
            Error::Other(_) => "error",
        }
    }

    /// The human message.
    pub fn message(&self) -> &str {
        match self {
            Error::Schema(m)
            | Error::NotFound(m)
            | Error::AlreadyExists(m)
            | Error::Datalog(m)
            | Error::Parse(m)
            | Error::Query(m)
            | Error::Semiring(m)
            | Error::Asr(m)
            | Error::Storage(m)
            | Error::Overflow(m)
            | Error::Other(m) => m,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = Error::Parse("unexpected token at 1:3".into());
        assert_eq!(e.to_string(), "parse: unexpected token at 1:3");
        assert_eq!(e.kind(), "parse");
        assert_eq!(e.message(), "unexpected token at 1:3");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::NotFound("R".into()), Error::NotFound("R".into()));
        assert_ne!(Error::NotFound("R".into()), Error::Schema("R".into()));
    }
}
