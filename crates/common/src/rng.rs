//! A tiny deterministic PRNG (splitmix64), used by the synthetic workload
//! generator and the randomized property tests. The workspace builds with
//! no external crates, so this stands in for `rand`.

/// Splitmix64: a fast, well-distributed 64-bit generator. Deterministic per
/// seed; not cryptographic.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range_i64(-5, 17);
            assert!((-5..17).contains(&v));
            let u = r.gen_range_usize(2, 9);
            assert!((2..9).contains(&u));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
