//! Tuples: fixed-arity sequences of [`Value`]s.

use crate::value::Value;
use std::fmt;
use std::ops::Index;
use std::sync::Arc;

/// An immutable database tuple.
///
/// The payload is an `Arc<[Value]>` so cloning a tuple — which happens
/// constantly during joins, provenance encoding, and graph construction — is
/// one atomic increment rather than a deep copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values: values.into(),
        }
    }

    /// The empty tuple (arity 0).
    pub fn empty() -> Self {
        Tuple {
            values: Arc::from([]),
        }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Field accessor; panics when out of range (schema violations are bugs).
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Field accessor returning `None` when out of range.
    pub fn try_get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// All values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Project the fields at `indices` into a new tuple, in that order.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Concatenate two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Tuple::new(v)
    }

    /// True iff any field is `Null`.
    pub fn has_null(&self) -> bool {
        self.values.iter().any(Value::is_null)
    }

    /// Iterate over the fields.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.values.iter()
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

/// Convenience macro building a [`Tuple`] from heterogeneous literals.
///
/// ```
/// use proql_common::tup;
/// let t = tup![1, "cat", true];
/// assert_eq!(t.arity(), 3);
/// ```
#[macro_export]
macro_rules! tup {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tup![1, "x", 2.5];
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), &Value::Int(1));
        assert_eq!(t[1], Value::str("x"));
        assert_eq!(t.try_get(3), None);
    }

    #[test]
    fn projection_reorders_and_duplicates() {
        let t = tup![10, 20, 30];
        let p = t.project(&[2, 0, 0]);
        assert_eq!(p, tup![30, 10, 10]);
    }

    #[test]
    fn concat_preserves_order() {
        let t = tup![1].concat(&tup![2, 3]);
        assert_eq!(t, tup![1, 2, 3]);
    }

    #[test]
    fn null_detection() {
        assert!(!tup![1, 2].has_null());
        let t = Tuple::new(vec![Value::Int(1), Value::Null]);
        assert!(t.has_null());
    }

    #[test]
    fn tuples_order_lexicographically() {
        assert!(tup![1, 2] < tup![1, 3]);
        assert!(tup![1] < tup![1, 0]);
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::empty();
        assert_eq!(t.arity(), 0);
        assert_eq!(t.to_string(), "()");
    }

    #[test]
    fn display_format() {
        assert_eq!(tup![1, "a"].to_string(), "(1, a)");
    }
}
