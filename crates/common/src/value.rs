//! Dynamically typed values stored in tuples.
//!
//! `Value` is the single scalar type flowing through the whole system. It is
//! totally ordered (floats use a total order where `NaN` sorts last) and
//! hashable, so tuples of values can serve as primary keys, hash-join keys,
//! and B-tree index keys.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type of a [`Value`]. Used in [`crate::Schema`] attribute declarations
/// and for type checking Datalog rules and ProQL predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float with a total order (NaN sorts last).
    Float,
    /// Interned UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// The type of `Value::Null`; also acts as "any" in inference contexts.
    Null,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "str",
            ValueType::Bool => "bool",
            ValueType::Null => "null",
        };
        f.write_str(s)
    }
}

/// A dynamically typed scalar value.
///
/// Strings are reference counted (`Arc<str>`) so that copying tuples during
/// joins and provenance encoding is cheap.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float (total order; see [`Value::cmp`]).
    Float(f64),
    /// UTF-8 string.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// SQL-style null. Compares equal to itself (unlike SQL) so that
    /// provenance-relation rows containing padding NULLs (outer-join ASRs)
    /// can be deduplicated.
    Null,
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The runtime type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
            Value::Bool(_) => ValueType::Bool,
            Value::Null => ValueType::Null,
        }
    }

    /// True iff this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer content, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float content; integers are widened.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// String content, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean content, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Rank used to order values of different types (Null < Bool < Int/Float < Str).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order across all values. Numeric values compare numerically
    /// across `Int`/`Float`; values of different type families order by a
    /// fixed type rank. NaN sorts after every other float and equal to NaN.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => cmp_floats(*a, *b),
            (Int(a), Float(b)) => cmp_int_float(*a, *b),
            (Float(a), Int(b)) => cmp_int_float(*b, *a).reverse(),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Null, Null) => Ordering::Equal,
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            // Ints and floats that compare equal must hash equal; hash every
            // numeric through its f64 bit pattern when it is representable,
            // otherwise through the integer.
            Value::Int(i) => {
                state.write_u8(2);
                // f64 can represent all i64 up to 2^53 exactly; beyond that,
                // Int(x) == Float(y) only when the float equals the widened
                // int, so hashing the widened form keeps Eq/Hash consistent.
                let f = *i as f64;
                if f as i64 == *i {
                    state.write_u64(canonical_f64_bits(f));
                } else {
                    state.write_i64(*i);
                }
            }
            Value::Float(f) => {
                state.write_u8(2);
                state.write_u64(canonical_f64_bits(*f));
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Value::Null => state.write_u8(0),
        }
    }
}

/// Total order on floats where `-0.0 == 0.0`, `NaN == NaN`, and NaN sorts
/// after every other float (matching the hash canonicalization).
fn cmp_floats(a: f64, b: f64) -> Ordering {
    match a.partial_cmp(&b) {
        Some(o) => o,
        None => match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => unreachable!("partial_cmp is None only with NaN"),
        },
    }
}

/// Exact comparison of an `i64` against an `f64` (no precision loss for
/// integers beyond 2^53, unlike comparing `a as f64` with `f`).
fn cmp_int_float(a: i64, f: f64) -> Ordering {
    if f.is_nan() {
        return Ordering::Less; // NaN sorts last
    }
    // 2^63 as f64 is exact; anything >= it exceeds every i64.
    if f >= 9_223_372_036_854_775_808.0 {
        return Ordering::Less;
    }
    if f < -9_223_372_036_854_775_808.0 {
        return Ordering::Greater;
    }
    // |f| < 2^63, so truncation fits in i64 exactly.
    let ft = f.trunc();
    let fi = ft as i64;
    match a.cmp(&fi) {
        Ordering::Equal => {
            let frac = f - ft;
            if frac > 0.0 {
                Ordering::Less
            } else if frac < 0.0 {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
        o => o,
    }
}

/// Bit pattern used for hashing floats: canonicalizes `-0.0` to `0.0` and all
/// NaNs to one quiet NaN so `Eq`-equal floats hash identically.
fn canonical_f64_bits(f: f64) -> u64 {
    if f == 0.0 {
        0f64.to_bits()
    } else if f.is_nan() {
        f64::NAN.to_bits()
    } else {
        f.to_bits()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
    }

    #[test]
    fn null_equals_null() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(hash_of(&Value::Null), hash_of(&Value::Null));
    }

    #[test]
    fn negative_zero_equals_zero() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn nan_is_self_equal_and_sorts_last() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert!(Value::Float(f64::NAN) > Value::Float(f64::INFINITY));
    }

    #[test]
    fn type_rank_order() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Bool(true) < Value::Int(i64::MIN));
        assert!(Value::Int(i64::MAX) < Value::str(""));
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::Bool(false) < Value::Bool(true));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn large_int_equality_is_exact() {
        // 2^53 + 1 is not representable as f64; must not equal its rounding.
        let big = (1i64 << 53) + 1;
        assert_ne!(Value::Int(big), Value::Float(big as f64));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::str("abc").to_string(), "abc");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn value_type_reporting() {
        assert_eq!(Value::Int(0).value_type(), ValueType::Int);
        assert_eq!(Value::Null.value_type(), ValueType::Null);
        assert_eq!(ValueType::Str.to_string(), "str");
    }
}
