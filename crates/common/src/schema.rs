//! Relation schemas: named, typed attributes with a declared key.

use crate::error::{Error, Result};
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};
use std::fmt;
use std::sync::Arc;

/// One attribute (column) of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Column name, unique within the schema.
    pub name: String,
    /// Declared type. `Null` acts as "any".
    pub ty: ValueType,
}

impl Attribute {
    /// Build an attribute.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Attribute {
            name: name.into(),
            ty,
        }
    }
}

/// Schema of a relation: name, ordered attributes, and the positions of the
/// primary-key attributes.
///
/// Keys matter for provenance: the relational encoding of a derivation stores
/// *keys* of all source and target tuples (paper §4.1), so every relation
/// participating in a mapping must declare one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: Arc<str>,
    attributes: Arc<[Attribute]>,
    key: Arc<[usize]>,
}

impl Schema {
    /// Build a schema. `key` lists attribute positions forming the primary
    /// key; it may be empty (key = all attributes, i.e. set semantics).
    pub fn new(name: impl AsRef<str>, attributes: Vec<Attribute>, key: Vec<usize>) -> Result<Self> {
        for &k in &key {
            if k >= attributes.len() {
                return Err(Error::Schema(format!(
                    "key position {k} out of range for relation {} with {} attributes",
                    name.as_ref(),
                    attributes.len()
                )));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for a in &attributes {
            if !seen.insert(a.name.as_str()) {
                return Err(Error::Schema(format!(
                    "duplicate attribute {} in relation {}",
                    a.name,
                    name.as_ref()
                )));
            }
        }
        Ok(Schema {
            name: Arc::from(name.as_ref()),
            attributes: attributes.into(),
            key: key.into(),
        })
    }

    /// Shorthand: `Schema::build("R", &[("id", Int), ("name", Str)], &[0])`.
    pub fn build(name: &str, attrs: &[(&str, ValueType)], key: &[usize]) -> Result<Self> {
        Schema::new(
            name,
            attrs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect(),
            key.to_vec(),
        )
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ordered attributes.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Positions of the key attributes. Empty means "whole tuple".
    pub fn key(&self) -> &[usize] {
        &self.key
    }

    /// Positions of the key attributes, falling back to all positions when no
    /// explicit key was declared.
    pub fn effective_key(&self) -> Vec<usize> {
        if self.key.is_empty() {
            (0..self.arity()).collect()
        } else {
            self.key.to_vec()
        }
    }

    /// Position of the attribute named `name`.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// Extract the key projection of `tuple`.
    pub fn key_of(&self, tuple: &Tuple) -> Tuple {
        tuple.project(&self.effective_key())
    }

    /// Check a tuple against this schema (arity + per-column type; `Null` is
    /// allowed in any column, and any value is allowed in a `Null` column).
    pub fn check(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.arity() {
            return Err(Error::Schema(format!(
                "arity mismatch for {}: expected {}, got {}",
                self.name,
                self.arity(),
                tuple.arity()
            )));
        }
        for (i, attr) in self.attributes.iter().enumerate() {
            let v = tuple.get(i);
            if attr.ty == ValueType::Null || v.is_null() {
                continue;
            }
            let vt = v.value_type();
            let compatible = vt == attr.ty || (attr.ty == ValueType::Float && vt == ValueType::Int);
            if !compatible {
                return Err(Error::Schema(format!(
                    "type mismatch for {}.{}: expected {}, got {} ({v})",
                    self.name, attr.name, attr.ty, vt
                )));
            }
        }
        Ok(())
    }

    /// A renamed copy of this schema (same attributes and key).
    pub fn renamed(&self, name: &str) -> Schema {
        Schema {
            name: Arc::from(name),
            attributes: self.attributes.clone(),
            key: self.key.clone(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let is_key = self.key.contains(&i);
            write!(f, "{}{}: {}", if is_key { "*" } else { "" }, a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

/// Check that `v` conforms to `ty` (helper shared with expression typing).
pub fn value_conforms(v: &Value, ty: ValueType) -> bool {
    ty == ValueType::Null
        || v.is_null()
        || v.value_type() == ty
        || (ty == ValueType::Float && v.value_type() == ValueType::Int)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    fn animal() -> Schema {
        Schema::build(
            "Animal",
            &[
                ("id", ValueType::Int),
                ("scientificName", ValueType::Str),
                ("length", ValueType::Int),
            ],
            &[0],
        )
        .unwrap()
    }

    #[test]
    fn schema_basics() {
        let s = animal();
        assert_eq!(s.name(), "Animal");
        assert_eq!(s.arity(), 3);
        assert_eq!(s.key(), &[0]);
        assert_eq!(s.position("length"), Some(2));
        assert_eq!(s.position("nope"), None);
    }

    #[test]
    fn key_extraction() {
        let s = animal();
        let t = tup![7, "sn1", 5];
        assert_eq!(s.key_of(&t), tup![7]);
    }

    #[test]
    fn effective_key_defaults_to_all() {
        let s = Schema::build("R", &[("a", ValueType::Int), ("b", ValueType::Int)], &[]).unwrap();
        assert_eq!(s.effective_key(), vec![0, 1]);
        assert_eq!(s.key_of(&tup![1, 2]), tup![1, 2]);
    }

    #[test]
    fn check_accepts_valid_and_nulls() {
        let s = animal();
        assert!(s.check(&tup![1, "sn", 5]).is_ok());
        let with_null = Tuple::new(vec![Value::Int(1), Value::Null, Value::Int(5)]);
        assert!(s.check(&with_null).is_ok());
    }

    #[test]
    fn check_rejects_bad_arity_and_type() {
        let s = animal();
        assert!(s.check(&tup![1, "sn"]).is_err());
        assert!(s.check(&tup![1, 2, 3]).is_err());
    }

    #[test]
    fn int_widens_to_float_column() {
        let s = Schema::build("W", &[("w", ValueType::Float)], &[0]).unwrap();
        assert!(s.check(&tup![3]).is_ok());
    }

    #[test]
    fn rejects_out_of_range_key() {
        assert!(Schema::build("R", &[("a", ValueType::Int)], &[1]).is_err());
    }

    #[test]
    fn rejects_duplicate_attribute() {
        assert!(Schema::build("R", &[("a", ValueType::Int), ("a", ValueType::Str)], &[0]).is_err());
    }

    #[test]
    fn display_marks_key() {
        let s = animal();
        assert_eq!(
            s.to_string(),
            "Animal(*id: int, scientificName: str, length: int)"
        );
    }

    #[test]
    fn renamed_keeps_structure() {
        let s = animal().renamed("A2");
        assert_eq!(s.name(), "A2");
        assert_eq!(s.arity(), 3);
        assert_eq!(s.key(), &[0]);
    }
}
