//! # proql-common
//!
//! Shared foundation types for the ProQL reproduction: dynamically typed
//! [`Value`]s, [`Tuple`]s, relation [`Schema`]s, identifier newtypes, and the
//! crate-spanning [`Error`] type.
//!
//! Everything in the workspace — the relational engine, the Datalog
//! evaluator, the provenance graph, and ProQL itself — speaks in terms of
//! these types, so they are deliberately small, totally ordered, and hashable
//! (tuples must be usable as keys of hash and B-tree indexes).

pub mod error;
pub mod ids;
pub mod par;
pub mod rng;
pub mod schema;
pub mod trace;
pub mod tuple;
pub mod value;

pub use error::{Error, Result};
pub use ids::{DerivationId, MappingId, PeerId, RelationId, TupleId};
pub use par::Parallelism;
pub use schema::{Attribute, Schema};
pub use tuple::Tuple;
pub use value::{Value, ValueType};
