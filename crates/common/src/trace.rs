//! Zero-dependency tracing: spans, a thread-local span stack, and a
//! fixed-capacity ring buffer of finished spans.
//!
//! The whole workspace shares one global trace layer. A [`Span`] measures
//! one region of work on the monotonic clock (a process-wide
//! [`Instant`] epoch, so timestamps compare across threads); spans nest
//! through a **thread-local stack**, and crossing the morsel worker pool
//! is explicit: the spawning side captures [`current_context`] and each
//! worker [`adopt`]s it, so children created on worker threads parent to
//! the span that fanned them out ([`crate::par::par_map`] does this
//! hand-off automatically). Finished spans land in a global
//! fixed-capacity ring buffer with per-span `(key, value)` fields;
//! readers reconstruct trees ([`traces_json`], [`render_span_tree`]) by
//! parent links.
//!
//! Tracing is **off by default** and gated by one relaxed atomic load:
//! with the switch off, [`span`] returns an inert guard without touching
//! the thread-local stack, the clock, or the ring. [`init_from_env`]
//! turns it on unless `PROQL_TRACE=0` (the query service calls this at
//! construction).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Default capacity of the finished-span ring buffer.
pub const DEFAULT_CAPACITY: usize = 8192;

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Span/trace id allocator. Ids are process-unique and never 0 (0 is the
/// "no parent" sentinel).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static RING: OnceLock<Mutex<Ring>> = OnceLock::new();

struct Ring {
    cap: usize,
    spans: VecDeque<SpanRecord>,
}

fn ring() -> MutexGuard<'static, Ring> {
    RING.get_or_init(|| {
        Mutex::new(Ring {
            cap: DEFAULT_CAPACITY,
            spans: VecDeque::new(),
        })
    })
    .lock()
    .unwrap_or_else(|e| e.into_inner())
}

/// The process-wide monotonic epoch all span timestamps are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// A finished span as stored in the ring buffer.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Trace the span belongs to (the root span's id, or a connection's
    /// pre-allocated trace id).
    pub trace_id: u64,
    /// This span's id (process-unique, never 0).
    pub span_id: u64,
    /// Parent span id; 0 for roots.
    pub parent_id: u64,
    /// Static name (e.g. `"execute"`, `"op.join"`).
    pub name: &'static str,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the process trace epoch.
    pub end_ns: u64,
    /// Key/value fields attached while the span was live.
    pub fields: Vec<(&'static str, String)>,
}

/// A position in a trace: the pair a cross-thread hand-off carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Context {
    /// Trace id.
    pub trace_id: u64,
    /// Span id new children should parent to (0 ⇒ children are roots of
    /// the trace).
    pub span_id: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Context>> = const { RefCell::new(Vec::new()) };
}

/// Whether tracing is globally enabled (one relaxed atomic load — the
/// entire disabled-path cost).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Flip the global switch.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enable tracing unless `PROQL_TRACE=0`; `PROQL_TRACE_SPANS` overrides
/// the ring capacity. Idempotent; the query service calls this once.
pub fn init_from_env() {
    if std::env::var("PROQL_TRACE").map(|v| v == "0") != Ok(true) {
        set_enabled(true);
    }
    if let Some(cap) = std::env::var("PROQL_TRACE_SPANS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        set_capacity(cap);
    }
}

/// Resize the finished-span ring (drops oldest spans if shrinking).
pub fn set_capacity(cap: usize) {
    let mut r = ring();
    r.cap = cap.max(1);
    while r.spans.len() > r.cap {
        r.spans.pop_front();
    }
}

/// Drop every recorded span (tests and benchmarks).
pub fn clear() {
    ring().spans.clear();
}

/// Allocate a fresh trace id with no root span — the per-connection
/// anchor that makes every request on one connection part of one trace.
/// `None` when tracing is disabled.
pub fn new_trace() -> Option<Context> {
    if !enabled() {
        return None;
    }
    Some(Context {
        trace_id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        span_id: 0,
    })
}

/// The innermost live span on this thread, if any (the value to hand to
/// worker threads via [`adopt`]). `None` when disabled or outside any
/// span.
pub fn current_context() -> Option<Context> {
    if !enabled() {
        return None;
    }
    STACK.with(|s| s.borrow().last().copied())
}

/// Start a span as a child of this thread's innermost live span (or as a
/// new trace root when the stack is empty).
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span(None);
    }
    start(name, STACK.with(|s| s.borrow().last().copied()))
}

/// Start a span under an explicit parent context — the cross-thread /
/// cross-request form. `ctx: None` behaves like [`span`].
pub fn span_child_of(name: &'static str, ctx: Option<Context>) -> Span {
    if !enabled() {
        return Span(None);
    }
    match ctx {
        Some(c) => start(name, Some(c)),
        None => start(name, STACK.with(|s| s.borrow().last().copied())),
    }
}

fn start(name: &'static str, parent: Option<Context>) -> Span {
    let span_id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let (trace_id, parent_id) = match parent {
        Some(c) => (c.trace_id, c.span_id),
        None => (span_id, 0),
    };
    let ctx = Context { trace_id, span_id };
    STACK.with(|s| s.borrow_mut().push(ctx));
    Span(Some(LiveSpan {
        ctx,
        parent_id,
        name,
        start_ns: now_ns(),
        fields: Vec::new(),
    }))
}

/// Adopt a captured [`Context`] on this thread for the guard's lifetime:
/// spans started while it is held parent to the adopted span. The
/// explicit hand-off that carries a trace across the morsel worker pool.
pub fn adopt(ctx: Option<Context>) -> Adopt {
    match ctx {
        Some(c) => {
            STACK.with(|s| s.borrow_mut().push(c));
            Adopt(Some(c))
        }
        None => Adopt(None),
    }
}

/// Guard returned by [`adopt`]; pops the adopted context on drop.
pub struct Adopt(Option<Context>);

impl Drop for Adopt {
    fn drop(&mut self) {
        if let Some(c) = self.0.take() {
            STACK.with(|s| {
                let mut st = s.borrow_mut();
                if let Some(pos) = st.iter().rposition(|x| *x == c) {
                    st.remove(pos);
                }
            });
        }
    }
}

struct LiveSpan {
    ctx: Context,
    parent_id: u64,
    name: &'static str,
    start_ns: u64,
    fields: Vec<(&'static str, String)>,
}

/// A live span; records itself into the ring buffer on drop. Inert (and
/// free) when tracing was disabled at creation.
pub struct Span(Option<LiveSpan>);

impl Span {
    /// Attach a `(key, value)` field. No-op on an inert span.
    pub fn field(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(live) = self.0.as_mut() {
            live.fields.push((key, value.into()));
        }
    }

    /// This span's context (for explicit hand-off to workers).
    pub fn context(&self) -> Option<Context> {
        self.0.as_ref().map(|l| l.ctx)
    }

    /// This span's id, if live.
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|l| l.ctx.span_id)
    }

    /// This span's trace id, if live.
    pub fn trace_id(&self) -> Option<u64> {
        self.0.as_ref().map(|l| l.ctx.trace_id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.0.take() else {
            return;
        };
        let end_ns = now_ns();
        STACK.with(|s| {
            let mut st = s.borrow_mut();
            if let Some(pos) = st.iter().rposition(|x| *x == live.ctx) {
                st.remove(pos);
            }
        });
        let mut r = ring();
        if r.spans.len() >= r.cap {
            r.spans.pop_front();
        }
        r.spans.push_back(SpanRecord {
            trace_id: live.ctx.trace_id,
            span_id: live.ctx.span_id,
            parent_id: live.parent_id,
            name: live.name,
            start_ns: live.start_ns,
            end_ns,
            fields: live.fields,
        });
    }
}

/// Copy of every finished span currently in the ring, oldest first.
pub fn snapshot() -> Vec<SpanRecord> {
    ring().spans.iter().cloned().collect()
}

/// Finished spans of one trace, oldest first.
pub fn spans_for_trace(trace_id: u64) -> Vec<SpanRecord> {
    ring()
        .spans
        .iter()
        .filter(|s| s.trace_id == trace_id)
        .cloned()
        .collect()
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Index structure over one trace's spans: children sorted by start time,
/// roots = spans whose parent is 0 or not in the ring (evicted parents
/// promote their orphaned children rather than hiding them).
struct Tree<'a> {
    spans: &'a [SpanRecord],
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
}

fn build_tree(spans: &[SpanRecord]) -> Tree<'_> {
    let idx_of = |id: u64| spans.iter().position(|s| s.span_id == id);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match (s.parent_id != 0).then(|| idx_of(s.parent_id)).flatten() {
            Some(p) => children[p].push(i),
            None => roots.push(i),
        }
    }
    let by_start = |v: &mut Vec<usize>| {
        v.sort_by_key(|&i| (spans[i].start_ns, spans[i].span_id));
    };
    for c in &mut children {
        by_start(c);
    }
    by_start(&mut roots);
    Tree {
        spans,
        children,
        roots,
    }
}

fn span_json(tree: &Tree<'_>, i: usize, out: &mut String) {
    let s = &tree.spans[i];
    let _ = write!(
        out,
        "{{\"name\": \"{}\", \"id\": {}, \"parent\": {}, \"start_ns\": {}, \"dur_ns\": {}, ",
        esc(s.name),
        s.span_id,
        s.parent_id,
        s.start_ns,
        s.end_ns.saturating_sub(s.start_ns)
    );
    out.push_str("\"fields\": {");
    for (j, (k, v)) in s.fields.iter().enumerate() {
        if j > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": \"{}\"", esc(k), esc(v));
    }
    out.push_str("}, \"children\": [");
    for (j, &c) in tree.children[i].iter().enumerate() {
        if j > 0 {
            out.push_str(", ");
        }
        span_json(tree, c, out);
    }
    out.push_str("]}");
}

/// The most recent `max_traces` traces as one JSON object:
/// `{"traces": [{"trace_id": N, "spans": [<span tree>...]}, ...]}`, most
/// recent trace first, each trace's spans nested by parent links.
pub fn traces_json(max_traces: usize) -> String {
    let all = snapshot();
    // Most recently finished trace first.
    let mut order: Vec<u64> = Vec::new();
    for s in all.iter().rev() {
        if !order.contains(&s.trace_id) {
            order.push(s.trace_id);
            if order.len() >= max_traces {
                break;
            }
        }
    }
    let mut out = String::from("{\"traces\": [");
    for (i, t) in order.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let spans: Vec<SpanRecord> = all.iter().filter(|s| s.trace_id == *t).cloned().collect();
        let tree = build_tree(&spans);
        let _ = write!(out, "{{\"trace_id\": {t}, \"spans\": [");
        for (j, &r) in tree.roots.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            span_json(&tree, r, &mut out);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn render_rec(tree: &Tree<'_>, i: usize, depth: usize, out: &mut String) {
    let s = &tree.spans[i];
    let ms = s.end_ns.saturating_sub(s.start_ns) as f64 / 1e6;
    let _ = write!(out, "{}{} ({ms:.3} ms)", "  ".repeat(depth), s.name);
    for (k, v) in &s.fields {
        let _ = write!(out, " {k}={v}");
    }
    out.push('\n');
    for &c in &tree.children[i] {
        render_rec(tree, c, depth + 1, out);
    }
}

/// Render the subtree rooted at `span_id` as indented text (the
/// slow-query log format). `None` if the span is not in the ring.
pub fn render_span_tree(span_id: u64) -> Option<String> {
    let trace_id = ring().spans.iter().find(|s| s.span_id == span_id)?.trace_id;
    let spans = spans_for_trace(trace_id);
    let tree = build_tree(&spans);
    let root = spans.iter().position(|s| s.span_id == span_id)?;
    let mut out = String::new();
    render_rec(&tree, root, 0, &mut out);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that toggle the global switch.
    fn guard() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = guard();
        set_enabled(false);
        let before = snapshot().len();
        {
            let mut sp = span("noop");
            sp.field("k", "v");
            assert!(sp.context().is_none());
            assert!(current_context().is_none());
        }
        assert_eq!(snapshot().len(), before);
        set_enabled(true);
    }

    #[test]
    fn nesting_and_fields_are_recorded() {
        let _g = guard();
        set_enabled(true);
        let trace_id;
        {
            let mut root = span("root");
            root.field("who", "test");
            trace_id = root.trace_id().unwrap();
            {
                let _child = span("child");
            }
        }
        let spans = spans_for_trace(trace_id);
        assert_eq!(spans.len(), 2);
        let child = spans.iter().find(|s| s.name == "child").unwrap();
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        assert_eq!(child.parent_id, root.span_id);
        assert_eq!(root.parent_id, 0);
        assert!(child.start_ns >= root.start_ns && child.end_ns <= root.end_ns);
        assert_eq!(root.fields, vec![("who", "test".to_string())]);
    }

    #[test]
    fn adopt_carries_context_across_threads() {
        let _g = guard();
        set_enabled(true);
        let trace_id;
        {
            let root = span("fanout");
            trace_id = root.trace_id().unwrap();
            let ctx = root.context();
            std::thread::scope(|s| {
                for _ in 0..3 {
                    s.spawn(|| {
                        let _adopt = adopt(ctx);
                        let _sp = span("worker");
                    });
                }
            });
        }
        let spans = spans_for_trace(trace_id);
        let root_id = spans.iter().find(|s| s.name == "fanout").unwrap().span_id;
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 3);
        for w in workers {
            assert_eq!(
                w.parent_id, root_id,
                "worker must parent to the fanout span"
            );
        }
    }

    #[test]
    fn ring_capacity_evicts_oldest() {
        let _g = guard();
        set_enabled(true);
        set_capacity(4);
        for _ in 0..10 {
            let _sp = span("evictme");
        }
        assert!(snapshot().len() <= 4);
        set_capacity(DEFAULT_CAPACITY);
    }

    #[test]
    fn traces_json_nests_children_and_escapes() {
        let _g = guard();
        set_enabled(true);
        let trace_id;
        {
            let mut root = span("request");
            root.field("text", "say \"hi\"\n");
            trace_id = root.trace_id().unwrap();
            let _c = span("execute");
        }
        let json = traces_json(64);
        assert!(
            json.contains(&format!("\"trace_id\": {trace_id}")),
            "{json}"
        );
        assert!(json.contains("\"name\": \"request\""), "{json}");
        assert!(json.contains("say \\\"hi\\\"\\n"), "{json}");
        // The child is nested inside the root's children array.
        let root_pos = json.find("\"name\": \"request\"").unwrap();
        let sub = &json[root_pos..];
        assert!(sub.contains("\"name\": \"execute\""), "{json}");
    }

    #[test]
    fn render_span_tree_is_indented() {
        let _g = guard();
        set_enabled(true);
        let root_id;
        {
            let root = span("slowreq");
            root_id = root.id().unwrap();
            let _c = span("inner");
        }
        let text = render_span_tree(root_id).unwrap();
        assert!(text.starts_with("slowreq ("), "{text}");
        assert!(text.contains("\n  inner ("), "{text}");
        assert!(render_span_tree(u64::MAX).is_none());
    }

    #[test]
    fn new_trace_groups_independent_spans() {
        let _g = guard();
        set_enabled(true);
        let ctx = new_trace().unwrap();
        {
            let _a = span_child_of("req-a", Some(ctx));
        }
        {
            let _b = span_child_of("req-b", Some(ctx));
        }
        let spans = spans_for_trace(ctx.trace_id);
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.parent_id == 0));
    }
}
