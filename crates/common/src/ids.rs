//! Identifier newtypes used across the workspace.
//!
//! Provenance graphs reference relations, mappings, peers, tuples, and
//! derivations; giving each its own newtype prevents the classic
//! "joined on the wrong id" bug in graph code.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a relation in a catalog / provenance schema graph.
    RelationId,
    "rel"
);
id_type!(
    /// Identifies a schema mapping (a Datalog rule with a name, e.g. `m5`).
    MappingId,
    "m"
);
id_type!(
    /// Identifies a CDSS peer.
    PeerId,
    "peer"
);
id_type!(
    /// Identifies a tuple node in a provenance graph.
    TupleId,
    "t"
);
id_type!(
    /// Identifies a derivation node in a provenance graph.
    DerivationId,
    "d"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes() {
        assert_eq!(RelationId(3).to_string(), "rel3");
        assert_eq!(MappingId(5).to_string(), "m5");
        assert_eq!(PeerId(0).to_string(), "peer0");
        assert_eq!(TupleId(9).to_string(), "t9");
        assert_eq!(DerivationId(1).to_string(), "d1");
    }

    #[test]
    fn round_trip_index() {
        let r: RelationId = 42usize.into();
        assert_eq!(r.index(), 42);
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(TupleId(1) < TupleId(2));
    }
}
