//! Morsel-driven parallelism primitives (zero external deps).
//!
//! The batch executor, the projection runner, and the semiring evaluator
//! all parallelize over `std::thread::scope`: work is cut into fixed-size
//! **morsels** (index ranges), a small pool of scoped threads pulls morsel
//! indices from an atomic counter (work stealing without queues), and the
//! per-morsel results are reassembled **in morsel index order** — which is
//! what makes every parallel operator bit-identical to its serial twin.
//!
//! The [`Parallelism`] knob is threaded from `EngineOptions` down through
//! `proql_storage::batch_exec`, `proql::exec`, and `proql_semiring::eval`.
//! It defaults to [`Parallelism::Serial`], so nothing changes unless a
//! caller (or the `PROQL_THREADS` environment variable) asks for threads.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many rows one morsel covers. Small enough to load-balance skewed
/// operators, large enough that per-morsel bookkeeping (one slice clone +
/// one result slot) is noise against the vectorized work inside.
pub const MORSEL_ROWS: usize = 1024;

/// Degree of parallelism for query execution and annotation evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded (the default; identical to the pre-parallel engine).
    #[default]
    Serial,
    /// Exactly `n` worker threads (`Threads(0)` and `Threads(1)` mean
    /// serial).
    Threads(usize),
    /// One thread per available CPU
    /// ([`std::thread::available_parallelism`]).
    Auto,
}

impl Parallelism {
    /// Read the knob from the `PROQL_THREADS` environment variable:
    /// unset/`0`/`1` → [`Parallelism::Serial`], `auto` →
    /// [`Parallelism::Auto`], `n` → [`Parallelism::Threads`]`(n)`.
    pub fn from_env() -> Parallelism {
        match std::env::var("PROQL_THREADS") {
            Ok(v) if v.eq_ignore_ascii_case("auto") => Parallelism::Auto,
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n > 1 => Parallelism::Threads(n),
                _ => Parallelism::Serial,
            },
            Err(_) => Parallelism::Serial,
        }
    }

    /// The worker-thread count this knob resolves to (always ≥ 1).
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// True iff this knob resolves to more than one worker thread.
    pub fn is_parallel(self) -> bool {
        self.threads() > 1
    }

    /// Pin `Auto` to a concrete [`Parallelism::Threads`] count. Entry
    /// points call this once per query: `available_parallelism` reads
    /// cgroup files on Linux, far too slow to consult per operator.
    pub fn resolved(self) -> Parallelism {
        match self {
            Parallelism::Auto => Parallelism::Threads(self.threads()),
            other => other,
        }
    }
}

/// Cut `0..rows` into [`MORSEL_ROWS`]-sized ranges (the last may be short).
pub fn morsel_ranges(rows: usize) -> Vec<Range<usize>> {
    (0..rows)
        .step_by(MORSEL_ROWS.max(1))
        .map(|start| start..(start + MORSEL_ROWS).min(rows))
        .collect()
}

/// Map `f` over `0..n`, returning the results **in index order**.
///
/// With `threads <= 1` (or tiny `n`) this is a plain serial map. Otherwise
/// scoped worker threads pull indices from a shared atomic counter — cheap
/// work stealing, so skewed items still balance — and results are slotted
/// back by index, making the output independent of scheduling. Worker
/// panics propagate to the caller.
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    // Thread-locals do not cross scoped threads: capture the spawning
    // side's trace context once and have each worker adopt it, so spans
    // created inside `f` parent to the span that fanned the work out.
    let trace_ctx = crate::trace::current_context();
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let _trace = crate::trace::adopt(trace_ctx);
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, v) in part {
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_index_order() {
        for threads in [1, 2, 8] {
            let out = par_map(1000, threads, |i| i * 3);
            assert_eq!(out, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        assert!(par_map(0, 4, |i| i).is_empty());
        assert_eq!(par_map(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn morsel_ranges_cover_exactly() {
        for rows in [0, 1, MORSEL_ROWS - 1, MORSEL_ROWS, MORSEL_ROWS * 3 + 5] {
            let ranges = morsel_ranges(rows);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, rows);
        }
    }

    #[test]
    fn parallelism_resolves_thread_counts() {
        assert_eq!(Parallelism::Serial.threads(), 1);
        assert_eq!(Parallelism::Threads(0).threads(), 1);
        assert_eq!(Parallelism::Threads(6).threads(), 6);
        assert!(Parallelism::Auto.threads() >= 1);
        assert!(!Parallelism::Serial.is_parallel());
        assert!(Parallelism::Threads(2).is_parallel());
    }

    #[test]
    fn par_map_result_error_selection_is_deterministic() {
        // Callers fold Vec<Result<_>> in index order; the first error by
        // index wins regardless of which thread hit it first.
        for threads in [1, 4] {
            let out: Vec<Result<usize, usize>> =
                par_map(100, threads, |i| if i % 7 == 3 { Err(i) } else { Ok(i) });
            let first_err = out.into_iter().find_map(|r| r.err());
            assert_eq!(first_err, Some(3));
        }
    }
}
