//! Turning event expressions into probabilities.
//!
//! The probability semiring produces DNF event expressions; computing their
//! probability is #P-complete in general (paper §2.1, footnote 2). Two
//! estimators are provided: exact inclusion–exclusion for small DNFs, and a
//! Monte-Carlo sampler for larger ones — both assuming independent base
//! events, as in Trio-style probabilistic databases.

use crate::annotation::Dnf;
use proql_common::{Error, Result};
use std::collections::BTreeSet;

/// Exact probability of a DNF over independent base events via
/// inclusion–exclusion. `probs` maps base-event names to probabilities;
/// missing events default to `default_p`. Errors when the DNF has more
/// than 20 conjuncts (2^20 subsets).
pub fn event_probability(dnf: &Dnf, probs: &dyn Fn(&str) -> f64) -> Result<f64> {
    let conjuncts: Vec<&BTreeSet<String>> = dnf.iter().collect();
    let n = conjuncts.len();
    if n == 0 {
        return Ok(0.0);
    }
    if n > 20 {
        return Err(Error::Semiring(format!(
            "inclusion–exclusion over {n} conjuncts is infeasible; \
             use event_probability_mc"
        )));
    }
    let mut total = 0.0;
    for mask in 1u32..(1 << n) {
        // Union of the selected conjuncts' events.
        let mut union: BTreeSet<&String> = BTreeSet::new();
        for (i, c) in conjuncts.iter().enumerate() {
            if mask & (1 << i) != 0 {
                union.extend(c.iter());
            }
        }
        let p: f64 = union.iter().map(|e| probs(e)).product();
        if mask.count_ones() % 2 == 1 {
            total += p;
        } else {
            total -= p;
        }
    }
    Ok(total.clamp(0.0, 1.0))
}

/// Monte-Carlo estimate of the DNF probability with `samples` draws and a
/// deterministic seed (xorshift64*; no external RNG dependency so this
/// crate stays dependency-light).
pub fn event_probability_mc(
    dnf: &Dnf,
    probs: &dyn Fn(&str) -> f64,
    samples: u32,
    seed: u64,
) -> f64 {
    if dnf.is_empty() || samples == 0 {
        return 0.0;
    }
    // Stable order of events across the whole DNF.
    let events: Vec<&String> = {
        let mut set = BTreeSet::new();
        for c in dnf {
            set.extend(c.iter());
        }
        set.into_iter().collect()
    };
    let mut state = seed.max(1);
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut hits = 0u32;
    for _ in 0..samples {
        let world: std::collections::HashMap<&String, bool> =
            events.iter().map(|e| (*e, next() < probs(e))).collect();
        let sat = dnf
            .iter()
            .any(|conj| conj.iter().all(|e| *world.get(&e).unwrap_or(&false)));
        if sat {
            hits += 1;
        }
    }
    f64::from(hits) / f64::from(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dnf(conjs: &[&[&str]]) -> Dnf {
        conjs
            .iter()
            .map(|c| c.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn single_conjunct_multiplies() {
        let d = dnf(&[&["x", "y"]]);
        let p = event_probability(&d, &|_| 0.5).unwrap();
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn disjoint_union_inclusion_exclusion() {
        // P(x ∨ y) = 0.5 + 0.5 - 0.25 = 0.75 for independent x, y.
        let d = dnf(&[&["x"], &["y"]]);
        let p = event_probability(&d, &|_| 0.5).unwrap();
        assert!((p - 0.75).abs() < 1e-12);
    }

    #[test]
    fn overlapping_conjuncts() {
        // P(x ∨ (x ∧ y)) = P(x) since x∧y ⊂ x... but unminimized DNF must
        // still give the right answer: 0.5 + 0.25 - 0.25 = 0.5.
        let d = dnf(&[&["x"], &["x", "y"]]);
        let p = event_probability(&d, &|_| 0.5).unwrap();
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_dnf_is_impossible_true_is_certain() {
        assert_eq!(event_probability(&Dnf::new(), &|_| 0.5).unwrap(), 0.0);
        let mut truth = Dnf::new();
        truth.insert(std::collections::BTreeSet::new());
        assert_eq!(event_probability(&truth, &|_| 0.5).unwrap(), 1.0);
    }

    #[test]
    fn too_many_conjuncts_errors() {
        let conjs: Vec<Vec<String>> = (0..21).map(|i| vec![format!("e{i}")]).collect();
        let d: Dnf = conjs.into_iter().map(|c| c.into_iter().collect()).collect();
        assert!(event_probability(&d, &|_| 0.5).is_err());
    }

    #[test]
    fn monte_carlo_approximates_exact() {
        let d = dnf(&[&["x"], &["y", "z"]]);
        let exact = event_probability(&d, &|_| 0.5).unwrap();
        let mc = event_probability_mc(&d, &|_| 0.5, 40_000, 42);
        assert!(
            (mc - exact).abs() < 0.02,
            "mc={mc} exact={exact} differ too much"
        );
    }

    #[test]
    fn monte_carlo_is_deterministic_per_seed() {
        let d = dnf(&[&["x"], &["y"]]);
        let a = event_probability_mc(&d, &|_| 0.3, 1000, 7);
        let b = event_probability_mc(&d, &|_| 0.3, 1000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn heterogeneous_probabilities() {
        let d = dnf(&[&["x", "y"]]);
        let p = event_probability(&d, &|e| if e == "x" { 0.2 } else { 0.5 }).unwrap();
        assert!((p - 0.1).abs() < 1e-12);
    }
}
