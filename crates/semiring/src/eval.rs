//! Bottom-up annotation evaluation over provenance graphs (paper §2.1).
//!
//! Acyclic graphs are evaluated in one topological pass. Cyclic graphs
//! (recursive mappings — the paper's future-work case, which this
//! implementation supports) use Kleene fixpoint iteration, valid exactly
//! for the idempotent + absorptive semirings (Table 1's first five rows);
//! counting and polynomial annotations on cyclic graphs are reported as
//! divergent.

use crate::annotation::Annotation;
use crate::semiring::{MapFn, SemiringKind};
use proql_common::par::par_map;
use proql_common::{DerivationId, Error, Parallelism, Result, TupleId};
use proql_provgraph::{ProvGraph, TupleNode};
use std::collections::{HashMap, HashSet};

/// A boxed leaf-assignment closure. `Send + Sync` so the level-parallel
/// evaluator can call it from worker threads.
pub type LeafFn<'a> = Box<dyn Fn(&TupleNode, &str) -> Annotation + Send + Sync + 'a>;

/// The value/function assignment of an annotation computation: which
/// semiring, what each leaf gets, and each mapping's unary function.
pub struct Assignment<'a> {
    /// The semiring to evaluate in.
    pub kind: SemiringKind,
    /// Base value of a leaf tuple node. Receives the node and its label
    /// (`"R(k1,k2)"`). Defaults should fall back to
    /// [`SemiringKind::default_leaf`].
    pub leaf: LeafFn<'a>,
    /// Unary function of each mapping (by name); default is identity.
    pub map_fn: Box<dyn Fn(&str) -> MapFn + Send + Sync + 'a>,
    /// Value of *dangling* leaves — tuple nodes with no derivations at all
    /// in the (projected) graph. `None` (the default) applies the `leaf`
    /// assignment, per the paper's projected-subgraph semantics; update
    /// exchange sets this to the semiring zero so tuples that lost every
    /// derivation are recognized as underivable.
    pub dangling: Option<Annotation>,
    /// Derivations to evaluate **as if removed**: they contribute nothing
    /// to their targets' ⊕, and a tuple whose every derivation is masked
    /// counts as dangling. CDSS deletion uses this to ask "what remains
    /// derivable without these `+` derivations?" against a shared,
    /// unmodified graph instead of cloning or rebuilding it. Ids are only
    /// meaningful for the graph being evaluated.
    pub masked: Option<HashSet<DerivationId>>,
}

impl<'a> Assignment<'a> {
    /// The default assignment: every leaf gets the semiring's default base
    /// value, every mapping is neutral.
    pub fn default_for(kind: SemiringKind) -> Assignment<'static> {
        Assignment {
            kind,
            leaf: Box::new(move |_, label| kind.default_leaf(label)),
            map_fn: Box::new(|_| MapFn::Identity),
            dangling: None,
            masked: None,
        }
    }

    /// Override the leaf assignment.
    pub fn with_leaf(
        mut self,
        f: impl Fn(&TupleNode, &str) -> Annotation + Send + Sync + 'a,
    ) -> Assignment<'a> {
        self.leaf = Box::new(f);
        self
    }

    /// Override the mapping-function assignment.
    pub fn with_map_fn(mut self, f: impl Fn(&str) -> MapFn + Send + Sync + 'a) -> Assignment<'a> {
        self.map_fn = Box::new(f);
        self
    }

    /// Give dangling leaves (no derivations at all) a fixed value.
    pub fn with_dangling(mut self, v: Annotation) -> Assignment<'a> {
        self.dangling = Some(v);
        self
    }

    /// Evaluate as if the given derivations were removed from the graph.
    pub fn with_masked(mut self, masked: HashSet<DerivationId>) -> Assignment<'a> {
        self.masked = Some(masked);
        self
    }
}

/// The canonical label of a tuple node: `R(k1,k2)`.
pub fn leaf_label(node: &TupleNode) -> String {
    let keys: Vec<String> = node.key.iter().map(|v| v.to_string()).collect();
    format!("{}({})", node.relation, keys.join(","))
}

/// Evaluate annotations for every tuple node of `graph`.
///
/// Dispatches to the single-pass algorithm on acyclic graphs and to
/// fixpoint iteration otherwise.
pub fn evaluate(
    graph: &ProvGraph,
    assign: &Assignment<'_>,
) -> Result<HashMap<TupleId, Annotation>> {
    evaluate_with(graph, assign, Parallelism::Serial)
}

/// [`evaluate`] with a [`Parallelism`] knob. On acyclic graphs with
/// parallelism enabled, the bottom-up pass runs **level by level** over
/// the CSR adjacency: a tuple's level is one past its deepest source, so
/// tuples of one level are independent and evaluate on worker threads,
/// with results merged deterministically. Values are identical to the
/// serial walk — each tuple's fold still visits its derivations and
/// sources in the same order — and a failing evaluation re-runs serially
/// so even the surfaced error is the serial one. Cyclic graphs use the
/// (serial) fixpoint path under every knob.
pub fn evaluate_with(
    graph: &ProvGraph,
    assign: &Assignment<'_>,
    par: Parallelism,
) -> Result<HashMap<TupleId, Annotation>> {
    let par = par.resolved();
    match graph.topo_order() {
        Some(order) if par.is_parallel() => evaluate_by_levels(graph, assign, &order, par),
        Some(order) => evaluate_in_order(graph, assign, &order),
        None => evaluate_fixpoint(graph, assign),
    }
}

/// Evaluate assuming the graph is acyclic; errors if it is not.
pub fn evaluate_acyclic(
    graph: &ProvGraph,
    assign: &Assignment<'_>,
) -> Result<HashMap<TupleId, Annotation>> {
    let order = graph
        .topo_order()
        .ok_or_else(|| Error::Semiring("provenance graph is cyclic".into()))?;
    evaluate_in_order(graph, assign, &order)
}

/// Incremental re-evaluation of an **acyclic** graph after a localized
/// change — the annotation half of incremental view maintenance.
///
/// `prior` is a complete evaluation of the graph *before* the change (as
/// returned by [`evaluate`]); `dirty` is the set of tuple ids whose
/// evaluation inputs changed: tuples that gained or lost a derivation,
/// tuples whose stored values (and hence leaf assignment) changed, and
/// every tuple newly added to the graph. Only the dirty tuples and the
/// consumers transitively downstream of an actually-changed value are
/// recomputed; a recomputed value equal to its prior one cuts propagation
/// there, so the cost is proportional to the affected region, not the
/// graph. Tuples outside that region keep their prior values verbatim.
///
/// Tuple ids must be stable between `prior` and `graph` (no compaction in
/// between). Cyclic graphs are rejected — fixpoint iteration has no sound
/// notion of a local boundary — and callers fall back to [`evaluate`].
pub fn evaluate_dirty(
    graph: &ProvGraph,
    assign: &Assignment<'_>,
    prior: &HashMap<TupleId, Annotation>,
    dirty: &HashSet<TupleId>,
) -> Result<HashMap<TupleId, Annotation>> {
    let order = graph.topo_order().ok_or_else(|| {
        Error::Semiring("dirty re-evaluation requires an acyclic provenance graph".into())
    })?;
    let mut vals: DenseVals = vec![None; graph.tuple_id_bound()];
    for t in graph.tuple_ids() {
        vals[t.index()] = prior.get(&t).cloned();
    }
    let mut needs: Vec<bool> = vec![false; graph.tuple_id_bound()];
    for t in dirty {
        if t.index() < needs.len() {
            needs[t.index()] = true;
        }
    }
    for &t in &order {
        // A live tuple with no prior value must be new: recompute it even
        // when the caller forgot to mark it dirty.
        if !needs[t.index()] && vals[t.index()].is_some() {
            continue;
        }
        let v = tuple_value(graph, assign, t, &vals)?;
        if vals[t.index()].as_ref() == Some(&v) {
            continue; // unchanged: downstream consumers keep their values
        }
        vals[t.index()] = Some(v);
        for &d in graph.consumers_of(t) {
            for target in &graph.derivation(d).targets {
                needs[target.index()] = true;
            }
        }
    }
    Ok(to_map(vals))
}

/// Dense value table for the bottom-up walk: tuple id → annotation. Flat
/// indexing matches the graph's CSR adjacency — the hot loop is two vector
/// walks, no hashing.
type DenseVals = Vec<Option<Annotation>>;

fn derivation_value(
    graph: &ProvGraph,
    assign: &Assignment<'_>,
    d: DerivationId,
    tuple_vals: &DenseVals,
) -> Result<Annotation> {
    let node = graph.derivation(d);
    let inner = if node.is_base {
        // A `+` derivation: its value is the leaf assignment of its target.
        let target = node
            .targets
            .first()
            .ok_or_else(|| Error::Semiring("base derivation without target".into()))?;
        let tn = graph.tuple(*target);
        let v = (assign.leaf)(tn, &leaf_label(tn));
        assign.kind.check_value(&v)?;
        v
    } else {
        let mut acc = assign.kind.one();
        for s in &node.sources {
            let sv = tuple_vals[s.index()]
                .clone()
                .unwrap_or_else(|| assign.kind.zero());
            acc = assign.kind.times(&acc, &sv)?;
        }
        acc
    };
    (assign.map_fn)(&node.mapping).apply(assign.kind, &inner)
}

fn tuple_value(
    graph: &ProvGraph,
    assign: &Assignment<'_>,
    t: TupleId,
    tuple_vals: &DenseVals,
) -> Result<Annotation> {
    let derivs = graph.derivations_of(t);
    let is_masked = |d: &DerivationId| assign.masked.as_ref().is_some_and(|m| m.contains(d));
    if derivs.iter().all(is_masked) {
        // Dangling leaf (possibly only after masking): gets the configured
        // value or a leaf assignment.
        if let Some(v) = &assign.dangling {
            return Ok(v.clone());
        }
        let tn = graph.tuple(t);
        let v = (assign.leaf)(tn, &leaf_label(tn));
        assign.kind.check_value(&v)?;
        return Ok(v);
    }
    let mut acc = assign.kind.zero();
    for &d in derivs {
        if is_masked(&d) {
            continue;
        }
        let dv = derivation_value(graph, assign, d, tuple_vals)?;
        acc = assign.kind.plus(&acc, &dv)?;
    }
    Ok(acc)
}

fn to_map(vals: DenseVals) -> HashMap<TupleId, Annotation> {
    vals.into_iter()
        .enumerate()
        .filter_map(|(i, v)| v.map(|v| (TupleId(i as u32), v)))
        .collect()
}

fn evaluate_in_order(
    graph: &ProvGraph,
    assign: &Assignment<'_>,
    order: &[TupleId],
) -> Result<HashMap<TupleId, Annotation>> {
    let mut vals: DenseVals = vec![None; graph.tuple_id_bound()];
    for &t in order {
        let v = tuple_value(graph, assign, t, &vals)?;
        vals[t.index()] = Some(v);
    }
    Ok(to_map(vals))
}

/// Levels below which a level evaluates serially anyway (thread handoff
/// costs more than a handful of folds).
const PAR_LEVEL_MIN: usize = 64;

/// Bucket an acyclic graph's tuples by **derivation depth**: a tuple's
/// level is one past the deepest source feeding any of its derivations
/// (base derivations contribute level 0), so tuples of one level depend
/// only on strictly lower levels. `order` must be a topological order (it
/// levels sources before their targets, and fixes the within-level
/// ordering). Shared by the level-parallel walk here and the
/// grouped-aggregation ⊕ evaluator in `proql`.
pub fn level_order(graph: &ProvGraph, order: &[TupleId]) -> Vec<Vec<TupleId>> {
    let mut level: Vec<u32> = vec![0; graph.tuple_id_bound()];
    let mut max_level = 0u32;
    for &t in order {
        let mut lvl = 0;
        for &d in graph.derivations_of(t) {
            for s in &graph.derivation(d).sources {
                lvl = lvl.max(level[s.index()] + 1);
            }
        }
        level[t.index()] = lvl;
        max_level = max_level.max(lvl);
    }
    let mut by_level: Vec<Vec<TupleId>> = vec![Vec::new(); max_level as usize + 1];
    for &t in order {
        by_level[level[t.index()] as usize].push(t);
    }
    by_level
}

/// Level-parallel bottom-up pass over an acyclic graph: group tuples by
/// derivation depth, then evaluate each level's tuples concurrently (they
/// only read values of strictly lower levels).
fn evaluate_by_levels(
    graph: &ProvGraph,
    assign: &Assignment<'_>,
    order: &[TupleId],
    par: Parallelism,
) -> Result<HashMap<TupleId, Annotation>> {
    let by_level = level_order(graph, order);
    let mut vals: DenseVals = vec![None; graph.tuple_id_bound()];
    for tuples in &by_level {
        if tuples.len() < PAR_LEVEL_MIN {
            for &t in tuples {
                match tuple_value(graph, assign, t, &vals) {
                    Ok(v) => vals[t.index()] = Some(v),
                    // Level order visits failures in a different order than
                    // the serial topo walk; re-run serially so the surfaced
                    // error is exactly the serial one (per-tuple folds are
                    // deterministic, so the serial pass must fail too).
                    Err(_) => return evaluate_in_order(graph, assign, order),
                }
            }
            continue;
        }
        let results = par_map(tuples.len(), par.threads(), |i| {
            tuple_value(graph, assign, tuples[i], &vals)
        });
        for (&t, v) in tuples.iter().zip(results) {
            match v {
                Ok(v) => vals[t.index()] = Some(v),
                Err(_) => return evaluate_in_order(graph, assign, order),
            }
        }
    }
    Ok(to_map(vals))
}

fn evaluate_fixpoint(
    graph: &ProvGraph,
    assign: &Assignment<'_>,
) -> Result<HashMap<TupleId, Annotation>> {
    if !assign.kind.converges_on_cycles() {
        return Err(Error::Semiring(format!(
            "the {} semiring may diverge on cyclic provenance graphs \
             (not idempotent/absorptive); the paper's Table 1 limits cycles \
             to the first five semirings",
            assign.kind
        )));
    }
    let n = graph.tuple_count() + graph.derivation_count() + 2;
    let mut vals: DenseVals = vec![Some(assign.kind.zero()); graph.tuple_id_bound()];
    for _ in 0..n {
        let mut changed = false;
        for t in graph.tuple_ids() {
            let v = tuple_value(graph, assign, t, &vals)?;
            if vals[t.index()].as_ref() != Some(&v) {
                vals[t.index()] = Some(v);
                changed = true;
            }
        }
        if !changed {
            return Ok(to_map(vals));
        }
    }
    Err(Error::Semiring(
        "fixpoint iteration did not converge (non-monotone assignment?)".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::SecurityLevel;
    use proql_common::tup;
    use proql_provgraph::system::example_2_1;

    fn example_graph() -> ProvGraph {
        ProvGraph::from_system(&example_2_1().unwrap()).unwrap()
    }

    #[test]
    fn masked_derivations_evaluate_as_removed() {
        let g = example_graph();
        // Mask the `+` derivation grounding C(2,cn2): the C/N cycle loses
        // its only ground support, so the cn2 family becomes underivable
        // without mutating the shared graph.
        let c2 = g.find_tuple("C", &tup![2, "cn2"]).unwrap();
        let base = g
            .derivations_of(c2)
            .iter()
            .copied()
            .find(|&d| g.derivation(d).is_base)
            .expect("C(2,cn2) is locally grounded");
        let assign = Assignment::default_for(SemiringKind::Derivability)
            .with_dangling(Annotation::Bool(false))
            .with_masked([base].into_iter().collect());
        let vals = evaluate(&g, &assign).unwrap();
        assert_eq!(vals.get(&c2), Some(&Annotation::Bool(false)));
        let ocn2 = g.find_tuple("O", &tup!["cn2"]).unwrap();
        assert_eq!(vals.get(&ocn2), Some(&Annotation::Bool(false)));
        // Tuples grounded elsewhere survive the mask.
        let osn1 = g.find_tuple("O", &tup!["sn1"]).unwrap();
        assert_eq!(vals.get(&osn1), Some(&Annotation::Bool(true)));
        // The same graph unmasked still derives everything.
        let assign = Assignment::default_for(SemiringKind::Derivability)
            .with_dangling(Annotation::Bool(false));
        let vals = evaluate(&g, &assign).unwrap();
        assert_eq!(vals.get(&c2), Some(&Annotation::Bool(true)));
    }

    #[test]
    fn derivability_on_cyclic_example() {
        // The full Figure 1 graph is cyclic; derivability converges by
        // fixpoint and everything is derivable.
        let g = example_graph();
        let vals = evaluate(&g, &Assignment::default_for(SemiringKind::Derivability)).unwrap();
        for t in g.tuple_ids() {
            assert_eq!(
                vals[&t],
                Annotation::Bool(true),
                "{} should be derivable",
                leaf_label(g.tuple(t))
            );
        }
    }

    #[test]
    fn counting_errors_on_cyclic_graph() {
        let g = example_graph();
        let err = evaluate(&g, &Assignment::default_for(SemiringKind::Counting)).unwrap_err();
        assert!(err.to_string().contains("diverge"));
    }

    #[test]
    fn counting_on_acyclic_projection() {
        let g = example_graph();
        // Keep base + m4 + m5 derivations: acyclic, O tuples countable.
        let derivs: Vec<_> = g
            .derivation_ids()
            .filter(|&d| {
                let n = g.derivation(d);
                n.is_base || n.mapping == "m4" || n.mapping == "m5"
            })
            .collect();
        let sub = g.project(derivs);
        let vals = evaluate(&sub, &Assignment::default_for(SemiringKind::Counting)).unwrap();
        // O(sn1): only via m4 from A(1) => 1 derivation... but A(1) itself
        // has one base derivation, so count(O(sn1)) = 1.
        let osn1 = sub.find_tuple("O", &tup!["sn1"]).unwrap();
        assert_eq!(vals[&osn1], Annotation::Count(1));
        // O(cn2) via m5 from A(2) and C(2,cn2) (both base) = 1.
        let ocn2 = sub.find_tuple("O", &tup!["cn2"]).unwrap();
        assert_eq!(vals[&ocn2], Annotation::Count(1));
    }

    #[test]
    fn q7_trust_policy() {
        // Paper Q7: distrust A tuples with len >= 6, distrust mapping m4,
        // trust everything else. O(sn1,7) comes only via m4 (distrusted) or
        // from A(1) (len 7, distrusted): untrusted. O(cn2,5) via m5 from
        // A(2) (len 5, trusted) and C(2,cn2) (trusted): trusted.
        let g = example_graph();
        let assign = Assignment::default_for(SemiringKind::Trust)
            .with_leaf(|node, _| {
                if node.relation == "A" {
                    let len = node
                        .values
                        .as_ref()
                        .and_then(|v| v.get(2).as_int())
                        .unwrap_or(0);
                    Annotation::Bool(len < 6)
                } else {
                    Annotation::Bool(true)
                }
            })
            .with_map_fn(|m| {
                if m == "m4" {
                    MapFn::zero(SemiringKind::Trust)
                } else {
                    MapFn::Identity
                }
            });
        let vals = evaluate(&g, &assign).unwrap();
        let osn1 = g.find_tuple("O", &tup!["sn1"]).unwrap();
        assert_eq!(vals[&osn1], Annotation::Bool(false));
        let ocn2 = g.find_tuple("O", &tup!["cn2"]).unwrap();
        assert_eq!(vals[&ocn2], Annotation::Bool(true));
        // cn1 depends on A(1) (len 7): untrusted through every path.
        let ocn1 = g.find_tuple("O", &tup!["cn1"]).unwrap();
        assert_eq!(vals[&ocn1], Annotation::Bool(false));
    }

    #[test]
    fn lineage_collects_base_tuples() {
        let g = example_graph();
        let vals = evaluate(&g, &Assignment::default_for(SemiringKind::Lineage)).unwrap();
        let ocn2 = g.find_tuple("O", &tup!["cn2"]).unwrap();
        let lineage = vals[&ocn2].as_lineage().unwrap();
        assert!(lineage.contains("A(2)"));
        assert!(lineage.contains("C(2,cn2)"));
        assert!(!lineage.contains("A(1)"));
    }

    #[test]
    fn weight_takes_cheapest_path() {
        let g = example_graph();
        // Leaf weights: A tuples cost 10, others cost 1.
        let assign = Assignment::default_for(SemiringKind::Weight)
            .with_leaf(|node, _| Annotation::Weight(if node.relation == "A" { 10.0 } else { 1.0 }));
        let vals = evaluate(&g, &assign).unwrap();
        // O(cn2) via m5 needs A(2) + C(2,cn2): 10 + 1 = 11.
        let ocn2 = g.find_tuple("O", &tup!["cn2"]).unwrap();
        assert_eq!(vals[&ocn2], Annotation::Weight(11.0));
        // O(sn2) via m4 from A(2) alone: 10.
        let osn2 = g.find_tuple("O", &tup!["sn2"]).unwrap();
        assert_eq!(vals[&osn2], Annotation::Weight(10.0));
    }

    #[test]
    fn confidentiality_levels_combine() {
        let g = example_graph();
        let assign = Assignment::default_for(SemiringKind::Confidentiality).with_leaf(|node, _| {
            Annotation::Level(if node.relation == "A" {
                SecurityLevel::Secret
            } else {
                SecurityLevel::Public
            })
        });
        let vals = evaluate(&g, &assign).unwrap();
        // Every O tuple requires some A tuple: at least Secret.
        let ocn2 = g.find_tuple("O", &tup!["cn2"]).unwrap();
        assert_eq!(vals[&ocn2], Annotation::Level(SecurityLevel::Secret));
    }

    #[test]
    fn probability_events_compose() {
        let g = example_graph();
        let vals = evaluate(&g, &Assignment::default_for(SemiringKind::Probability)).unwrap();
        let ocn2 = g.find_tuple("O", &tup!["cn2"]).unwrap();
        let ev = vals[&ocn2].as_event().unwrap();
        // Single minimal conjunct {A(2), C(2,cn2)}.
        assert_eq!(ev.len(), 1);
        let conj = ev.iter().next().unwrap();
        assert!(conj.contains("A(2)") && conj.contains("C(2,cn2)"));
    }

    #[test]
    fn polynomial_how_provenance_on_acyclic_projection() {
        let g = example_graph();
        let derivs: Vec<_> = g
            .derivation_ids()
            .filter(|&d| {
                let n = g.derivation(d);
                n.is_base || n.mapping == "m4" || n.mapping == "m5"
            })
            .collect();
        let sub = g.project(derivs);
        let vals = evaluate(&sub, &Assignment::default_for(SemiringKind::Polynomial)).unwrap();
        let ocn2 = sub.find_tuple("O", &tup!["cn2"]).unwrap();
        assert_eq!(vals[&ocn2].to_string(), "A(2)·C(2,cn2)");
    }

    #[test]
    fn untrusted_leaf_breaks_derivability_chain() {
        let g = example_graph();
        // Distrust everything: nothing is derivable as trusted.
        let assign =
            Assignment::default_for(SemiringKind::Trust).with_leaf(|_, _| Annotation::Bool(false));
        let vals = evaluate(&g, &assign).unwrap();
        for t in g.tuple_ids() {
            assert_eq!(vals[&t], Annotation::Bool(false));
        }
    }

    #[test]
    fn leaf_type_mismatch_is_error() {
        let g = example_graph();
        let assign =
            Assignment::default_for(SemiringKind::Weight).with_leaf(|_, _| Annotation::Bool(true));
        assert!(evaluate(&g, &assign).is_err());
    }

    #[test]
    fn evaluate_acyclic_rejects_cycles() {
        let g = example_graph();
        assert!(
            evaluate_acyclic(&g, &Assignment::default_for(SemiringKind::Derivability)).is_err()
        );
    }

    #[test]
    fn level_parallel_evaluation_matches_serial_walk() {
        // A wide acyclic DAG (> PAR_LEVEL_MIN tuples per level) so the
        // parallel path actually fans out.
        let mut g = ProvGraph::new();
        let width = super::PAR_LEVEL_MIN * 2;
        let mut prev: Vec<proql_common::TupleId> = (0..width as i64)
            .map(|i| {
                let t = g.add_tuple("L0", tup![i], None);
                g.add_derivation("base", tup![i], vec![], vec![t], true);
                t
            })
            .collect();
        for layer in 1..4 {
            let mut nodes = Vec::new();
            for j in 0..width as i64 {
                let t = g.add_tuple(&format!("L{layer}"), tup![j], None);
                let sources = vec![
                    prev[j as usize % prev.len()],
                    prev[(j as usize + 7) % prev.len()],
                ];
                g.add_derivation(&format!("m{layer}"), tup![j], sources, vec![t], false);
                nodes.push(t);
            }
            prev = nodes;
        }
        for kind in [
            SemiringKind::Counting,
            SemiringKind::Weight,
            SemiringKind::Derivability,
            SemiringKind::Polynomial,
        ] {
            let serial = evaluate(&g, &Assignment::default_for(kind)).unwrap();
            for par in [Parallelism::Threads(2), Parallelism::Threads(8)] {
                let parallel = evaluate_with(&g, &Assignment::default_for(kind), par).unwrap();
                assert_eq!(serial, parallel, "{kind} under {par:?}");
            }
        }
    }

    #[test]
    fn counting_overflow_errors_identically_in_serial_and_parallel() {
        // A doubling chain: count(L_k) = 2^k, overflowing u64 at k = 64.
        let mut g = ProvGraph::new();
        let mut prev = g.add_tuple("L", tup![0], None);
        g.add_derivation("base", tup![0], vec![], vec![prev], true);
        for k in 1..=70i64 {
            let t = g.add_tuple("L", tup![k], None);
            g.add_derivation(&format!("a{k}"), tup![k], vec![prev], vec![t], false);
            g.add_derivation(&format!("b{k}"), tup![k], vec![prev], vec![t], false);
            prev = t;
        }
        for par in [Parallelism::Serial, Parallelism::Threads(4)] {
            let err = evaluate_with(&g, &Assignment::default_for(SemiringKind::Counting), par)
                .unwrap_err();
            assert!(
                matches!(err, Error::Overflow(_)),
                "expected overflow under {par:?}, got {err}"
            );
        }
    }

    #[test]
    fn dirty_reevaluation_matches_full_evaluation() {
        // A diamond DAG: base a, b; mid m = a·b; top t = m. Weight
        // semiring so value changes propagate observably.
        let mut g = ProvGraph::new();
        let a = g.add_tuple("A", tup![1], None);
        g.add_derivation("base_a", tup![1], vec![], vec![a], true);
        let b = g.add_tuple("B", tup![1], None);
        g.add_derivation("base_b", tup![1], vec![], vec![b], true);
        let m = g.add_tuple("M", tup![1], None);
        g.add_derivation("mm", tup![1], vec![a, b], vec![m], false);
        let t = g.add_tuple("T", tup![1], None);
        g.add_derivation("mt", tup![1], vec![m], vec![t], false);

        let weights = std::sync::Mutex::new(HashMap::from([("A".to_string(), 1.0f64)]));
        let leaf = |node: &TupleNode, _: &str| {
            Annotation::Weight(
                *weights
                    .lock()
                    .unwrap()
                    .get(node.relation.as_str())
                    .unwrap_or(&2.0),
            )
        };
        let assign = Assignment::default_for(SemiringKind::Weight).with_leaf(leaf);
        let prior = evaluate(&g, &assign).unwrap();
        assert_eq!(prior[&t], Annotation::Weight(3.0)); // 1 + 2

        // Change A's leaf weight: only `a` is dirty at the boundary.
        weights.lock().unwrap().insert("A".into(), 5.0);
        let dirty: HashSet<TupleId> = [a].into_iter().collect();
        let patched = evaluate_dirty(&g, &assign, &prior, &dirty).unwrap();
        let full = evaluate(&g, &assign).unwrap();
        assert_eq!(patched, full);
        assert_eq!(patched[&t], Annotation::Weight(7.0));
    }

    #[test]
    fn dirty_reevaluation_handles_graph_growth() {
        let mut g = ProvGraph::new();
        let a = g.add_tuple("A", tup![1], None);
        g.add_derivation("base_a", tup![1], vec![], vec![a], true);
        let m = g.add_tuple("M", tup![1], None);
        g.add_derivation("mm", tup![1], vec![a], vec![m], false);
        let assign = Assignment::default_for(SemiringKind::Counting);
        let prior = evaluate(&g, &assign).unwrap();

        // Grow the graph: a second derivation of M from a new base tuple.
        let b = g.add_tuple("B", tup![1], None);
        g.add_derivation("base_b", tup![1], vec![], vec![b], true);
        g.add_derivation("mm2", tup![1], vec![b], vec![m], false);
        let dirty: HashSet<TupleId> = [b, m].into_iter().collect();
        let patched = evaluate_dirty(&g, &assign, &prior, &dirty).unwrap();
        assert_eq!(patched, evaluate(&g, &assign).unwrap());
        assert_eq!(patched[&m], Annotation::Count(2));

        // Shrink it again: removing the new support dirties only M.
        g.remove_derivation_row("mm2", &tup![1]);
        let prior = patched;
        let dirty: HashSet<TupleId> = [m].into_iter().collect();
        let patched = evaluate_dirty(&g, &assign, &prior, &dirty).unwrap();
        assert_eq!(patched[&m], Annotation::Count(1));
    }

    #[test]
    fn dirty_reevaluation_rejects_cycles() {
        let g = example_graph();
        let assign = Assignment::default_for(SemiringKind::Derivability);
        assert!(evaluate_dirty(&g, &assign, &HashMap::new(), &HashSet::new()).is_err());
    }

    #[test]
    fn dangling_leaves_in_projection_get_assignments() {
        let g = example_graph();
        // Project only m5 derivations (no base): sources A, C become
        // dangling leaves and receive leaf values.
        let derivs: Vec<_> = g
            .derivation_ids()
            .filter(|&d| g.derivation(d).mapping == "m5")
            .collect();
        let sub = g.project(derivs);
        let vals = evaluate(&sub, &Assignment::default_for(SemiringKind::Lineage)).unwrap();
        let a2 = sub.find_tuple("A", &tup![2]).unwrap();
        assert_eq!(vals[&a2].as_lineage().unwrap().len(), 1);
    }
}
