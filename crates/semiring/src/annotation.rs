//! Dynamically typed annotation values.
//!
//! ProQL's `EVALUATE <semiring> OF {...}` computes per-tuple annotations
//! whose type depends on the chosen semiring; [`Annotation`] is the dynamic
//! value carrying any of them.

use crate::polynomial::Polynomial;
use std::collections::BTreeSet;
use std::fmt;

/// Confidentiality/access-control levels (paper Q10, \[24\]). Ordered from
/// least to most secure; `more_secure` = max, `less_secure` = min.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SecurityLevel {
    /// Anyone may see the tuple.
    Public = 0,
    /// Restricted distribution.
    Confidential = 1,
    /// Secret.
    Secret = 2,
    /// Most secure level; the ⊕-identity of the confidentiality semiring.
    TopSecret = 3,
}

impl SecurityLevel {
    /// All levels, ascending.
    pub const ALL: [SecurityLevel; 4] = [
        SecurityLevel::Public,
        SecurityLevel::Confidential,
        SecurityLevel::Secret,
        SecurityLevel::TopSecret,
    ];

    /// Parse from the names used in ProQL `SET` clauses.
    pub fn parse(s: &str) -> Option<SecurityLevel> {
        match s.to_ascii_lowercase().as_str() {
            "public" => Some(SecurityLevel::Public),
            "confidential" => Some(SecurityLevel::Confidential),
            "secret" => Some(SecurityLevel::Secret),
            "topsecret" | "top_secret" => Some(SecurityLevel::TopSecret),
            _ => None,
        }
    }
}

impl fmt::Display for SecurityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SecurityLevel::Public => "public",
            SecurityLevel::Confidential => "confidential",
            SecurityLevel::Secret => "secret",
            SecurityLevel::TopSecret => "topsecret",
        };
        f.write_str(s)
    }
}

/// A DNF event expression: a set of conjuncts, each a set of base-event
/// names. `{}` is *false*; `{{}}` is *true*. Kept subsumption-minimal so
/// the probability semiring is absorptive (PosBool\[X\]).
pub type Dnf = BTreeSet<BTreeSet<String>>;

/// Remove conjuncts that are supersets of other conjuncts (absorption:
/// `x + x·y = x`).
pub fn minimize_dnf(dnf: &Dnf) -> Dnf {
    dnf.iter()
        .filter(|c| !dnf.iter().any(|other| other != *c && other.is_subset(c)))
        .cloned()
        .collect()
}

/// A value in one of the supported semirings.
#[derive(Debug, Clone, PartialEq)]
pub enum Annotation {
    /// Derivability / trust.
    Bool(bool),
    /// Confidentiality level.
    Level(SecurityLevel),
    /// Weight/cost (tropical); ⊕-identity is `+∞`.
    Weight(f64),
    /// Lineage: `None` = underivable (the semiring zero), `Some(ids)` =
    /// derivable from this set of base tuples.
    Lineage(Option<BTreeSet<String>>),
    /// Probabilistic event expression in minimized DNF.
    Event(Dnf),
    /// Number of derivations.
    Count(u64),
    /// Provenance polynomial.
    Poly(Polynomial),
}

impl Annotation {
    /// Boolean content, if applicable.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Annotation::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Weight content, if applicable.
    pub fn as_weight(&self) -> Option<f64> {
        match self {
            Annotation::Weight(w) => Some(*w),
            _ => None,
        }
    }

    /// Count content, if applicable.
    pub fn as_count(&self) -> Option<u64> {
        match self {
            Annotation::Count(c) => Some(*c),
            _ => None,
        }
    }

    /// Level content, if applicable.
    pub fn as_level(&self) -> Option<SecurityLevel> {
        match self {
            Annotation::Level(l) => Some(*l),
            _ => None,
        }
    }

    /// Lineage content, if applicable.
    pub fn as_lineage(&self) -> Option<&BTreeSet<String>> {
        match self {
            Annotation::Lineage(Some(s)) => Some(s),
            _ => None,
        }
    }

    /// Event content, if applicable.
    pub fn as_event(&self) -> Option<&Dnf> {
        match self {
            Annotation::Event(d) => Some(d),
            _ => None,
        }
    }

    /// Polynomial content, if applicable.
    pub fn as_poly(&self) -> Option<&Polynomial> {
        match self {
            Annotation::Poly(p) => Some(p),
            _ => None,
        }
    }
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Annotation::Bool(b) => write!(f, "{b}"),
            Annotation::Level(l) => write!(f, "{l}"),
            Annotation::Weight(w) => write!(f, "{w}"),
            Annotation::Lineage(None) => write!(f, "⊥"),
            Annotation::Lineage(Some(s)) => {
                write!(f, "{{")?;
                for (i, x) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "}}")
            }
            Annotation::Event(d) => {
                if d.is_empty() {
                    return write!(f, "false");
                }
                for (i, conj) in d.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    if conj.is_empty() {
                        write!(f, "true")?;
                    } else {
                        for (j, e) in conj.iter().enumerate() {
                            if j > 0 {
                                write!(f, "∧")?;
                            }
                            write!(f, "{e}")?;
                        }
                    }
                }
                Ok(())
            }
            Annotation::Count(c) => write!(f, "{c}"),
            Annotation::Poly(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn security_levels_order() {
        assert!(SecurityLevel::Public < SecurityLevel::TopSecret);
        assert_eq!(SecurityLevel::parse("Secret"), Some(SecurityLevel::Secret));
        assert_eq!(SecurityLevel::parse("nope"), None);
    }

    #[test]
    fn dnf_minimization_absorbs_supersets() {
        let mut dnf = Dnf::new();
        dnf.insert(set(&["x"]));
        dnf.insert(set(&["x", "y"]));
        dnf.insert(set(&["z", "w"]));
        let min = minimize_dnf(&dnf);
        assert_eq!(min.len(), 2);
        assert!(min.contains(&set(&["x"])));
        assert!(min.contains(&set(&["z", "w"])));
    }

    #[test]
    fn dnf_true_absorbs_everything() {
        let mut dnf = Dnf::new();
        dnf.insert(BTreeSet::new()); // true
        dnf.insert(set(&["x"]));
        let min = minimize_dnf(&dnf);
        assert_eq!(min.len(), 1);
        assert!(min.contains(&BTreeSet::new()));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Annotation::Bool(true).to_string(), "true");
        assert_eq!(Annotation::Lineage(None).to_string(), "⊥");
        assert_eq!(
            Annotation::Lineage(Some(set(&["a", "b"]))).to_string(),
            "{a, b}"
        );
        let mut d = Dnf::new();
        d.insert(set(&["x", "y"]));
        assert_eq!(Annotation::Event(d).to_string(), "x∧y");
        assert_eq!(Annotation::Event(Dnf::new()).to_string(), "false");
    }

    #[test]
    fn accessors() {
        assert_eq!(Annotation::Bool(true).as_bool(), Some(true));
        assert_eq!(Annotation::Count(3).as_count(), Some(3));
        assert_eq!(Annotation::Weight(1.5).as_weight(), Some(1.5));
        assert_eq!(Annotation::Bool(true).as_count(), None);
        assert_eq!(
            Annotation::Level(SecurityLevel::Secret).as_level(),
            Some(SecurityLevel::Secret)
        );
    }
}
