//! The semiring operations of Table 1, plus mapping functions.

use crate::annotation::{minimize_dnf, Annotation, Dnf, SecurityLevel};
use crate::polynomial::Polynomial;
use proql_common::{Error, Result};
use std::collections::BTreeSet;
use std::fmt;

/// The semirings ProQL can evaluate (Table 1 + provenance polynomials).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemiringKind {
    /// Boolean derivability: base `true`, ∧ / ∨.
    Derivability,
    /// Trust: like derivability but base values come from trust conditions
    /// and mappings may distrust.
    Trust,
    /// Confidentiality levels: `more_secure` / `less_secure`.
    Confidentiality,
    /// Weight/cost (tropical): `+` / `min`.
    Weight,
    /// Lineage: set of contributing base tuples, ∪ / ∪.
    Lineage,
    /// Probabilistic event expressions: ∩ / ∪ over events (PosBool).
    Probability,
    /// Number of derivations: `·` / `+` over naturals.
    Counting,
    /// Provenance polynomials N\[X\] (the universal semiring).
    Polynomial,
}

impl SemiringKind {
    /// Parse the name used in `EVALUATE <name> OF`.
    pub fn parse(s: &str) -> Option<SemiringKind> {
        match s.to_ascii_uppercase().as_str() {
            "DERIVABILITY" => Some(SemiringKind::Derivability),
            "TRUST" => Some(SemiringKind::Trust),
            "CONFIDENTIALITY" => Some(SemiringKind::Confidentiality),
            "WEIGHT" | "COST" => Some(SemiringKind::Weight),
            "LINEAGE" => Some(SemiringKind::Lineage),
            "PROBABILITY" => Some(SemiringKind::Probability),
            "COUNT" | "COUNTING" | "DERIVATIONS" => Some(SemiringKind::Counting),
            "POLYNOMIAL" | "HOW" => Some(SemiringKind::Polynomial),
            _ => None,
        }
    }

    /// The ⊕-identity (annihilator of ⊗).
    pub fn zero(&self) -> Annotation {
        match self {
            SemiringKind::Derivability | SemiringKind::Trust => Annotation::Bool(false),
            SemiringKind::Confidentiality => Annotation::Level(SecurityLevel::TopSecret),
            SemiringKind::Weight => Annotation::Weight(f64::INFINITY),
            SemiringKind::Lineage => Annotation::Lineage(None),
            SemiringKind::Probability => Annotation::Event(Dnf::new()),
            SemiringKind::Counting => Annotation::Count(0),
            SemiringKind::Polynomial => Annotation::Poly(Polynomial::zero()),
        }
    }

    /// The ⊗-identity.
    pub fn one(&self) -> Annotation {
        match self {
            SemiringKind::Derivability | SemiringKind::Trust => Annotation::Bool(true),
            SemiringKind::Confidentiality => Annotation::Level(SecurityLevel::Public),
            SemiringKind::Weight => Annotation::Weight(0.0),
            SemiringKind::Lineage => Annotation::Lineage(Some(BTreeSet::new())),
            SemiringKind::Probability => {
                let mut d = Dnf::new();
                d.insert(BTreeSet::new());
                Annotation::Event(d)
            }
            SemiringKind::Counting => Annotation::Count(1),
            SemiringKind::Polynomial => Annotation::Poly(Polynomial::one()),
        }
    }

    /// The default **base value** for a leaf tuple labeled `label`
    /// (Table 1's "base value" column): the tuple's own id/variable for
    /// lineage, probability, and polynomials; the ⊗-identity otherwise.
    pub fn default_leaf(&self, label: &str) -> Annotation {
        match self {
            SemiringKind::Lineage => {
                let mut s = BTreeSet::new();
                s.insert(label.to_string());
                Annotation::Lineage(Some(s))
            }
            SemiringKind::Probability => {
                let mut conj = BTreeSet::new();
                conj.insert(label.to_string());
                let mut d = Dnf::new();
                d.insert(conj);
                Annotation::Event(d)
            }
            SemiringKind::Polynomial => Annotation::Poly(Polynomial::var(label)),
            _ => self.one(),
        }
    }

    /// ⊕ is idempotent (`a ⊕ a = a`).
    pub fn idempotent(&self) -> bool {
        !matches!(self, SemiringKind::Counting | SemiringKind::Polynomial)
    }

    /// Absorption holds (`a ⊕ (a ⊗ b) = a`). Weight absorption assumes
    /// non-negative weights. Lineage is idempotent but *not* absorptive
    /// (`{a} ∪ ({a} ∪ {b}) = {a,b}`); it still converges on cycles because
    /// its value lattice is finite.
    pub fn absorptive(&self) -> bool {
        self.idempotent() && !matches!(self, SemiringKind::Lineage)
    }

    /// Fixpoint iteration over a cyclic graph converges: all idempotent
    /// semirings here (the paper's first five Table 1 rows).
    pub fn converges_on_cycles(&self) -> bool {
        self.idempotent()
    }

    /// Abstract sum ⊕.
    pub fn plus(&self, a: &Annotation, b: &Annotation) -> Result<Annotation> {
        use Annotation::*;
        Ok(match (self, a, b) {
            (SemiringKind::Derivability | SemiringKind::Trust, Bool(x), Bool(y)) => Bool(*x || *y),
            (SemiringKind::Confidentiality, Level(x), Level(y)) => {
                // less_secure = min
                Level(*x.min(y))
            }
            (SemiringKind::Weight, Weight(x), Weight(y)) => Weight(x.min(*y)),
            (SemiringKind::Lineage, Lineage(x), Lineage(y)) => Lineage(match (x, y) {
                (None, o) | (o, None) => o.clone(),
                (Some(x), Some(y)) => Some(x.union(y).cloned().collect()),
            }),
            (SemiringKind::Probability, Event(x), Event(y)) => {
                Event(minimize_dnf(&x.union(y).cloned().collect()))
            }
            (SemiringKind::Counting, Count(x), Count(y)) => Count(
                x.checked_add(*y)
                    .ok_or_else(|| Error::Overflow("derivation count overflow".into()))?,
            ),
            (SemiringKind::Polynomial, Poly(x), Poly(y)) => Poly(x.add(y)),
            _ => return Err(type_error(self, a, b, "⊕")),
        })
    }

    /// Abstract product ⊗.
    pub fn times(&self, a: &Annotation, b: &Annotation) -> Result<Annotation> {
        use Annotation::*;
        Ok(match (self, a, b) {
            (SemiringKind::Derivability | SemiringKind::Trust, Bool(x), Bool(y)) => Bool(*x && *y),
            (SemiringKind::Confidentiality, Level(x), Level(y)) => {
                // more_secure = max
                Level(*x.max(y))
            }
            (SemiringKind::Weight, Weight(x), Weight(y)) => Weight(x + y),
            (SemiringKind::Lineage, Lineage(x), Lineage(y)) => Lineage(match (x, y) {
                (None, _) | (_, None) => None,
                (Some(x), Some(y)) => Some(x.union(y).cloned().collect()),
            }),
            (SemiringKind::Probability, Event(x), Event(y)) => {
                if x.is_empty() || y.is_empty() {
                    Event(Dnf::new())
                } else {
                    let mut out = Dnf::new();
                    for cx in x {
                        for cy in y {
                            out.insert(cx.union(cy).cloned().collect());
                        }
                    }
                    Event(minimize_dnf(&out))
                }
            }
            (SemiringKind::Counting, Count(x), Count(y)) => Count(
                x.checked_mul(*y)
                    .ok_or_else(|| Error::Overflow("derivation count overflow".into()))?,
            ),
            (SemiringKind::Polynomial, Poly(x), Poly(y)) => Poly(x.mul(y)),
            _ => return Err(type_error(self, a, b, "⊗")),
        })
    }

    /// Fold ⊕ over an iterator.
    pub fn sum<'a>(&self, items: impl IntoIterator<Item = &'a Annotation>) -> Result<Annotation> {
        let mut acc = self.zero();
        for x in items {
            acc = self.plus(&acc, x)?;
        }
        Ok(acc)
    }

    /// Fold ⊗ over an iterator.
    pub fn product<'a>(
        &self,
        items: impl IntoIterator<Item = &'a Annotation>,
    ) -> Result<Annotation> {
        let mut acc = self.one();
        for x in items {
            acc = self.times(&acc, x)?;
        }
        Ok(acc)
    }

    /// Type-check that `a` is a value of this semiring.
    pub fn check_value(&self, a: &Annotation) -> Result<()> {
        let ok = matches!(
            (self, a),
            (
                SemiringKind::Derivability | SemiringKind::Trust,
                Annotation::Bool(_)
            ) | (SemiringKind::Confidentiality, Annotation::Level(_))
                | (SemiringKind::Weight, Annotation::Weight(_))
                | (SemiringKind::Lineage, Annotation::Lineage(_))
                | (SemiringKind::Probability, Annotation::Event(_))
                | (SemiringKind::Counting, Annotation::Count(_))
                | (SemiringKind::Polynomial, Annotation::Poly(_))
        );
        if ok {
            Ok(())
        } else {
            Err(Error::Semiring(format!(
                "value {a} does not belong to the {self} semiring"
            )))
        }
    }
}

impl fmt::Display for SemiringKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SemiringKind::Derivability => "DERIVABILITY",
            SemiringKind::Trust => "TRUST",
            SemiringKind::Confidentiality => "CONFIDENTIALITY",
            SemiringKind::Weight => "WEIGHT",
            SemiringKind::Lineage => "LINEAGE",
            SemiringKind::Probability => "PROBABILITY",
            SemiringKind::Counting => "COUNT",
            SemiringKind::Polynomial => "POLYNOMIAL",
        };
        f.write_str(s)
    }
}

fn type_error(k: &SemiringKind, a: &Annotation, b: &Annotation, op: &str) -> Error {
    Error::Semiring(format!("cannot apply {k}.{op} to {a} and {b}"))
}

/// A unary **mapping function**: the per-mapping transformation of
/// annotations (paper §2.1: "mappings themselves can affect the resulting
/// annotation, e.g., an untrusted mapping may produce false on all inputs").
///
/// ProQL restricts these functions to ones with `f(0) = 0` that commute
/// with sums; `f(x) = c ⊗ x` satisfies both in any semiring by
/// distributivity, and covers all the paper's examples:
/// * the *neutral* function `Nm` is `TimesConst(1)` (or [`MapFn::Identity`]),
/// * the *distrust* function `Dm` is `TimesConst(false)` = [`MapFn::zero`],
/// * weight offsets (`SET $z + 3`) are `TimesConst(Weight(3))`,
/// * count scaling is `TimesConst(Count(k))`.
#[derive(Debug, Clone, PartialEq)]
pub enum MapFn {
    /// `f(x) = x` (the default).
    Identity,
    /// `f(x) = c ⊗ x`.
    TimesConst(Annotation),
}

impl MapFn {
    /// The annihilating function `f(x) = 0` (distrust).
    pub fn zero(kind: SemiringKind) -> MapFn {
        MapFn::TimesConst(kind.zero())
    }

    /// Apply to a value.
    pub fn apply(&self, kind: SemiringKind, x: &Annotation) -> Result<Annotation> {
        match self {
            MapFn::Identity => Ok(x.clone()),
            MapFn::TimesConst(c) => kind.times(c, x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [SemiringKind; 8] = [
        SemiringKind::Derivability,
        SemiringKind::Trust,
        SemiringKind::Confidentiality,
        SemiringKind::Weight,
        SemiringKind::Lineage,
        SemiringKind::Probability,
        SemiringKind::Counting,
        SemiringKind::Polynomial,
    ];

    #[test]
    fn identities_hold_in_every_semiring() {
        for k in ALL {
            let x = k.default_leaf("x");
            assert_eq!(k.plus(&k.zero(), &x).unwrap(), x, "{k}: 0 ⊕ x");
            assert_eq!(k.times(&k.one(), &x).unwrap(), x, "{k}: 1 ⊗ x");
            assert_eq!(k.times(&k.zero(), &x).unwrap(), k.zero(), "{k}: 0 ⊗ x");
        }
    }

    #[test]
    fn idempotence_matches_declaration() {
        for k in ALL {
            let x = k.default_leaf("x");
            let doubled = k.plus(&x, &x).unwrap();
            if k.idempotent() {
                assert_eq!(doubled, x, "{k} should be ⊕-idempotent");
            } else {
                assert_ne!(doubled, x, "{k} should not be ⊕-idempotent");
            }
        }
    }

    #[test]
    fn absorption_in_declared_semirings() {
        for k in ALL.iter().filter(|k| k.absorptive()) {
            let a = k.default_leaf("a");
            let b = k.default_leaf("b");
            let ab = k.times(&a, &b).unwrap();
            assert_eq!(k.plus(&a, &ab).unwrap(), a, "{k}: a ⊕ (a ⊗ b) must equal a");
        }
    }

    #[test]
    fn table_1_derivability() {
        let k = SemiringKind::Derivability;
        let t = Annotation::Bool(true);
        let f = Annotation::Bool(false);
        assert_eq!(k.times(&t, &f).unwrap(), f);
        assert_eq!(k.plus(&t, &f).unwrap(), t);
    }

    #[test]
    fn table_1_confidentiality() {
        let k = SemiringKind::Confidentiality;
        let publ = Annotation::Level(SecurityLevel::Public);
        let secr = Annotation::Level(SecurityLevel::Secret);
        // Join of tuples takes the most secure level...
        assert_eq!(k.times(&publ, &secr).unwrap(), secr);
        // ...union takes the least secure required.
        assert_eq!(k.plus(&publ, &secr).unwrap(), publ);
    }

    #[test]
    fn table_1_weight() {
        let k = SemiringKind::Weight;
        let a = Annotation::Weight(2.0);
        let b = Annotation::Weight(5.0);
        assert_eq!(k.times(&a, &b).unwrap(), Annotation::Weight(7.0));
        assert_eq!(k.plus(&a, &b).unwrap(), Annotation::Weight(2.0));
    }

    #[test]
    fn table_1_counting() {
        let k = SemiringKind::Counting;
        assert_eq!(
            k.times(&Annotation::Count(2), &Annotation::Count(3))
                .unwrap(),
            Annotation::Count(6)
        );
        assert_eq!(
            k.plus(&Annotation::Count(2), &Annotation::Count(3))
                .unwrap(),
            Annotation::Count(5)
        );
    }

    #[test]
    fn counting_overflow_is_an_error() {
        let k = SemiringKind::Counting;
        let big = Annotation::Count(u64::MAX);
        assert!(k.plus(&big, &Annotation::Count(1)).is_err());
        assert!(k.times(&big, &Annotation::Count(2)).is_err());
    }

    #[test]
    fn lineage_zero_annihilates() {
        let k = SemiringKind::Lineage;
        let x = k.default_leaf("x");
        assert_eq!(k.times(&k.zero(), &x).unwrap(), k.zero());
        // But ⊕ with zero passes through.
        assert_eq!(k.plus(&k.zero(), &x).unwrap(), x);
    }

    #[test]
    fn probability_events_multiply_by_intersection() {
        let k = SemiringKind::Probability;
        let x = k.default_leaf("x");
        let y = k.default_leaf("y");
        let xy = k.times(&x, &y).unwrap();
        assert_eq!(xy.to_string(), "x∧y");
        let or = k.plus(&x, &y).unwrap();
        assert_eq!(or.to_string(), "x ∨ y");
        // Absorption through minimization: x + x∧y = x.
        assert_eq!(k.plus(&x, &xy).unwrap(), x);
    }

    #[test]
    fn polynomial_tracks_how_provenance() {
        let k = SemiringKind::Polynomial;
        let x = k.default_leaf("x");
        let y = k.default_leaf("y");
        let p = k.plus(&k.times(&x, &y).unwrap(), &x).unwrap();
        assert_eq!(p.to_string(), "x + x·y");
    }

    #[test]
    fn type_mismatch_is_error() {
        let k = SemiringKind::Weight;
        assert!(k
            .plus(&Annotation::Bool(true), &Annotation::Weight(1.0))
            .is_err());
        assert!(k.check_value(&Annotation::Bool(true)).is_err());
        assert!(k.check_value(&Annotation::Weight(1.0)).is_ok());
    }

    #[test]
    fn map_fn_identity_and_zero() {
        let k = SemiringKind::Trust;
        let x = Annotation::Bool(true);
        assert_eq!(MapFn::Identity.apply(k, &x).unwrap(), x);
        assert_eq!(
            MapFn::zero(k).apply(k, &x).unwrap(),
            Annotation::Bool(false)
        );
    }

    #[test]
    fn map_fn_weight_offset_commutes_with_sums() {
        let k = SemiringKind::Weight;
        let f = MapFn::TimesConst(Annotation::Weight(3.0));
        let a = Annotation::Weight(2.0);
        let b = Annotation::Weight(5.0);
        let lhs = f.apply(k, &k.plus(&a, &b).unwrap()).unwrap();
        let rhs = k
            .plus(&f.apply(k, &a).unwrap(), &f.apply(k, &b).unwrap())
            .unwrap();
        assert_eq!(lhs, rhs);
        // f(0) = 0.
        assert_eq!(f.apply(k, &k.zero()).unwrap(), k.zero());
    }

    #[test]
    fn parse_names() {
        assert_eq!(SemiringKind::parse("trust"), Some(SemiringKind::Trust));
        assert_eq!(SemiringKind::parse("WEIGHT"), Some(SemiringKind::Weight));
        assert_eq!(SemiringKind::parse("cost"), Some(SemiringKind::Weight));
        assert_eq!(SemiringKind::parse("bogus"), None);
    }

    #[test]
    fn sum_and_product_fold() {
        let k = SemiringKind::Counting;
        let items = [
            Annotation::Count(2),
            Annotation::Count(3),
            Annotation::Count(4),
        ];
        assert_eq!(k.sum(items.iter()).unwrap(), Annotation::Count(9));
        assert_eq!(k.product(items.iter()).unwrap(), Annotation::Count(24));
        assert_eq!(k.sum([].iter()).unwrap(), k.zero());
        assert_eq!(k.product([].iter()).unwrap(), k.one());
    }
}
