//! # proql-semiring
//!
//! Semiring provenance (paper §2.1, Table 1). Provenance graphs encode
//! provenance polynomials; instantiating the base values, the abstract
//! product ⊗, and the abstract sum ⊕ yields the annotation computations of
//! Table 1:
//!
//! | Use case            | base value     | `R ⊗ S`          | `R ⊕ S`          |
//! |---------------------|----------------|------------------|------------------|
//! | Derivability        | `true`         | `R ∧ S`          | `R ∨ S`          |
//! | Trust               | trust condition| `R ∧ S`          | `R ∨ S`          |
//! | Confidentiality     | access level   | `more_secure`    | `less_secure`    |
//! | Weight/cost         | tuple weight   | `R + S`          | `min(R, S)`      |
//! | Lineage             | tuple id       | `R ∪ S`          | `R ∪ S`          |
//! | Probability         | event          | `R ∩ S`          | `R ∪ S`          |
//! | # derivations       | `1`            | `R · S`          | `R + S`          |
//!
//! plus the most general **provenance polynomials** N\[X\] of Green et al.,
//! used here as the reference semiring for property tests.
//!
//! [`eval`] evaluates a [`ProvGraph`] bottom-up in any of these semirings;
//! cyclic graphs (recursive mappings) are handled by Kleene fixpoint
//! iteration for the idempotent + absorptive semirings — the first five
//! rows of Table 1, exactly as the paper states.
//!
//! [`ProvGraph`]: proql_provgraph::ProvGraph

pub mod annotation;
pub mod eval;
pub mod polynomial;
pub mod probability;
pub mod semiring;

pub use annotation::{Annotation, SecurityLevel};
pub use eval::{evaluate, evaluate_acyclic, evaluate_dirty, evaluate_with, Assignment};
pub use polynomial::{Monomial, Polynomial};
pub use probability::{event_probability, event_probability_mc};
pub use semiring::{MapFn, SemiringKind};
