//! Provenance polynomials N\[X\] — the most general tuple-based provenance
//! (Green, Karvounarakis, Tannen, PODS 2007), which the paper's graphs
//! encode. Every other semiring in Table 1 is a homomorphic image of this
//! one; the property tests exploit that.

use std::collections::BTreeMap;
use std::fmt;

/// A monomial: a multiset of variables (variable → exponent).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Monomial(pub BTreeMap<String, u32>);

impl Monomial {
    /// The empty monomial (multiplicative unit).
    pub fn one() -> Self {
        Monomial::default()
    }

    /// A single variable.
    pub fn var(name: impl Into<String>) -> Self {
        let mut m = BTreeMap::new();
        m.insert(name.into(), 1);
        Monomial(m)
    }

    /// Product of two monomials (exponents add).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut out = self.0.clone();
        for (v, e) in &other.0 {
            *out.entry(v.clone()).or_insert(0) += e;
        }
        Monomial(out)
    }

    /// Total degree.
    pub fn degree(&self) -> u32 {
        self.0.values().sum()
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "1");
        }
        for (i, (v, e)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            if *e == 1 {
                write!(f, "{v}")?;
            } else {
                write!(f, "{v}^{e}")?;
            }
        }
        Ok(())
    }
}

/// A provenance polynomial with natural-number coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Polynomial {
    /// monomial → coefficient (no zero coefficients stored).
    terms: BTreeMap<Monomial, u64>,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial::default()
    }

    /// The unit polynomial `1`.
    pub fn one() -> Self {
        Polynomial::constant(1)
    }

    /// A constant polynomial.
    pub fn constant(c: u64) -> Self {
        let mut terms = BTreeMap::new();
        if c != 0 {
            terms.insert(Monomial::one(), c);
        }
        Polynomial { terms }
    }

    /// The polynomial `x` for a single variable.
    pub fn var(name: impl Into<String>) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(Monomial::var(name), 1);
        Polynomial { terms }
    }

    /// True iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Sum.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let mut out = self.terms.clone();
        for (m, c) in &other.terms {
            let e = out.entry(m.clone()).or_insert(0);
            *e = e.saturating_add(*c);
        }
        Polynomial { terms: out }
    }

    /// Product.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        let mut out: BTreeMap<Monomial, u64> = BTreeMap::new();
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                let m = m1.mul(m2);
                let e = out.entry(m).or_insert(0);
                *e = e.saturating_add(c1.saturating_mul(*c2));
            }
        }
        Polynomial { terms: out }
    }

    /// The terms (monomial → coefficient).
    pub fn terms(&self) -> &BTreeMap<Monomial, u64> {
        &self.terms
    }

    /// Number of monomials.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Evaluate under a valuation of the variables into `u64` (counting
    /// homomorphism; saturating arithmetic).
    pub fn eval_counting(&self, valuation: &dyn Fn(&str) -> u64) -> u64 {
        let mut total: u64 = 0;
        for (m, c) in &self.terms {
            let mut prod: u64 = *c;
            for (v, e) in &m.0 {
                for _ in 0..*e {
                    prod = prod.saturating_mul(valuation(v));
                }
            }
            total = total.saturating_add(prod);
        }
        total
    }

    /// Evaluate under a boolean valuation (derivability homomorphism).
    pub fn eval_bool(&self, valuation: &dyn Fn(&str) -> bool) -> bool {
        self.terms
            .iter()
            .any(|(m, _)| m.0.keys().all(|v| valuation(v)))
    }

    /// Evaluate into the tropical (weight/cost) semiring: coefficients are
    /// ignored beyond existence, monomials sum their variables' weights, and
    /// alternatives take the minimum.
    pub fn eval_tropical(&self, valuation: &dyn Fn(&str) -> f64) -> f64 {
        let mut best = f64::INFINITY;
        for m in self.terms.keys() {
            let mut w = 0.0;
            for (v, e) in &m.0 {
                w += valuation(v) * f64::from(*e);
            }
            best = best.min(w);
        }
        best
    }

    /// All distinct variables (the lineage homomorphism maps a polynomial
    /// to this set).
    pub fn variables(&self) -> std::collections::BTreeSet<String> {
        self.terms
            .keys()
            .flat_map(|m| m.0.keys().cloned())
            .collect()
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (m, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if *c != 1 || m.0.is_empty() {
                write!(f, "{c}")?;
                if !m.0.is_empty() {
                    write!(f, "·")?;
                }
            }
            if !m.0.is_empty() {
                write!(f, "{m}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Polynomial {
        Polynomial::var("x")
    }
    fn y() -> Polynomial {
        Polynomial::var("y")
    }

    #[test]
    fn ring_identities() {
        let p = x().add(&y());
        assert_eq!(p.add(&Polynomial::zero()), p);
        assert_eq!(p.mul(&Polynomial::one()), p);
        assert!(p.mul(&Polynomial::zero()).is_zero());
    }

    #[test]
    fn distributivity() {
        let lhs = x().mul(&y().add(&Polynomial::one()));
        let rhs = x().mul(&y()).add(&x());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn display_formats() {
        // (x + y)^2 = x^2 + 2xy + y^2
        let p = x().add(&y());
        let sq = p.mul(&p);
        // BTreeMap term order: {x:1,y:1} sorts before {x:2}.
        assert_eq!(sq.to_string(), "2·x·y + x^2 + y^2");
        assert_eq!(Polynomial::zero().to_string(), "0");
        assert_eq!(Polynomial::one().to_string(), "1");
    }

    #[test]
    fn counting_homomorphism() {
        // 2xy + x at x=3, y=2 → 2*3*2 + 3 = 15
        let p = Polynomial::constant(2).mul(&x()).mul(&y()).add(&x());
        assert_eq!(p.eval_counting(&|v| if v == "x" { 3 } else { 2 }), 15);
    }

    #[test]
    fn bool_homomorphism() {
        let p = x().mul(&y()).add(&x());
        // x true suffices via the second monomial.
        assert!(p.eval_bool(&|v| v == "x"));
        assert!(!p.eval_bool(&|v| v == "y"));
        assert!(!Polynomial::zero().eval_bool(&|_| true));
        assert!(Polynomial::one().eval_bool(&|_| false));
    }

    #[test]
    fn tropical_homomorphism() {
        // min over monomials of summed weights: xy + x with w(x)=2, w(y)=5
        let p = x().mul(&y()).add(&x());
        let w = |v: &str| if v == "x" { 2.0 } else { 5.0 };
        assert_eq!(p.eval_tropical(&w), 2.0);
        assert_eq!(Polynomial::zero().eval_tropical(&w), f64::INFINITY);
    }

    #[test]
    fn variables_collects_lineage() {
        let p = x().mul(&y()).add(&x());
        let vars = p.variables();
        assert_eq!(vars.len(), 2);
        assert!(vars.contains("x") && vars.contains("y"));
    }

    #[test]
    fn monomial_degree_and_mul() {
        let m = Monomial::var("x")
            .mul(&Monomial::var("x"))
            .mul(&Monomial::var("y"));
        assert_eq!(m.degree(), 3);
        assert_eq!(m.to_string(), "x^2·y");
    }
}
