//! Synthetic SWISS-PROT-like workload (paper §6.1.1).
//!
//! The paper builds peer schemas "by partitioning the 25 attributes in the
//! SWISS-PROT universal relation into two relations and adding a shared
//! key to preserve losslessness", and substitutes "integer hash values for
//! each large string". We generate exactly that shape synthetically: a
//! seeded RNG produces the integer attribute values, and entry keys are
//! dense integers so entries sampled at different peers rejoin — giving
//! tuples multiple alternative derivations, as real shared datasets do.

use proql_common::rng::SplitMix64;
use proql_common::{Schema, Tuple, Value, ValueType};

/// Generator of SWISS-PROT-shaped entries.
#[derive(Debug)]
pub struct SwissProtLike {
    rng: SplitMix64,
    attrs: usize,
}

impl SwissProtLike {
    /// Default attribute count of the SWISS-PROT universal relation.
    pub const ATTRS: usize = 25;

    /// New generator with `attrs` non-key attributes (25 in the paper).
    pub fn new(seed: u64, attrs: usize) -> Self {
        SwissProtLike {
            rng: SplitMix64::seed_from_u64(seed),
            attrs,
        }
    }

    /// Attribute split: the first relation gets `ceil(attrs/2)` attributes,
    /// the second the rest.
    pub fn split(&self) -> (usize, usize) {
        let a = self.attrs.div_ceil(2);
        (a, self.attrs - a)
    }

    /// Schema of the `a`-side relation for a given name.
    pub fn schema_a(&self, name: &str) -> Schema {
        let (a, _) = self.split();
        Self::make_schema(name, a)
    }

    /// Schema of the `b`-side relation for a given name.
    pub fn schema_b(&self, name: &str) -> Schema {
        let (_, b) = self.split();
        Self::make_schema(name, b)
    }

    fn make_schema(name: &str, attrs: usize) -> Schema {
        let mut cols = vec![("k".to_string(), ValueType::Int)];
        for i in 0..attrs {
            cols.push((format!("a{i}"), ValueType::Int));
        }
        Schema::new(
            name,
            cols.into_iter()
                .map(|(n, t)| proql_common::Attribute::new(n, t))
                .collect(),
            vec![0],
        )
        .expect("workload schema is valid")
    }

    /// Generate one entry with key `key`: the `(a_side, b_side)` tuple
    /// pair, rejoinable on the shared key.
    pub fn entry(&mut self, key: i64) -> (Tuple, Tuple) {
        let (a, b) = self.split();
        let mut ta = Vec::with_capacity(a + 1);
        ta.push(Value::Int(key));
        for _ in 0..a {
            // "integer hash values for each large string"
            ta.push(Value::Int(self.rng.gen_range_i64(0, 1_000_000_000)));
        }
        let mut tb = Vec::with_capacity(b + 1);
        tb.push(Value::Int(key));
        for _ in 0..b {
            tb.push(Value::Int(self.rng.gen_range_i64(0, 1_000_000_000)));
        }
        (Tuple::new(ta), Tuple::new(tb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_all_attributes() {
        let g = SwissProtLike::new(1, 25);
        let (a, b) = g.split();
        assert_eq!(a + b, 25);
        assert_eq!(a, 13);
        assert_eq!(g.schema_a("Ra").arity(), 14); // key + 13
        assert_eq!(g.schema_b("Rb").arity(), 13); // key + 12
    }

    #[test]
    fn entries_share_the_key() {
        let mut g = SwissProtLike::new(7, 25);
        let (ta, tb) = g.entry(42);
        assert_eq!(ta.get(0), &Value::Int(42));
        assert_eq!(tb.get(0), &Value::Int(42));
        assert_eq!(ta.arity(), 14);
        assert_eq!(tb.arity(), 13);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut g1 = SwissProtLike::new(99, 25);
        let mut g2 = SwissProtLike::new(99, 25);
        assert_eq!(g1.entry(0), g2.entry(0));
        let mut g3 = SwissProtLike::new(100, 25);
        assert_ne!(g1.entry(1), g3.entry(1));
    }

    #[test]
    fn schemas_validate_generated_tuples() {
        let mut g = SwissProtLike::new(5, 25);
        let (ta, tb) = g.entry(1);
        g.schema_a("Ra").check(&ta).unwrap();
        g.schema_b("Rb").check(&tb).unwrap();
    }

    #[test]
    fn odd_attribute_counts_split_safely() {
        let g = SwissProtLike::new(1, 5);
        let (a, b) = g.split();
        assert_eq!((a, b), (3, 2));
    }
}
