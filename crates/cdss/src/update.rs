//! Provenance-based incremental update exchange (use cases Q5/Q6).
//!
//! When a base tuple is deleted, the system must decide which derived
//! tuples *remain derivable* from the remaining base data — the paper's
//! Q5, which "provenance can speed up" compared with recomputing the
//! exchange from scratch. The implementation evaluates the derivability
//! semiring over the provenance graph after removing the base tuple's `+`
//! derivation, then garbage-collects underivable tuples and the
//! provenance rows that referenced them.

use proql_common::{Error, Result, Tuple};
use proql_provgraph::{ProvGraph, ProvenanceSystem};
use proql_semiring::{evaluate, Annotation, Assignment, SemiringKind};
use std::collections::{BTreeSet, HashSet};

/// What a deletion removed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeleteStats {
    /// Tuples removed from public relations (including the seed tuple).
    pub tuples_deleted: usize,
    /// Rows removed from materialized provenance relations.
    pub prov_rows_deleted: usize,
    /// Every relation this deletion actually modified: the seed's local
    /// table, public relations that lost tuples, and provenance relations
    /// that lost rows. This is the deletion's **write set** — the query
    /// service intersects it with cached answers' read sets to decide
    /// which cache entries die.
    pub touched: BTreeSet<String>,
}

/// Delete a tuple from `relation`'s local-contribution table and
/// garbage-collect everything that is no longer derivable.
pub fn delete_local(
    sys: &mut ProvenanceSystem,
    relation: &str,
    key: &Tuple,
) -> Result<DeleteStats> {
    let local = sys
        .local_of(relation)
        .ok_or_else(|| Error::NotFound(format!("local table of {relation}")))?;
    if sys.db.table_mut(&local)?.delete_by_key(key).is_none() {
        return Err(Error::NotFound(format!(
            "local tuple {relation}{key} does not exist"
        )));
    }
    // The first mutation has landed: stamp the system immediately, so
    // version-checked caches are invalidated even if a later step errors
    // out and leaves the cleanup partial. Exactly one bump per deletion
    // (callers map version v0 + k to "k deletions applied").
    sys.bump_version();
    let mut touched: BTreeSet<String> = BTreeSet::new();
    touched.insert(local.clone());

    // Recompute derivability over the provenance graph. The local `+`
    // derivation disappeared with the view row; tuples whose annotation
    // drops to `false` — or that have no derivations left at all — must go.
    let graph = ProvGraph::from_system(sys)?;
    let assign =
        Assignment::default_for(SemiringKind::Derivability).with_dangling(Annotation::Bool(false));
    let values = evaluate(&graph, &assign)?;

    let mut stats = DeleteStats::default();
    let mut dead: HashSet<(String, Tuple)> = HashSet::new();
    for t in graph.tuple_ids() {
        let derivable =
            values.get(&t) == Some(&Annotation::Bool(true)) && !graph.derivations_of(t).is_empty();
        if !derivable {
            let node = graph.tuple(t);
            dead.insert((node.relation.clone(), node.key.clone()));
        }
    }

    // Remove dead tuples from public relations.
    for (rel, k) in &dead {
        if sys.db.table_mut(rel)?.delete_by_key(k).is_some() {
            stats.tuples_deleted += 1;
            touched.insert(rel.clone());
        }
    }

    // Remove provenance rows whose derivations reference a dead tuple.
    let specs: Vec<_> = sys
        .specs()
        .iter()
        .filter(|s| !s.superfluous)
        .cloned()
        .collect();
    for spec in specs {
        let rows = sys.db.table(&spec.prov_rel)?.scan();
        for row in rows {
            let touches_dead = spec
                .atoms
                .iter()
                .any(|recipe| dead.contains(&(recipe.relation.clone(), recipe.key_of(&row))));
            if touches_dead {
                let keyed = row.clone();
                if sys
                    .db
                    .table_mut(&spec.prov_rel)?
                    .delete_by_key(&keyed)
                    .is_some()
                {
                    stats.prov_rows_deleted += 1;
                    touched.insert(spec.prov_rel.clone());
                }
            }
        }
    }
    stats.touched = touched;
    Ok(stats)
}

/// The Q5 test in isolation: is a tuple still derivable from the current
/// base data?
pub fn remains_derivable(sys: &ProvenanceSystem, relation: &str, key: &Tuple) -> Result<bool> {
    let graph = ProvGraph::from_system(sys)?;
    let Some(t) = graph.find_tuple(relation, key) else {
        return Ok(false);
    };
    if graph.derivations_of(t).is_empty() {
        return Ok(false);
    }
    let assign =
        Assignment::default_for(SemiringKind::Derivability).with_dangling(Annotation::Bool(false));
    let values = evaluate(&graph, &assign)?;
    Ok(values.get(&t) == Some(&Annotation::Bool(true)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{build_system, CdssConfig, Topology};
    use proql_common::tup;
    use proql_provgraph::system::example_2_1;

    #[test]
    fn deleting_sole_base_kills_downstream() {
        // 3-peer chain, data only at peer 2: deleting key 0 at peer 2
        // removes it everywhere.
        let mut sys = build_system(Topology::Chain, &CdssConfig::new(3, vec![2], 3)).unwrap();
        assert!(remains_derivable(&sys, "R0a", &tup![0]).unwrap());
        let stats = delete_local(&mut sys, "R2a", &tup![0]).unwrap();
        // R2a(0), R1a(0), R0a(0) die (the b-side survives? No: the pair
        // mapping needs both sides, so derived a AND b tuples of key 0 die
        // everywhere except the base R2b(0)).
        assert!(stats.tuples_deleted >= 3);
        assert!(!remains_derivable(&sys, "R0a", &tup![0]).unwrap());
        assert!(sys.db.table("R0a").unwrap().get_by_key(&tup![0]).is_none());
        // Other keys untouched.
        assert!(remains_derivable(&sys, "R0a", &tup![1]).unwrap());
        // Provenance rows for key 0 are gone.
        assert!(stats.prov_rows_deleted >= 2);
    }

    #[test]
    fn alternative_derivations_survive_deletion() {
        // Branched: two leaves feed the root with the same keys; deleting
        // one leaf's tuple keeps the root derivable through the other.
        let mut sys = build_system(Topology::Branched, &CdssConfig::new(3, vec![1, 2], 2)).unwrap();
        delete_local(&mut sys, "R1a", &tup![0]).unwrap();
        assert!(remains_derivable(&sys, "R0a", &tup![0]).unwrap());
        assert!(sys.db.table("R0a").unwrap().get_by_key(&tup![0]).is_some());
    }

    #[test]
    fn delete_on_cyclic_example_handles_mutual_derivations() {
        // Example 2.1: C(2,cn2) and N(2,cn2,false) derive each other; only
        // the local C(2,cn2) grounds them. Deleting it must kill both
        // (no infinite support through the cycle).
        let mut sys = example_2_1().unwrap();
        delete_local(&mut sys, "C", &tup![2, "cn2"]).unwrap();
        assert!(!remains_derivable(&sys, "C", &tup![2, "cn2"]).unwrap());
        assert!(!remains_derivable(&sys, "N", &tup![2, "cn2"]).unwrap());
        assert!(sys
            .db
            .table("O")
            .unwrap()
            .get_by_key(&tup!["cn2"])
            .is_none());
        // Tuples grounded by A survive.
        assert!(remains_derivable(&sys, "O", &tup!["sn1"]).unwrap());
    }

    #[test]
    fn delete_reports_write_set_and_bumps_version_once() {
        let mut sys = example_2_1().unwrap();
        let v0 = sys.version();
        let stats = delete_local(&mut sys, "C", &tup![2, "cn2"]).unwrap();
        // Exactly one bump per deletion: the service's replay test maps
        // version v0 + k to "k deletions applied".
        assert_eq!(sys.version(), v0 + 1);
        // The seed's local table and the cascaded victims are recorded.
        assert!(
            stats.touched.contains("C_l"),
            "touched: {:?}",
            stats.touched
        );
        assert!(stats.touched.contains("C"), "touched: {:?}", stats.touched);
        assert!(stats.touched.contains("O"), "touched: {:?}", stats.touched);
        // Provenance relations that lost rows are in the write set.
        assert!(
            stats.touched.iter().any(|r| r.starts_with("P_m")),
            "touched: {:?}",
            stats.touched
        );
        // Untouched base relations are NOT in the write set.
        assert!(
            !stats.touched.contains("A_l"),
            "touched: {:?}",
            stats.touched
        );
    }

    #[test]
    fn deleting_missing_tuple_errors() {
        let mut sys = example_2_1().unwrap();
        assert!(delete_local(&mut sys, "C", &tup![99, "zz"]).is_err());
        assert!(delete_local(&mut sys, "P_m1", &tup![1]).is_err());
    }

    #[test]
    fn derivability_check_for_unknown_tuple_is_false() {
        let sys = example_2_1().unwrap();
        assert!(!remains_derivable(&sys, "O", &tup!["nope"]).unwrap());
    }
}
