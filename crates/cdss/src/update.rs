//! Provenance-based incremental update exchange (use cases Q5/Q6).
//!
//! When a base tuple is deleted, the system must decide which derived
//! tuples *remain derivable* from the remaining base data — the paper's
//! Q5, which "provenance can speed up" compared with recomputing the
//! exchange from scratch. The implementation evaluates the derivability
//! semiring over the provenance graph with the deleted tuple's `+`
//! derivations **masked out** (no graph clone, no rebuild — see
//! [`proql_semiring::Assignment::with_masked`]), then garbage-collects
//! underivable tuples and the provenance rows that referenced them.
//!
//! Every row removal routes through the system's **tracked** mutation API,
//! so a deletion seals exactly one version bump whose [`GraphDelta`]
//! describes the whole cascade — the query service evicts caches and
//! patches its provenance graph from that delta instead of rebuilding.
//!
//! [`GraphDelta`]: proql_provgraph::GraphDelta

use proql_common::{DerivationId, Error, Result, Tuple};
use proql_provgraph::{ProvGraph, ProvenanceSystem};
use proql_semiring::{evaluate, Annotation, Assignment, SemiringKind};
use std::collections::{BTreeSet, HashSet};

/// What a deletion removed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeleteStats {
    /// Tuples removed from public relations (including the seed tuple).
    pub tuples_deleted: usize,
    /// Rows removed from materialized provenance relations.
    pub prov_rows_deleted: usize,
    /// Every relation this deletion actually modified: the seed's local
    /// table, public relations that lost tuples, and provenance relations
    /// that lost rows. This is the deletion's **write set** — the query
    /// service intersects it with cached answers' read sets to decide
    /// which cache entries die.
    pub touched: BTreeSet<String>,
}

/// Delete a tuple from `relation`'s local-contribution table and
/// garbage-collect everything that is no longer derivable.
///
/// Builds the provenance graph from the relational encoding first; when a
/// current graph is already at hand (the query service's snapshot cache),
/// use [`delete_local_with_graph`] to skip that cost entirely.
pub fn delete_local(
    sys: &mut ProvenanceSystem,
    relation: &str,
    key: &Tuple,
) -> Result<DeleteStats> {
    let graph = ProvGraph::from_system(sys)?;
    delete_local_with_graph(sys, relation, key, &graph)
}

/// [`delete_local`] against a caller-provided provenance graph decoded at
/// the **current** (pre-deletion) version. The graph is only read: the
/// seed's `+` derivations are masked out of the derivability evaluation,
/// and the graph's adjacency pinpoints the provenance rows referencing
/// dead tuples (instead of scanning every provenance relation).
pub fn delete_local_with_graph(
    sys: &mut ProvenanceSystem,
    relation: &str,
    key: &Tuple,
    graph: &ProvGraph,
) -> Result<DeleteStats> {
    let local = sys
        .local_of(relation)
        .ok_or_else(|| Error::NotFound(format!("local table of {relation}")))?;
    if sys.db.table(&local)?.get_by_key(key).is_none() {
        return Err(Error::NotFound(format!(
            "local tuple {relation}{key} does not exist"
        )));
    }
    // Run the cascade, then seal whatever actually changed as ONE version
    // bump — even when a later step errors out, so partially applied
    // cleanup still invalidates version-checked caches.
    let out = delete_cascade(sys, &local, key, graph);
    sys.commit_tracked_mutation();
    if out.is_ok() {
        // A *complete* cascade leaves the instance closed under the
        // mappings again (every surviving firing's sources survived), so
        // seeded incremental exchanges stay sound. A partial (errored)
        // cascade leaves the flag cleared: the next exchange bootstraps
        // fully.
        sys.assert_exchange_fixpoint();
    }
    out
}

fn delete_cascade(
    sys: &mut ProvenanceSystem,
    local: &str,
    key: &Tuple,
    graph: &ProvGraph,
) -> Result<DeleteStats> {
    let removed = sys
        .delete_row_tracked(local, key)?
        .expect("existence checked by the caller");

    // The `+` derivations that vanish with the local row, resolved against
    // the (pre-deletion) graph and masked out of the evaluation below.
    let masked: HashSet<DerivationId> = sys
        .superfluous_prov_rows(local, &removed)
        .into_iter()
        .filter_map(|(mapping, row)| graph.find_derivation(&mapping, &row))
        .collect();

    // Recompute derivability with the seed's ground support masked out.
    // Tuples whose annotation drops to `false` — or that have no unmasked
    // derivations left at all — must go.
    let assign = Assignment::default_for(SemiringKind::Derivability)
        .with_dangling(Annotation::Bool(false))
        .with_masked(masked.clone());
    let values = evaluate(graph, &assign)?;

    let mut stats = DeleteStats::default();
    let mut dead_tuples: Vec<proql_common::TupleId> = Vec::new();
    for t in graph.tuple_ids() {
        let has_support = graph.derivations_of(t).iter().any(|d| !masked.contains(d));
        let derivable = has_support && values.get(&t) == Some(&Annotation::Bool(true));
        if !derivable {
            dead_tuples.push(t);
        }
    }

    // Remove dead tuples from public relations.
    for &t in &dead_tuples {
        let node = graph.tuple(t);
        if sys.delete_row_tracked(&node.relation, &node.key)?.is_some() {
            stats.tuples_deleted += 1;
        }
    }

    // Remove materialized provenance rows whose derivations reference a
    // dead tuple: exactly the graph neighbors of the dead tuples.
    let mut visited: HashSet<DerivationId> = HashSet::new();
    for &t in &dead_tuples {
        for &d in graph
            .derivations_of(t)
            .iter()
            .chain(graph.consumers_of(t).iter())
        {
            if !visited.insert(d) {
                continue;
            }
            let node = graph.derivation(d);
            let Some(spec) = sys.spec_for(&node.mapping) else {
                continue;
            };
            if spec.superfluous {
                // View-backed: the base row's deletion above (or the seed's
                // local delete) removes the view row implicitly.
                continue;
            }
            let prov_rel = spec.prov_rel.clone();
            if sys.delete_row_tracked(&prov_rel, &node.prov_row)?.is_some() {
                stats.prov_rows_deleted += 1;
            }
        }
    }
    stats.touched = sys.staged_write_set();
    Ok(stats)
}

/// The Q5 test in isolation: is a tuple still derivable from the current
/// base data?
pub fn remains_derivable(sys: &ProvenanceSystem, relation: &str, key: &Tuple) -> Result<bool> {
    let graph = ProvGraph::from_system(sys)?;
    let Some(t) = graph.find_tuple(relation, key) else {
        return Ok(false);
    };
    if graph.derivations_of(t).is_empty() {
        return Ok(false);
    }
    let assign =
        Assignment::default_for(SemiringKind::Derivability).with_dangling(Annotation::Bool(false));
    let values = evaluate(&graph, &assign)?;
    Ok(values.get(&t) == Some(&Annotation::Bool(true)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{build_system, CdssConfig, Topology};
    use proql_common::tup;
    use proql_provgraph::system::example_2_1;

    #[test]
    fn deleting_sole_base_kills_downstream() {
        // 3-peer chain, data only at peer 2: deleting key 0 at peer 2
        // removes it everywhere.
        let mut sys = build_system(Topology::Chain, &CdssConfig::new(3, vec![2], 3)).unwrap();
        assert!(remains_derivable(&sys, "R0a", &tup![0]).unwrap());
        let stats = delete_local(&mut sys, "R2a", &tup![0]).unwrap();
        // R2a(0), R1a(0), R0a(0) die (the b-side survives? No: the pair
        // mapping needs both sides, so derived a AND b tuples of key 0 die
        // everywhere except the base R2b(0)).
        assert!(stats.tuples_deleted >= 3);
        assert!(!remains_derivable(&sys, "R0a", &tup![0]).unwrap());
        assert!(sys.db.table("R0a").unwrap().get_by_key(&tup![0]).is_none());
        // Other keys untouched.
        assert!(remains_derivable(&sys, "R0a", &tup![1]).unwrap());
        // Provenance rows for key 0 are gone.
        assert!(stats.prov_rows_deleted >= 2);
    }

    #[test]
    fn alternative_derivations_survive_deletion() {
        // Branched: two leaves feed the root with the same keys; deleting
        // one leaf's tuple keeps the root derivable through the other.
        let mut sys = build_system(Topology::Branched, &CdssConfig::new(3, vec![1, 2], 2)).unwrap();
        delete_local(&mut sys, "R1a", &tup![0]).unwrap();
        assert!(remains_derivable(&sys, "R0a", &tup![0]).unwrap());
        assert!(sys.db.table("R0a").unwrap().get_by_key(&tup![0]).is_some());
    }

    #[test]
    fn delete_on_cyclic_example_handles_mutual_derivations() {
        // Example 2.1: C(2,cn2) and N(2,cn2,false) derive each other; only
        // the local C(2,cn2) grounds them. Deleting it must kill both
        // (no infinite support through the cycle).
        let mut sys = example_2_1().unwrap();
        delete_local(&mut sys, "C", &tup![2, "cn2"]).unwrap();
        assert!(!remains_derivable(&sys, "C", &tup![2, "cn2"]).unwrap());
        assert!(!remains_derivable(&sys, "N", &tup![2, "cn2"]).unwrap());
        assert!(sys
            .db
            .table("O")
            .unwrap()
            .get_by_key(&tup!["cn2"])
            .is_none());
        // Tuples grounded by A survive.
        assert!(remains_derivable(&sys, "O", &tup!["sn1"]).unwrap());
    }

    #[test]
    fn delete_reports_write_set_and_bumps_version_once() {
        let mut sys = example_2_1().unwrap();
        let v0 = sys.version();
        let stats = delete_local(&mut sys, "C", &tup![2, "cn2"]).unwrap();
        // Exactly one bump per deletion: the service's replay test maps
        // version v0 + k to "k deletions applied".
        assert_eq!(sys.version(), v0 + 1);
        // The seed's local table and the cascaded victims are recorded.
        assert!(
            stats.touched.contains("C_l"),
            "touched: {:?}",
            stats.touched
        );
        assert!(stats.touched.contains("C"), "touched: {:?}", stats.touched);
        assert!(stats.touched.contains("O"), "touched: {:?}", stats.touched);
        // Provenance relations that lost rows are in the write set.
        assert!(
            stats.touched.iter().any(|r| r.starts_with("P_m")),
            "touched: {:?}",
            stats.touched
        );
        // Untouched base relations are NOT in the write set.
        assert!(
            !stats.touched.contains("A_l"),
            "touched: {:?}",
            stats.touched
        );
        // The sealed delta entry carries the same write set.
        assert_eq!(sys.write_set_since(v0), Some(stats.touched.clone()));
    }

    #[test]
    fn delete_with_cached_graph_matches_plain_delete() {
        let mut plain = example_2_1().unwrap();
        let mut cached = example_2_1().unwrap();
        let graph = ProvGraph::from_system(&cached).unwrap();
        let a = delete_local(&mut plain, "C", &tup![2, "cn2"]).unwrap();
        let b = delete_local_with_graph(&mut cached, "C", &tup![2, "cn2"], &graph).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            ProvGraph::from_system(&plain).unwrap().digest(),
            ProvGraph::from_system(&cached).unwrap().digest()
        );
        // The delta-maintained view of the deletion reproduces the rebuild.
        let mut patched = graph.clone();
        for entry in cached
            .delta_entries(cached.version() - 1, cached.version())
            .unwrap()
        {
            patched.apply_delta(&cached, entry).unwrap();
        }
        patched.maybe_compact();
        assert_eq!(
            patched.digest(),
            ProvGraph::from_system(&cached).unwrap().digest()
        );
    }

    #[test]
    fn seeded_exchange_after_delete_matches_full_bootstrap() {
        // A clean cascade re-asserts the exchange fixpoint, so the next
        // (seeded) exchange must reach exactly the full-bootstrap state.
        use proql_storage::{execute, Plan};
        let mut inc = example_2_1().unwrap();
        let mut full = example_2_1().unwrap();
        delete_local(&mut inc, "A", &tup![1]).unwrap();
        delete_local(&mut full, "A", &tup![1]).unwrap();
        inc.insert_local("A", tup![5, "sn5", 3]).unwrap();
        full.insert_local("A", tup![5, "sn5", 3]).unwrap();
        full.bump_version(); // chain break ⇒ full bootstrap
        inc.run_exchange().unwrap(); // seeded with just the new row
        full.run_exchange().unwrap();
        for rel in ["A", "C", "N", "O", "P_m1", "P_m5"] {
            let a = execute(&inc.db, &Plan::scan(rel)).unwrap().sorted_rows();
            let b = execute(&full.db, &Plan::scan(rel)).unwrap().sorted_rows();
            assert_eq!(a, b, "relation {rel} diverged after delete+insert");
        }
    }

    #[test]
    fn deleting_missing_tuple_errors() {
        let mut sys = example_2_1().unwrap();
        let v0 = sys.version();
        assert!(delete_local(&mut sys, "C", &tup![99, "zz"]).is_err());
        assert!(delete_local(&mut sys, "P_m1", &tup![1]).is_err());
        assert_eq!(sys.version(), v0, "failed deletes must not bump");
    }

    #[test]
    fn derivability_check_for_unknown_tuple_is_false() {
        let sys = example_2_1().unwrap();
        assert!(!remains_derivable(&sys, "O", &tup!["nope"]).unwrap());
    }
}
