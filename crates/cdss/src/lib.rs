//! # proql-cdss
//!
//! Collaborative data sharing system (CDSS) simulation — the experimental
//! substrate of the paper's §6:
//!
//! * [`workload`] — a synthetic SWISS-PROT-like generator: a 25-attribute
//!   universal relation partitioned into two relations per peer sharing a
//!   key, strings replaced by integer hashes (the paper's own
//!   preprocessing),
//! * [`topology`] — the chain (Figure 5) and branched (Figure 6) mapping
//!   topologies, built as [`ProvenanceSystem`]s and exchanged with
//!   provenance,
//! * [`update`] — provenance-based incremental deletion (use case Q5:
//!   "whether a tuple remains derivable" during update exchange).
//!
//! [`ProvenanceSystem`]: proql_provgraph::ProvenanceSystem

pub mod topology;
pub mod update;
pub mod workload;

pub use topology::{build_system, target_query, CdssConfig, Topology};
pub use update::{delete_local, delete_local_with_graph, remains_derivable, DeleteStats};
pub use workload::SwissProtLike;
