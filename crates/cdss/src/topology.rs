//! CDSS mapping topologies (paper Figures 5 and 6).
//!
//! Peers are numbered; peer 0 is the **target peer** every mapping
//! ultimately propagates data to. Each peer `i` hosts two relations
//! `R{i}a(k, ...)` / `R{i}b(k, ...)` (the partitioned universal relation),
//! and each mapping is the pair-unit GLAV mapping
//!
//! ```text
//! m{c}: R{p}a(k, x...), R{p}b(k, y...) :- R{c}a(k, x...), R{c}b(k, y...)
//! ```
//!
//! from child peer `c` to parent peer `p` — "a join between two such
//! relations in the body and another join between two relations in the
//! head" (§6.1.1).

use crate::workload::SwissProtLike;
use proql_common::Result;
use proql_provgraph::ProvenanceSystem;

/// Which mapping graph to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Peers in a line: `0 ← 1 ← 2 ← ...` (Figure 5).
    Chain,
    /// A binary tree rooted at peer 0: peer `i` receives from `2i+1` and
    /// `2i+2` (Figure 6).
    Branched,
}

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct CdssConfig {
    /// Number of peers.
    pub peers: usize,
    /// Peers holding local (base) data.
    pub data_peers: Vec<usize>,
    /// Entries inserted locally at each data peer (the paper's
    /// "base size").
    pub base_size: usize,
    /// RNG seed.
    pub seed: u64,
    /// Attributes of the universal relation (25 in the paper).
    pub attrs: usize,
}

impl CdssConfig {
    /// A chain/branched setting with data at the `data_peers` listed.
    pub fn new(peers: usize, data_peers: Vec<usize>, base_size: usize) -> Self {
        CdssConfig {
            peers,
            data_peers,
            base_size,
            seed: 0xC0FFEE,
            attrs: 25,
        }
    }

    /// Data at every peer (the paper's Figure 7 stress test).
    pub fn all_data(peers: usize, base_size: usize) -> Self {
        CdssConfig::new(peers, (0..peers).collect(), base_size)
    }

    /// Data at the `n` most upstream peers (paper §6.3: "data at a few of
    /// the peers near the right-hand side of the topologies").
    pub fn upstream_data(peers: usize, n: usize, base_size: usize) -> Self {
        CdssConfig::new(peers, (peers.saturating_sub(n)..peers).collect(), base_size)
    }
}

/// The parent of peer `i` under a topology, if any (peer 0 is the root).
pub fn parent_of(topology: Topology, i: usize) -> Option<usize> {
    if i == 0 {
        return None;
    }
    Some(match topology {
        Topology::Chain => i - 1,
        Topology::Branched => (i - 1) / 2,
    })
}

/// Build the system: relations and local tables for every peer, mappings
/// along the topology, local data at the configured peers, exchanged with
/// provenance.
pub fn build_system(topology: Topology, config: &CdssConfig) -> Result<ProvenanceSystem> {
    assemble(topology, config, 0)
}

/// Like [`build_system`], plus one **disconnected** relation family:
/// `Island(k, v)` (with local data, `island_size` tuples keyed `0..n`)
/// feeding `IslandOut` through the mapping `misl`. No target-query read
/// set overlaps the island, so island writes are provably unrelated —
/// the query service's cache tests and the `serve` load generator use
/// them to show that unrelated updates keep cached answers hot.
/// `island_size` of 0 omits the island entirely (identical to
/// [`build_system`]).
pub fn build_system_with_island(
    topology: Topology,
    config: &CdssConfig,
    island_size: usize,
) -> Result<ProvenanceSystem> {
    assemble(topology, config, island_size)
}

fn assemble(
    topology: Topology,
    config: &CdssConfig,
    island_size: usize,
) -> Result<ProvenanceSystem> {
    let mut sys = ProvenanceSystem::new();
    let mut gen = SwissProtLike::new(config.seed, config.attrs);
    let (na, nb) = gen.split();

    for i in 0..config.peers {
        sys.add_relation_with_local(gen.schema_a(&format!("R{i}a")))?;
        sys.add_relation_with_local(gen.schema_b(&format!("R{i}b")))?;
    }

    let xs: Vec<String> = (0..na).map(|j| format!("x{j}")).collect();
    let ys: Vec<String> = (0..nb).map(|j| format!("y{j}")).collect();
    for c in 1..config.peers {
        let p = parent_of(topology, c).expect("non-root");
        let rule = format!(
            "m{c}: R{p}a(k, {xs}), R{p}b(k, {ys}) :- R{c}a(k, {xs}), R{c}b(k, {ys})",
            xs = xs.join(", "),
            ys = ys.join(", "),
        );
        sys.add_mapping_text(&rule)?;
    }

    if island_size > 0 {
        use proql_common::{Schema, Tuple, Value, ValueType};
        for name in ["Island", "IslandOut"] {
            sys.add_relation_with_local(Schema::build(
                name,
                &[("k", ValueType::Int), ("v", ValueType::Int)],
                &[0],
            )?)?;
        }
        sys.add_mapping_text("misl: IslandOut(k, v) :- Island(k, v)")?;
        for k in 0..island_size {
            sys.insert_local(
                "Island",
                Tuple::new(vec![Value::Int(k as i64), Value::Int(k as i64 * 7)]),
            )?;
        }
    }

    for &peer in &config.data_peers {
        for e in 0..config.base_size {
            let (ta, tb) = gen.entry(e as i64);
            sys.insert_local(&format!("R{peer}a"), ta)?;
            sys.insert_local(&format!("R{peer}b"), tb)?;
        }
    }
    sys.run_exchange()?;
    Ok(sys)
}

/// The paper's **target query** (§6.1.2): all derivations of the target
/// peer's relation, traversing every mapping path to its end.
pub fn target_query() -> &'static str {
    "FOR [R0a $x] INCLUDE PATH [$x] <-+ [] RETURN $x"
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql::engine::{Engine, Strategy};

    #[test]
    fn chain_exchange_propagates_to_target() {
        // 4-peer chain, data at the far end only.
        let sys = build_system(Topology::Chain, &CdssConfig::new(4, vec![3], 5)).unwrap();
        assert_eq!(sys.db.table("R0a").unwrap().len(), 5);
        assert_eq!(sys.db.table("R0b").unwrap().len(), 5);
        // Each hop recorded provenance: 3 mappings × 5 keys.
        assert_eq!(sys.provenance_rows(), 15);
    }

    #[test]
    fn branched_tree_parents() {
        assert_eq!(parent_of(Topology::Branched, 1), Some(0));
        assert_eq!(parent_of(Topology::Branched, 2), Some(0));
        assert_eq!(parent_of(Topology::Branched, 5), Some(2));
        assert_eq!(parent_of(Topology::Branched, 0), None);
        assert_eq!(parent_of(Topology::Chain, 7), Some(6));
    }

    #[test]
    fn branched_exchange_merges_branches() {
        // 7-peer tree, data at the four leaves with the same key space:
        // target gets base_size tuples (set semantics dedups).
        let sys =
            build_system(Topology::Branched, &CdssConfig::new(7, vec![3, 4, 5, 6], 4)).unwrap();
        assert_eq!(sys.db.table("R0a").unwrap().len(), 4);
    }

    #[test]
    fn target_query_runs_on_chain() {
        let sys = build_system(Topology::Chain, &CdssConfig::new(4, vec![3], 5)).unwrap();
        let mut e = Engine::new(sys);
        e.options.strategy = Strategy::Unfold;
        let out = e.query(target_query()).unwrap();
        assert_eq!(out.projection.bindings.len(), 5);
        // One unfolded rule: the only derivation bottoms at peer 3.
        assert_eq!(out.stats.translate.rules, 1);
        // Its derivations span all three mappings plus the leaf locals.
        assert!(out.projection.derivations.contains_key("m1"));
        assert!(out.projection.derivations.contains_key("m3"));
    }

    #[test]
    fn unfolded_rules_grow_with_data_peers() {
        // The paper's Figure 8 effect: more data peers, more rules.
        let mut previous = 0;
        for k in 1..=3 {
            let cfg = CdssConfig::upstream_data(5, k, 2);
            let sys = build_system(Topology::Chain, &cfg).unwrap();
            let mut e = Engine::new(sys);
            e.options.strategy = Strategy::Unfold;
            let out = e.query(target_query()).unwrap();
            assert!(
                out.stats.translate.rules > previous,
                "k={k}: {} rules",
                out.stats.translate.rules
            );
            previous = out.stats.translate.rules;
        }
    }

    #[test]
    fn pair_mappings_unfold_as_units() {
        // All-data 3-peer chain: rule bodies stay linear in chain length
        // (the coalescing keeps the pair subtree shared).
        let sys = build_system(Topology::Chain, &CdssConfig::all_data(3, 2)).unwrap();
        let mut e = Engine::new(sys);
        e.options.strategy = Strategy::Unfold;
        let out = e.query(target_query()).unwrap();
        for _ in 0..1 {
            // every rule's atoms ≤ 2 atoms per chain level + slack
            let max_atoms = out.stats.translate.total_atoms / out.stats.translate.rules;
            assert!(max_atoms <= 10, "avg atoms per rule = {max_atoms}");
        }
        // Query answers are the union of all alternatives: 2 tuples.
        assert_eq!(out.projection.bindings.len(), 2);
    }

    #[test]
    fn island_family_is_disconnected_from_the_chain() {
        let sys =
            build_system_with_island(Topology::Chain, &CdssConfig::new(3, vec![2], 4), 6).unwrap();
        assert_eq!(sys.db.table("IslandOut").unwrap().len(), 6);
        // The target query's read set never mentions the island.
        let e = Engine::new(sys);
        let out = e.query(target_query()).unwrap();
        assert!(!out.touched.iter().any(|r| r.contains("Island")));
        assert_eq!(out.projection.bindings.len(), 4);
    }

    #[test]
    fn instance_size_grows_linearly_with_peers() {
        // Figure 10's effect.
        let s4 = build_system(Topology::Chain, &CdssConfig::new(4, vec![3], 10)).unwrap();
        let s8 = build_system(Topology::Chain, &CdssConfig::new(8, vec![7], 10)).unwrap();
        let r4 = s4.db.total_rows();
        let r8 = s8.db.total_rows();
        assert!(r8 > r4);
        // Roughly proportional to peer count (within 2x slack).
        assert!(r8 < r4 * 3);
    }
}
