//! # proql-bench
//!
//! Benchmark harnesses reproducing every table and figure of the paper's
//! evaluation (§6). Each `fig*` binary prints the same rows/series the
//! paper reports; `table1` demonstrates the Table 1 semirings on the
//! running example. See EXPERIMENTS.md for paper-vs-measured notes.
//!
//! Scales default to CI-friendly sizes; set `PROQL_SCALE=full` to run the
//! paper's original parameters (minutes, not seconds).

use proql::engine::{Engine, EngineOptions, Strategy};
use proql_cdss::topology::{build_system, target_query, CdssConfig, Topology};
use proql_provgraph::ProvenanceSystem;
use std::time::Instant;

/// One measured run of the target query.
#[derive(Debug, Clone, Default)]
pub struct Measurement {
    /// Unfolding (translation) time, seconds.
    pub unfold_s: f64,
    /// Evaluation time, seconds.
    pub eval_s: f64,
    /// Unfolded rules.
    pub rules: usize,
    /// Distinguished bindings returned.
    pub bindings: usize,
    /// Total instance size (rows in all base tables).
    pub instance_rows: usize,
    /// Generated SQL bytes (the paper's DB2 size-limit proxy).
    pub sql_bytes: usize,
    /// Result rows across all executed rules.
    pub rows: usize,
    /// Join operators across all executed plans.
    pub joins: usize,
}

impl Measurement {
    /// Total query processing time (the paper's unfold + evaluation sum).
    pub fn total_s(&self) -> f64 {
        self.unfold_s + self.eval_s
    }

    /// Render as one JSON object (hand-rolled; the build environment has no
    /// registry access, so no serde). `extra` is a list of already-encoded
    /// `"key": value` fragments prepended to the object.
    pub fn to_json(&self, extra: &[String]) -> String {
        let mut fields = extra.to_vec();
        fields.push(format!("\"unfold_s\": {:.6}", self.unfold_s));
        fields.push(format!("\"eval_s\": {:.6}", self.eval_s));
        fields.push(format!("\"total_s\": {:.6}", self.total_s()));
        fields.push(format!("\"rules\": {}", self.rules));
        fields.push(format!("\"bindings\": {}", self.bindings));
        fields.push(format!("\"instance_rows\": {}", self.instance_rows));
        fields.push(format!("\"sql_bytes\": {}", self.sql_bytes));
        fields.push(format!("\"rows\": {}", self.rows));
        fields.push(format!("\"joins\": {}", self.joins));
        format!("{{{}}}", fields.join(", "))
    }
}

/// `true` when machine-readable JSON lines should be printed alongside the
/// human tables (`PROQL_JSON=1`). Future PRs diff these for the perf
/// trajectory.
pub fn json_output() -> bool {
    std::env::var("PROQL_JSON")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// JSON string literal escaping for the hand-rolled encoder.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Nearest-rank percentile (`p` in 0..=1) of an **ascending-sorted**
/// series; 0.0 when empty. Shared by the latency-reporting bench bins so
/// they all compute percentiles the same way.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// `true` when `PROQL_SCALE=full` (run the paper's original sizes).
pub fn full_scale() -> bool {
    std::env::var("PROQL_SCALE")
        .map(|v| v == "full")
        .unwrap_or(false)
}

/// Pick `quick` normally, `full` under `PROQL_SCALE=full`.
pub fn scaled(quick: usize, full: usize) -> usize {
    if full_scale() {
        full
    } else {
        quick
    }
}

/// Run the target query with the unfold strategy, returning a measurement.
/// `options` lets callers attach an ASR rewriter or pick an executor
/// ([`proql_storage::ExecMode`]) for batch-vs-baseline ablations.
pub fn measure_target_query(sys: &ProvenanceSystem, options: EngineOptions) -> Measurement {
    let mut opts = options;
    opts.strategy = Strategy::Unfold;
    let instance_rows = sys.db.total_rows();
    let engine = Engine::with_options(sys.clone(), opts);
    let out = engine.query(target_query()).expect("target query must run");
    Measurement {
        unfold_s: out.stats.unfold_time.as_secs_f64(),
        eval_s: out.stats.eval_time.as_secs_f64(),
        rules: out.stats.translate.rules,
        bindings: out.projection.bindings.len(),
        instance_rows,
        sql_bytes: out.stats.sql_bytes,
        rows: out.projection.metrics.rows,
        joins: out.stats.total_joins,
    }
}

/// Build a topology, timing the exchange.
pub fn build_timed(topology: Topology, cfg: &CdssConfig) -> (ProvenanceSystem, f64) {
    let t0 = Instant::now();
    let sys = build_system(topology, cfg).expect("topology builds");
    (sys, t0.elapsed().as_secs_f64())
}

/// Print a header line for a figure harness.
pub fn banner(title: &str, paper: &str) {
    println!("== {title}");
    println!("   paper: {paper}");
    if !full_scale() {
        println!("   (scaled-down run; PROQL_SCALE=full for paper-scale sizes)");
    }
    println!();
}

/// Shared driver for the ASR experiments (Figures 11–13): measure the
/// target query without ASRs and then with each ASR type at each maximum
/// path length, printing one row per configuration.
pub fn asr_sweep(topology: Topology, cfg: &CdssConfig, lengths: &[usize]) {
    use proql_asr::{advise, AsrKind, AsrRegistry};
    use std::sync::Arc;

    let (sys, _) = build_timed(topology, cfg);
    let baseline = measure_target_query(&sys, EngineOptions::default());
    println!(
        "{:>10} {:>8} {:>14} {:>12} {:>12}",
        "type", "len", "total (s)", "rules", "asr rows"
    );
    println!(
        "{:>10} {:>8} {:>14.4} {:>12} {:>12}",
        "none",
        "-",
        baseline.total_s(),
        baseline.rules,
        0
    );
    for kind in [
        AsrKind::Complete,
        AsrKind::Subpath,
        AsrKind::Prefix,
        AsrKind::Suffix,
    ] {
        for &len in lengths {
            let mut sys2 = sys.clone();
            let mut reg = AsrRegistry::new();
            let defs = advise(&sys2, "R0a", len, kind);
            for d in defs {
                if let Err(e) = reg.build(&mut sys2, d) {
                    eprintln!("   (skipping ASR: {e})");
                }
            }
            let rows = reg.total_rows();
            let opts = EngineOptions {
                rewriter: Some(Arc::new(reg)),
                ..Default::default()
            };
            let m = measure_target_query(&sys2, opts);
            assert_eq!(
                m.bindings, baseline.bindings,
                "ASR rewriting must not change results"
            );
            println!(
                "{:>10} {:>8} {:>14.4} {:>12} {:>12}",
                kind.name(),
                len,
                m.total_s(),
                m.rules,
                rows
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_runs_on_small_chain() {
        let (sys, _) = build_timed(Topology::Chain, &CdssConfig::new(3, vec![2], 4));
        let m = measure_target_query(&sys, EngineOptions::default());
        assert_eq!(m.bindings, 4);
        assert!(m.rules >= 1);
        assert!(m.total_s() >= 0.0);
        assert!(m.instance_rows > 0);
    }

    #[test]
    fn scaled_respects_env_default() {
        std::env::remove_var("PROQL_SCALE");
        assert_eq!(scaled(3, 100), 3);
    }
}
