//! Table 1 — "Useful mappings of base values and operations in evaluating
//! provenance graphs": demonstrates each semiring's base value, ⊗, and ⊕
//! by evaluating the running example (Figure 1) and printing the resulting
//! annotation for every `O` tuple.

use proql::engine::{Engine, Strategy};
use proql_bench::{json_output, json_str};
use proql_provgraph::system::example_2_1;

fn main() {
    proql_bench::banner(
        "Table 1: semiring annotation computations",
        "each row = one use case; annotations of the O tuples in Figure 1",
    );

    let queries: Vec<(&str, String)> = vec![
        ("Derivability", wrap("DERIVABILITY", "")),
        (
            "Trust",
            wrap(
                "TRUST",
                "ASSIGNING EACH leaf_node $y {
                   CASE $y in A AND $y.len >= 6 : SET false
                   DEFAULT : SET true
                 } ASSIGNING EACH mapping $p($z) {
                   CASE $p = m4 : SET false
                   DEFAULT : SET $z
                 }",
            ),
        ),
        (
            "Confidentiality",
            wrap(
                "CONFIDENTIALITY",
                "ASSIGNING EACH leaf_node $y {
                   CASE $y in A : SET secret
                   DEFAULT : SET public
                 }",
            ),
        ),
        (
            "Weight/cost",
            wrap(
                "WEIGHT",
                "ASSIGNING EACH leaf_node $y {
                   CASE $y in A : SET 10
                   DEFAULT : SET 1
                 }",
            ),
        ),
        ("Lineage", wrap("LINEAGE", "")),
        (
            "Probability",
            wrap(
                "PROBABILITY",
                "ASSIGNING EACH leaf_node $y {
                   DEFAULT : SET 0.9
                 }",
            ),
        ),
    ];

    for (name, q) in queries {
        let mut engine = Engine::new(example_2_1().expect("example builds"));
        engine.options.strategy = Strategy::Graph;
        let out = engine.query(&q).expect("query runs");
        let ann = out.annotated.expect("annotated");
        println!("-- {name}");
        let mut rows = ann.rows.clone();
        rows.sort_by(|a, b| a.key.cmp(&b.key));
        for row in rows {
            print!("   O{} = {}", row.key, row.annotation);
            let mut probability = None;
            if name == "Probability" {
                if let Some(ev) = row.annotation.as_event() {
                    let p = proql_semiring::event_probability(ev, &|e| {
                        *ann.leaf_probs.get(e).unwrap_or(&0.9)
                    })
                    .unwrap_or(f64::NAN);
                    print!("   [P = {p:.4}]");
                    probability = Some(p);
                }
            }
            println!();
            if json_output() {
                let mut fields = vec![
                    format!("\"fig\": {}", json_str("table1")),
                    format!("\"use_case\": {}", json_str(name)),
                    format!("\"key\": {}", json_str(&format!("{}", row.key))),
                    format!(
                        "\"annotation\": {}",
                        json_str(&format!("{}", row.annotation))
                    ),
                ];
                // NaN (a failed probability computation) is not valid
                // JSON; omit the field rather than corrupt the line.
                if let Some(p) = probability.filter(|p| p.is_finite()) {
                    fields.push(format!("\"probability\": {p:.6}"));
                }
                println!("{{{}}}", fields.join(", "));
            }
        }
    }

    // The counting semiring diverges on the (cyclic) full example — the
    // limitation Table 1's discussion calls out — so demonstrate it on the
    // acyclic projection through m4/m5 only.
    println!("-- Number of derivations (acyclic projection via m4/m5)");
    let sys = example_2_1().expect("example builds");
    let g = proql_provgraph::ProvGraph::from_system(&sys).expect("graph");
    let derivs: Vec<_> = g
        .derivation_ids()
        .filter(|&d| {
            let n = g.derivation(d);
            n.is_base || n.mapping == "m4" || n.mapping == "m5"
        })
        .collect();
    let sub = g.project(derivs);
    let vals = proql_semiring::evaluate(
        &sub,
        &proql_semiring::Assignment::default_for(proql_semiring::SemiringKind::Counting),
    )
    .expect("counting on acyclic projection");
    for t in sub.tuple_ids() {
        let node = sub.tuple(t);
        if node.relation == "O" {
            println!("   O{} = {}", node.key, vals[&t]);
            if json_output() {
                println!(
                    "{{\"fig\": {}, \"use_case\": {}, \"key\": {}, \"annotation\": {}}}",
                    json_str("table1"),
                    json_str("Number of derivations"),
                    json_str(&format!("{}", node.key)),
                    json_str(&format!("{}", vals[&t])),
                );
            }
        }
    }
}

fn wrap(semiring: &str, assigning: &str) -> String {
    format!(
        "EVALUATE {semiring} OF {{ FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x }} {assigning}"
    )
}
