//! Figure 7 — query processing times and unfolded rules for a chain of
//! varying length with data at **every** peer (the stress test). Expected
//! shape: the number of unfolded rules, unfolding time, and evaluation
//! time all grow exponentially with the number of peers.
//!
//! Each configuration is measured under the columnar batch executor (serial
//! and morsel-parallel via [`Parallelism::Auto`]) and the legacy
//! nested-loop baseline; with `PROQL_JSON=1` one JSON line per
//! (peers, mode) is printed plus a `speedup` line carrying both the
//! batch-vs-nested-loop ablation and the `parallel_speedup` field, giving
//! future PRs a machine-readable perf trajectory. Set
//! `PROQL_MIN_PARALLEL_SPEEDUP=<x>` to gate the run on the best observed
//! parallel speedup (CI uses a lenient floor so single-core runners — where
//! `Auto` resolves to one thread — never flake).

use proql::engine::EngineOptions;
use proql_bench::{banner, build_timed, json_output, json_str, measure_target_query, scaled};
use proql_cdss::topology::{CdssConfig, Topology};
use proql_common::Parallelism;
use proql_storage::ExecMode;

fn main() {
    banner(
        "Figure 7: chain of varying length, data at every peer",
        "evaluation/unfolding time and #unfolded rules vs #peers (exponential)",
    );
    let base = scaled(100, 1000);
    let max_peers = scaled(6, 8);
    let worker_threads = Parallelism::Auto.threads();
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>14} {:>10}",
        "peers", "mode", "rules", "unfold (s)", "eval (s)", "bindings"
    );
    let mut best_parallel_speedup = 0.0f64;
    for peers in 2..=max_peers {
        let cfg = CdssConfig::all_data(peers, base);
        let (sys, _) = build_timed(Topology::Chain, &cfg);
        let mut batch_eval = 0.0;
        let mut parallel_eval = 0.0;
        let mut nested_eval = 0.0;
        for (name, mode, par) in [
            ("batch", ExecMode::Batch, Parallelism::Serial),
            ("parallel", ExecMode::Batch, Parallelism::Auto),
            ("nestedloop", ExecMode::NestedLoop, Parallelism::Serial),
        ] {
            let opts = EngineOptions {
                exec_mode: mode,
                parallelism: par,
                ..Default::default()
            };
            let m = measure_target_query(&sys, opts);
            match name {
                "batch" => batch_eval = m.eval_s,
                "parallel" => parallel_eval = m.eval_s,
                _ => nested_eval = m.eval_s,
            }
            println!(
                "{:>6} {:>12} {:>12} {:>14.4} {:>14.4} {:>10}",
                peers, name, m.rules, m.unfold_s, m.eval_s, m.bindings
            );
            if json_output() {
                println!(
                    "{}",
                    m.to_json(&[
                        format!("\"fig\": {}", json_str("fig7")),
                        format!("\"peers\": {peers}"),
                        format!("\"mode\": {}", json_str(name)),
                    ])
                );
            }
        }
        let speedup = if batch_eval > 0.0 {
            nested_eval / batch_eval
        } else {
            0.0
        };
        let parallel_speedup = if parallel_eval > 0.0 {
            batch_eval / parallel_eval
        } else {
            0.0
        };
        best_parallel_speedup = best_parallel_speedup.max(parallel_speedup);
        println!(
            "{:>6} {:>12} speedup batch vs nested-loop: {speedup:.2}x, \
             parallel ({worker_threads} threads) vs serial: {parallel_speedup:.2}x",
            peers, ""
        );
        if json_output() {
            println!(
                "{{\"fig\": {}, \"peers\": {peers}, \"batch_eval_s\": {batch_eval:.6}, \
                 \"nestedloop_eval_s\": {nested_eval:.6}, \"speedup\": {speedup:.3}, \
                 \"parallel_eval_s\": {parallel_eval:.6}, \
                 \"parallel_threads\": {worker_threads}, \
                 \"parallel_speedup\": {parallel_speedup:.3}}}",
                json_str("fig7_speedup")
            );
        }
    }
    if let Ok(min) = std::env::var("PROQL_MIN_PARALLEL_SPEEDUP") {
        let min: f64 = min.parse().expect("PROQL_MIN_PARALLEL_SPEEDUP is a float");
        if worker_threads <= 1 {
            // With one worker thread the "parallel" run executes the serial
            // code path, so the ratio is pure timing noise around 1.0 —
            // comparing it against a gate would flake with no code defect.
            println!("(parallel-speedup gate skipped: single worker thread)");
        } else {
            assert!(
                best_parallel_speedup >= min,
                "best parallel speedup {best_parallel_speedup:.3}x is below the \
                 gate of {min}x ({worker_threads} worker threads)"
            );
        }
    }
}
