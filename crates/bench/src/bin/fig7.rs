//! Figure 7 — query processing times and unfolded rules for a chain of
//! varying length with data at **every** peer (the stress test). Expected
//! shape: the number of unfolded rules, unfolding time, and evaluation
//! time all grow exponentially with the number of peers.
//!
//! Each configuration is measured under the columnar batch executor and
//! the legacy nested-loop baseline; with `PROQL_JSON=1` one JSON line per
//! (peers, mode) is printed plus a `speedup` line, giving future PRs a
//! machine-readable perf trajectory.

use proql::engine::EngineOptions;
use proql_bench::{banner, build_timed, json_output, json_str, measure_target_query, scaled};
use proql_cdss::topology::{CdssConfig, Topology};
use proql_storage::ExecMode;

fn main() {
    banner(
        "Figure 7: chain of varying length, data at every peer",
        "evaluation/unfolding time and #unfolded rules vs #peers (exponential)",
    );
    let base = scaled(100, 1000);
    let max_peers = scaled(6, 8);
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>14} {:>10}",
        "peers", "mode", "rules", "unfold (s)", "eval (s)", "bindings"
    );
    for peers in 2..=max_peers {
        let cfg = CdssConfig::all_data(peers, base);
        let (sys, _) = build_timed(Topology::Chain, &cfg);
        let mut batch_eval = 0.0;
        let mut nested_eval = 0.0;
        for (name, mode) in [
            ("batch", ExecMode::Batch),
            ("nestedloop", ExecMode::NestedLoop),
        ] {
            let opts = EngineOptions {
                exec_mode: mode,
                ..Default::default()
            };
            let m = measure_target_query(&sys, opts);
            match mode {
                ExecMode::Batch => batch_eval = m.eval_s,
                _ => nested_eval = m.eval_s,
            }
            println!(
                "{:>6} {:>12} {:>12} {:>14.4} {:>14.4} {:>10}",
                peers, name, m.rules, m.unfold_s, m.eval_s, m.bindings
            );
            if json_output() {
                println!(
                    "{}",
                    m.to_json(&[
                        format!("\"fig\": {}", json_str("fig7")),
                        format!("\"peers\": {peers}"),
                        format!("\"mode\": {}", json_str(name)),
                    ])
                );
            }
        }
        let speedup = if batch_eval > 0.0 {
            nested_eval / batch_eval
        } else {
            0.0
        };
        println!(
            "{:>6} {:>12} speedup batch vs nested-loop: {speedup:.2}x",
            peers, ""
        );
        if json_output() {
            println!(
                "{{\"fig\": {}, \"peers\": {peers}, \"batch_eval_s\": {batch_eval:.6}, \
                 \"nestedloop_eval_s\": {nested_eval:.6}, \"speedup\": {speedup:.3}}}",
                json_str("fig7_speedup")
            );
        }
    }
}
