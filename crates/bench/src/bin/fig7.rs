//! Figure 7 — query processing times and unfolded rules for a chain of
//! varying length with data at **every** peer (the stress test). Expected
//! shape: the number of unfolded rules, unfolding time, and evaluation
//! time all grow exponentially with the number of peers.

use proql::engine::EngineOptions;
use proql_bench::{banner, build_timed, measure_target_query, scaled};
use proql_cdss::topology::{CdssConfig, Topology};

fn main() {
    banner(
        "Figure 7: chain of varying length, data at every peer",
        "evaluation/unfolding time and #unfolded rules vs #peers (exponential)",
    );
    let base = scaled(100, 1000);
    let max_peers = scaled(6, 8);
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>10}",
        "peers", "rules", "unfold (s)", "eval (s)", "bindings"
    );
    for peers in 2..=max_peers {
        let cfg = CdssConfig::all_data(peers, base);
        let (sys, _) = build_timed(Topology::Chain, &cfg);
        let m = measure_target_query(&sys, EngineOptions::default());
        println!(
            "{:>6} {:>12} {:>14.4} {:>14.4} {:>10}",
            peers, m.rules, m.unfold_s, m.eval_s, m.bindings
        );
    }
}
