//! Figure 10 — chain and branched topologies with a fixed base size,
//! varying the **number of peers**. Expected shape: instance size and
//! query processing time grow roughly linearly with the peer count
//! (slightly faster for the branched topology).

use proql::engine::EngineOptions;
use proql_bench::{banner, build_timed, measure_target_query, scaled};
use proql_cdss::topology::{CdssConfig, Topology};

fn main() {
    banner(
        "Figure 10: varying number of peers, base 10k at 2-3 peers",
        "query time and instance size vs #peers (linear)",
    );
    let base = scaled(500, 10_000);
    let peer_steps: Vec<usize> = if proql_bench::full_scale() {
        (1..=8).map(|i| i * 10).collect()
    } else {
        vec![5, 10, 15, 20, 25, 30]
    };
    println!(
        "{:>8} {:>9} {:>14} {:>14} {:>12}",
        "peers", "topology", "total (s)", "instance", "sql bytes"
    );
    for &peers in &peer_steps {
        for (name, topo, cfg) in [
            (
                "chain",
                Topology::Chain,
                CdssConfig::upstream_data(peers, 2, base),
            ),
            (
                "branched",
                Topology::Branched,
                CdssConfig::new(peers, vec![peers - 1, peers - 2], base),
            ),
        ] {
            let (sys, _) = build_timed(topo, &cfg);
            let m = measure_target_query(&sys, EngineOptions::default());
            println!(
                "{:>8} {:>9} {:>14.4} {:>14} {:>12}",
                peers,
                name,
                m.total_s(),
                m.instance_rows,
                m.sql_bytes
            );
        }
    }
}
