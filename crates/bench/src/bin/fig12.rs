//! Figure 12 — ASR types × lengths on a chain of 8 peers, **half** of which
//! have local data. Expected shape: subpath/prefix/suffix ASRs beat
//! complete-path ASRs (many unfolded rules use partial segments), with
//! suffix ASRs strongest for the target query, and benefits peaking at
//! medium lengths.

use proql_bench::{asr_sweep, banner, scaled};
use proql_cdss::topology::{CdssConfig, Topology};

fn main() {
    banner(
        "Figure 12: ASR types × lengths, chain of 8 peers, 4 with data",
        "subpath/suffix ASRs beat complete-path ASRs; medium lengths peak",
    );
    let base = scaled(2_000, 50_000);
    let lengths: Vec<usize> = (2..=7).collect();
    asr_sweep(
        Topology::Chain,
        &CdssConfig::upstream_data(8, 4, base),
        &lengths,
    );
}
