//! Ablation (beyond the paper): the unfold-to-SQL strategy (§4.2) versus
//! the bottom-up provenance-graph walk (§8's sketched alternative), on the
//! same annotation workload. Shows where each wins: unfolding is
//! goal-directed (cheap for selective queries), the graph walk amortizes
//! across queries and handles cycles.

use proql::engine::{Engine, Strategy};
use proql_bench::{banner, build_timed, json_output, json_str, scaled};
use proql_cdss::topology::{target_query, CdssConfig, Topology};
use std::time::Instant;

fn main() {
    banner(
        "Ablation: unfold strategy vs bottom-up graph strategy",
        "not in the paper; quantifies §8's proposed alternative",
    );
    let peers = scaled(10, 20);
    let base = scaled(2_000, 50_000);
    let (sys, _) = build_timed(Topology::Chain, &CdssConfig::upstream_data(peers, 2, base));
    let instance_rows = sys.db.total_rows();
    println!("{:>10} {:>14} {:>12}", "strategy", "time (s)", "bindings");
    for (name, strategy) in [("unfold", Strategy::Unfold), ("graph", Strategy::Graph)] {
        let mut engine = Engine::new(sys.clone());
        engine.options.strategy = strategy;
        let t0 = Instant::now();
        let out = engine.query(target_query()).expect("query runs");
        let total_s = t0.elapsed().as_secs_f64();
        println!(
            "{:>10} {:>14.4} {:>12}",
            name,
            total_s,
            out.projection.bindings.len()
        );
        if json_output() {
            println!(
                "{{\"fig\": {}, \"strategy\": {}, \"peers\": {peers}, \
                 \"instance_rows\": {instance_rows}, \"total_s\": {total_s:.6}, \
                 \"bindings\": {}, \"rules\": {}}}",
                json_str("ablation_eval"),
                json_str(name),
                out.projection.bindings.len(),
                out.stats.translate.rules,
            );
        }
    }
}
