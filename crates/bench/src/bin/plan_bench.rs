//! `plan_bench` — the cost-based optimizer's two headline wins.
//!
//! **Part 1 — join reordering.** A skewed 3-way provenance-shaped join
//! (`P_a ⋈ P_b ⋈ P_c`, with `P_c` filtered to a single row) where the
//! written join order computes a quadratic `P_a ⋈ P_b` intermediate
//! first. The cost-based reordering pass starts from the filtered leaf
//! instead. Both plans are executed (results asserted identical) and the
//! speedup is gated by `PROQL_MIN_REORDER_SPEEDUP`.
//!
//! **Part 2 — prepared plans.** The CDSS chain target query served
//! through [`ServiceCore`] under forced result-cache misses (every
//! iteration invalidates the result cache, as a write-heavy workload
//! would): with the prepared-plan cache, only execution runs per
//! request; with the plan cache disabled, every request re-runs
//! parse → translate → optimize. Digests are asserted identical and the
//! plan-cache hit rate is reported (and must be nonzero).
//!
//! `PROQL_JSON=1` emits one machine-readable line.

use proql::engine::EngineOptions;
use proql_bench::{banner, json_output, scaled};
use proql_cdss::topology::{build_system, target_query, CdssConfig, Topology};
use proql_common::{tup, Schema, ValueType};
use proql_service::proto::result_digest;
use proql_service::ServiceCore;
use proql_storage::optimize::{optimize_with, optimize_with_config, OptimizerConfig, Pass};
use proql_storage::{execute_batch, AggFunc, Aggregate, Database, Expr, Plan};
use std::time::Instant;

fn main() {
    banner(
        "plan_bench: cost-based join reordering + prepared-plan reuse",
        "beyond the paper; ROADMAP optimizer trajectory",
    );

    // ---- Part 1: skewed 3-way join, reordered vs written order. ----
    let n = scaled(3_000, 20_000) as i64;
    let groups = 15;
    let zs = 10;
    let mut db = Database::new();
    db.create_table(
        Schema::build("P_a", &[("x", ValueType::Int), ("g", ValueType::Int)], &[0]).unwrap(),
    )
    .unwrap();
    db.create_table(
        Schema::build(
            "P_b",
            &[
                ("g", ValueType::Int),
                ("z", ValueType::Int),
                ("id", ValueType::Int),
            ],
            &[2],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        Schema::build("P_c", &[("z", ValueType::Int), ("w", ValueType::Int)], &[0]).unwrap(),
    )
    .unwrap();
    for i in 0..n {
        db.insert("P_a", tup![i, i % groups]).unwrap();
        db.insert("P_b", tup![i % groups, i % zs, i]).unwrap();
    }
    for z in 0..zs {
        db.insert("P_c", tup![z, z * 7]).unwrap();
    }
    // Written order: (P_a ⋈ P_b) ⋈ σ(P_c) — quadratic first join.
    let plan = Plan::Aggregate {
        input: Box::new(
            Plan::scan("P_a")
                .join(Plan::scan("P_b"), vec![1], vec![0])
                .join(
                    Plan::scan("P_c").filter(Expr::col(0).eq(Expr::lit(3))),
                    vec![3],
                    vec![0],
                ),
        ),
        group_by: vec![],
        aggs: vec![
            Aggregate::new(AggFunc::Count, "n"),
            Aggregate::new(AggFunc::Sum(0), "sx"),
        ],
        having: None,
    };
    let with_reorder = optimize_with(&db, plan.clone());
    let without_reorder =
        optimize_with_config(&db, plan, &OptimizerConfig::without(Pass::ReorderJoins));

    let time_plan = |p: &Plan| -> (f64, Vec<proql_common::Tuple>) {
        let mut best = f64::INFINITY;
        let mut rows = Vec::new();
        for _ in 0..3 {
            let t0 = Instant::now();
            let batch = execute_batch(&db, p).expect("plan executes");
            best = best.min(t0.elapsed().as_secs_f64());
            rows = batch.to_rows();
        }
        (best, rows)
    };
    let (reorder_s, reorder_rows) = time_plan(&with_reorder);
    let (noreorder_s, noreorder_rows) = time_plan(&without_reorder);
    assert_eq!(
        reorder_rows, noreorder_rows,
        "join reordering must not change results"
    );
    let reorder_speedup = noreorder_s / reorder_s.max(1e-9);

    println!(
        "{:>14} {:>14} {:>10}",
        "written (s)", "reordered (s)", "speedup"
    );
    println!("{noreorder_s:>14.4} {reorder_s:>14.4} {reorder_speedup:>9.1}x");

    // ---- Part 2: prepared-plan reuse under forced result misses. ----
    let peers = scaled(4, 8);
    let base = scaled(120, 1500);
    let cfg = CdssConfig::new(peers, vec![peers - 1], base);
    let iters = scaled(30, 200);
    let q = target_query();

    let run = |plan_capacity: usize| -> (f64, u64, f64) {
        let sys = build_system(Topology::Chain, &cfg).expect("topology builds");
        let core = ServiceCore::with_capacities(sys, EngineOptions::default(), 1024, plan_capacity);
        let mut digest = 0u64;
        let t0 = Instant::now();
        for _ in 0..iters {
            // A write-heavy workload keeps evicting results; model that
            // by clearing the result cache so only plans can be reused.
            core.invalidate();
            let resp = core.query(q).expect("query runs");
            digest = result_digest(&resp.output);
        }
        let qps = iters as f64 / t0.elapsed().as_secs_f64();
        (qps, digest, core.stats().plans.hit_rate())
    };
    let (unprepared_qps, unprepared_digest, _) = run(0);
    let (prepared_qps, prepared_digest, plan_hit_rate) = run(256);
    assert_eq!(
        prepared_digest, unprepared_digest,
        "prepared execution must be bit-identical to unprepared"
    );
    assert!(
        plan_hit_rate > 0.0,
        "plan cache must report a nonzero hit rate"
    );
    let prepared_speedup = prepared_qps / unprepared_qps.max(1e-9);

    println!();
    println!(
        "{:>16} {:>16} {:>10} {:>14}",
        "unprepared qps", "prepared qps", "speedup", "plan hit rate"
    );
    println!(
        "{unprepared_qps:>16.1} {prepared_qps:>16.1} {prepared_speedup:>9.2}x {plan_hit_rate:>14.3}"
    );

    if json_output() {
        println!(
            "{{\"fig\": \"plan_bench\", \"rows\": {n}, \"noreorder_s\": {noreorder_s:.6}, \
             \"reorder_s\": {reorder_s:.6}, \"reorder_speedup\": {reorder_speedup:.3}, \
             \"unprepared_qps\": {unprepared_qps:.2}, \"prepared_qps\": {prepared_qps:.2}, \
             \"prepared_speedup\": {prepared_speedup:.3}, \
             \"plan_cache_hit_rate\": {plan_hit_rate:.6}}}"
        );
    }

    if let Ok(min) = std::env::var("PROQL_MIN_REORDER_SPEEDUP") {
        let min: f64 = min.parse().expect("PROQL_MIN_REORDER_SPEEDUP parses");
        assert!(
            reorder_speedup >= min,
            "join-reorder speedup {reorder_speedup:.2}x below the \
             PROQL_MIN_REORDER_SPEEDUP={min} gate"
        );
        println!("   reorder gate passed: {reorder_speedup:.2}x >= {min}x");
    }
}
