//! `obs_bench` — tracing-overhead gate plus wire smoke for the
//! observability surfaces (beyond the paper: the ROADMAP's
//! production-service trajectory).
//!
//! Phase 1 measures the cost of the span layer where it hurts most: the
//! pipelined binary hot path, where every request is a result-cache hit
//! and the per-request work is small enough that instrumentation cannot
//! hide. The same event-loop server is driven through alternating
//! passes with tracing disabled and enabled (best-of-N each, so a noisy
//! neighbor pass cannot fake a regression), and the qps delta is the
//! reported overhead. `PROQL_MAX_TRACE_OVERHEAD=<percent>` gates it in
//! CI.
//!
//! Phase 2 smokes the query-visible surfaces end to end over TCP:
//! `EXPLAIN ANALYZE` must carry per-operator actuals next to the
//! estimates, and a pipelined batch on a fresh connection must
//! reconstruct as one span tree retrievable via the `TRACE` verb — the
//! reply is checked with a real (if minimal) JSON parser, not a grep.
//!
//! `PROQL_JSON=1` emits one machine-readable line.

use proql::engine::EngineOptions;
use proql_bench::{banner, json_output, scaled};
use proql_cdss::topology::{build_system_with_island, CdssConfig, Topology};
use proql_common::trace;
use proql_service::proto::json_str_field;
use proql_service::{serve, BinClient, Client, ServiceCore};
use std::sync::Arc;
use std::time::Instant;

const HOT_QUERIES: [&str; 2] = [
    "FOR [R2a $x] INCLUDE PATH [$x] <-+ [] RETURN $x",
    "FOR [R2a $x] INCLUDE PATH [$x] <-+ [] WHERE $x.k >= 10 RETURN $x",
];

fn main() {
    banner(
        "obs_bench: span-layer overhead and observability wire smoke",
        "beyond the paper; ROADMAP production-service trajectory",
    );

    let workers = env_usize("PROQL_OBS_WORKERS", 2);
    let conns = env_usize("PROQL_OBS_CLIENTS", 4);
    let requests = env_usize("PROQL_OBS_REQUESTS", scaled(150, 600));
    let passes = env_usize("PROQL_OBS_PASSES", 3);

    let sys = build_system_with_island(Topology::Chain, &CdssConfig::new(3, vec![2], 64), 8)
        .expect("topology builds");
    let core = Arc::new(ServiceCore::new(sys, EngineOptions::default()));
    let server = serve(Arc::clone(&core), "127.0.0.1:0", workers).expect("server starts");
    let addr = server.addr();

    // Warm the hot entries so both modes measure the cache-hit path.
    {
        let mut warm = Client::connect(addr).expect("warm client");
        for q in HOT_QUERIES {
            warm.query(q).expect("warm query");
        }
    }

    // Phase 1: alternate disabled/enabled passes against the same warm
    // server; keep the best pass of each mode.
    let mut qps_disabled: f64 = 0.0;
    let mut qps_enabled: f64 = 0.0;
    for _ in 0..passes.max(1) {
        trace::set_enabled(false);
        qps_disabled = qps_disabled.max(measure_pass(addr, conns, requests));
        trace::set_enabled(true);
        qps_enabled = qps_enabled.max(measure_pass(addr, conns, requests));
    }
    let overhead_pct = ((qps_disabled - qps_enabled) / qps_disabled.max(1e-9) * 100.0).max(0.0);

    // Phase 2a: EXPLAIN ANALYZE over the wire carries actuals.
    trace::set_enabled(true);
    let mut smoke = Client::connect(addr).expect("smoke client");
    let analyze = smoke
        .query(&format!("EXPLAIN ANALYZE {}", HOT_QUERIES[0]))
        .expect("analyze query");
    let plan = json_str_field(&analyze, "plan").expect("analyze reply has a plan");
    let analyze_has_actuals = plan.contains("actual");
    assert!(
        analyze_has_actuals,
        "EXPLAIN ANALYZE must annotate actuals: {plan}"
    );
    // Re-running must re-measure, never serve a cached timing.
    let again = smoke
        .query(&format!("EXPLAIN ANALYZE {}", HOT_QUERIES[0]))
        .expect("analyze re-query");
    assert_eq!(
        json_str_field(&again, "cache").as_deref(),
        Some("miss"),
        "EXPLAIN ANALYZE must bypass the result cache: {again}"
    );
    drop(smoke);

    // Phase 2b: a pipelined batch on one fresh connection reconstructs
    // as one span tree, retrievable via TRACE.
    let pipelined = 8usize;
    let mut bin = BinClient::connect(addr).expect("trace client");
    let qs: Vec<&str> = (0..pipelined).map(|i| HOT_QUERIES[i % 2]).collect();
    let answered = bin.pipeline_queries(&qs).expect("pipelined batch");
    assert_eq!(answered.len(), pipelined, "batch answered in full");
    // Only after every response is drained are all request spans
    // recorded; a TRACE raced against in-flight work could miss some.
    let traces = bin.trace(4).expect("TRACE verb");
    let trace_json_wellformed = json_is_wellformed(&traces);
    assert!(trace_json_wellformed, "TRACE reply must parse: {traces}");
    let trace_request_spans = first_trace(&traces)
        .matches("\"name\": \"request\"")
        .count();
    assert!(
        trace_request_spans >= pipelined,
        "the batch must land in one span tree ({trace_request_spans} request spans in the most \
         recent trace, want >= {pipelined}): {traces}"
    );
    drop(bin);
    server.shutdown();

    println!(
        "{:>10} {:>12} {:>14} {:>13} {:>12}",
        "clients", "requests", "qps disabled", "qps enabled", "overhead"
    );
    println!(
        "{:>10} {:>12} {:>14.1} {:>13.1} {:>11.1}%",
        conns,
        conns * requests,
        qps_disabled,
        qps_enabled,
        overhead_pct
    );
    println!("   EXPLAIN ANALYZE over the wire: actuals present, result cache bypassed");
    println!(
        "   TRACE over the wire: {trace_request_spans} request spans in one tree \
         (pipelined batch of {pipelined}), JSON well-formed"
    );

    if json_output() {
        println!(
            "{{\"fig\": \"obs_bench\", \"clients\": {conns}, \"requests\": {}, \
             \"qps_disabled\": {qps_disabled:.1}, \"qps_enabled\": {qps_enabled:.1}, \
             \"overhead_pct\": {overhead_pct:.2}, \
             \"analyze_has_actuals\": {analyze_has_actuals}, \
             \"trace_json_wellformed\": {trace_json_wellformed}, \
             \"trace_request_spans\": {trace_request_spans}}}",
            conns * requests,
        );
    }

    if let Ok(max) = std::env::var("PROQL_MAX_TRACE_OVERHEAD") {
        let max: f64 = max.parse().expect("PROQL_MAX_TRACE_OVERHEAD parses");
        assert!(
            overhead_pct <= max,
            "tracing overhead {overhead_pct:.2}% above the PROQL_MAX_TRACE_OVERHEAD={max} gate \
             ({qps_disabled:.1} qps disabled vs {qps_enabled:.1} qps enabled)"
        );
        println!("   overhead gate passed: {overhead_pct:.2}% <= {max}%");
    }
}

/// One throughput pass: `conns` client threads, each pipelining
/// `requests` hot queries in binary batches of 16.
fn measure_pass(addr: std::net::SocketAddr, conns: usize, requests: usize) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..conns {
            s.spawn(move || {
                let mut client = BinClient::connect(addr).expect("client connects");
                let mut done = 0usize;
                while done < requests {
                    let batch = (requests - done).min(16);
                    let qs: Vec<&str> = (0..batch)
                        .map(|i| HOT_QUERIES[(c + done + i) % 2])
                        .collect();
                    let payloads = client.pipeline_queries(&qs).expect("pipelined batch");
                    assert_eq!(payloads.len(), batch, "batch answered in full");
                    done += batch;
                }
            });
        }
    });
    (conns * requests) as f64 / t0.elapsed().as_secs_f64()
}

/// The first (most recent) trace object of a `TRACE` reply, so span
/// counts are not inflated by older traces in the same payload.
fn first_trace(traces: &str) -> &str {
    let Some(start) = traces.find("\"trace_id\"") else {
        return traces;
    };
    match traces[start + 1..].find("\"trace_id\"") {
        Some(next) => &traces[start..start + 1 + next],
        None => &traces[start..],
    }
}

/// Minimal recursive-descent JSON validity check (the workspace has no
/// serde): accepts exactly one value plus trailing whitespace.
fn json_is_wellformed(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let ok = json_value(bytes, &mut pos);
    skip_ws(bytes, &mut pos);
    ok && pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn json_value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => json_seq(b, pos, b'}', true),
        Some(b'[') => json_seq(b, pos, b']', false),
        Some(b'"') => json_string(b, pos),
        Some(b't') => json_lit(b, pos, b"true"),
        Some(b'f') => json_lit(b, pos, b"false"),
        Some(b'n') => json_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => json_number(b, pos),
        _ => false,
    }
}

/// Object (`close`=`}`; members are `"key": value`) or array bodies.
fn json_seq(b: &[u8], pos: &mut usize, close: u8, keyed: bool) -> bool {
    *pos += 1; // opener
    skip_ws(b, pos);
    if b.get(*pos) == Some(&close) {
        *pos += 1;
        return true;
    }
    loop {
        if keyed {
            skip_ws(b, pos);
            if !json_string(b, pos) {
                return false;
            }
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return false;
            }
            *pos += 1;
        }
        if !json_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(c) if *c == close => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn json_string(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) != Some(&b'"') {
        return false;
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return true,
            b'\\' => *pos += 1, // escape: skip the escaped byte
            _ => {}
        }
    }
    false
}

fn json_number(b: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    while let Some(&c) = b.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    *pos > start
}

fn json_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
