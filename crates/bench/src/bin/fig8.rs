//! Figure 8 — chain of 20 peers, varying the number of peers **with local
//! data**. Expected shape: unfolded rules and both time components grow
//! exponentially with the number of data peers.

use proql::engine::EngineOptions;
use proql_bench::{banner, build_timed, measure_target_query, scaled};
use proql_cdss::topology::{CdssConfig, Topology};

fn main() {
    banner(
        "Figure 8: chain of 20 peers, varying number of peers with data",
        "unfolded rules / times vs #data peers (exponential)",
    );
    let peers = scaled(12, 20);
    let base = scaled(100, 1000);
    let max_data = scaled(4, 8);
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>10}",
        "data", "rules", "unfold (s)", "eval (s)", "bindings"
    );
    for k in 1..=max_data {
        let cfg = CdssConfig::upstream_data(peers, k, base);
        let (sys, _) = build_timed(Topology::Chain, &cfg);
        let m = measure_target_query(&sys, EngineOptions::default());
        println!(
            "{:>10} {:>12} {:>14.4} {:>14.4} {:>10}",
            k, m.rules, m.unfold_s, m.eval_s, m.bindings
        );
    }
}
