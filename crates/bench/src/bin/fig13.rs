//! Figure 13 — ASR types × lengths on a **branched** topology of 20 peers,
//! 4 with data. Expected shape: complete-path and prefix ASRs that cross
//! branch boundaries help fewer rules; subpath and suffix ASRs keep their
//! benefit at greater lengths.

use proql_bench::{asr_sweep, banner, scaled};
use proql_cdss::topology::{CdssConfig, Topology};

fn main() {
    banner(
        "Figure 13: ASR types × lengths, branched topology of 20 peers",
        "branching favors subpath/suffix ASRs at greater lengths",
    );
    let peers = scaled(12, 20);
    let base = scaled(2_000, 50_000);
    let lengths: Vec<usize> = if proql_bench::full_scale() {
        (2..=10).collect()
    } else {
        vec![2, 3, 4, 6]
    };
    let data = vec![peers - 1, peers - 2, peers - 3, peers - 4];
    asr_sweep(
        Topology::Branched,
        &CdssConfig::new(peers, data, base),
        &lengths,
    );
}
