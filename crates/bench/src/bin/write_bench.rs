//! `write_bench` — write-publish latency and mixed read/write throughput
//! (beyond the paper: the ROADMAP's write-heavy-traffic trajectory).
//!
//! Builds a large multi-family database (many independent mapping
//! islands, so point writes touch a small fraction of the relations) and
//! measures the **write-publish latency**: clone the system, apply a
//! point write (local insert + exchange), wrap the result in a fresh
//! engine, and run the first graph-strategy query after the write —
//! exactly what the query service does per write.
//!
//! Two paths are compared on identical write sequences:
//!
//! * **baseline** — the pre-delta write path: O(database) deep clone,
//!   full exchange bootstrap, from-scratch `ProvGraph` rebuild;
//! * **delta** — the shared-structure write path: O(#relations) CoW
//!   clone, incremental (seeded) exchange, adopted graph patched by the
//!   write's `GraphDelta`.
//!
//! Query digests are asserted bit-identical between the paths after
//! every write, and the delta-maintained graph digest is checked against
//! a from-scratch rebuild. A mixed phase then drives a `ServiceCore`
//! with concurrent readers and a point-writer, reporting read
//! throughput and write p50/p95. `PROQL_JSON=1` emits one
//! machine-readable line; `PROQL_MIN_WRITE_SPEEDUP=<x>` gates the run.

use proql::engine::{Engine, EngineOptions, Strategy};
use proql_bench::{banner, json_output, percentile, scaled};
use proql_common::{tup, Schema, Tuple, Value, ValueType};
use proql_provgraph::{ProvGraph, ProvenanceSystem};
use proql_service::{result_digest, ServiceCore};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Independent mapping families `In{f} → Mid{f}`, `In{f} ⋈ Mid{f} → Out{f}`
/// (the last one materializes `P_mo{f}`); a point write into one family
/// leaves every other family's tables untouched.
fn build_families(families: usize, rows: usize) -> ProvenanceSystem {
    let mut sys = ProvenanceSystem::new();
    for f in 0..families {
        for prefix in ["In", "Mid"] {
            sys.add_relation_with_local(
                Schema::build(
                    &format!("{prefix}{f}"),
                    &[("k", ValueType::Int), ("v", ValueType::Int)],
                    &[0],
                )
                .unwrap(),
            )
            .unwrap();
        }
        sys.add_relation_with_local(
            Schema::build(
                &format!("Out{f}"),
                &[
                    ("k", ValueType::Int),
                    ("a", ValueType::Int),
                    ("b", ValueType::Int),
                ],
                &[0],
            )
            .unwrap(),
        )
        .unwrap();
        sys.add_mapping_text(&format!("mm{f}: Mid{f}(k, v) :- In{f}(k, v)"))
            .unwrap();
        sys.add_mapping_text(&format!(
            "mo{f}: Out{f}(k, a, b) :- In{f}(k, a), Mid{f}(k, b)"
        ))
        .unwrap();
    }
    for f in 0..families {
        for k in 0..rows {
            sys.insert_local(
                &format!("In{f}"),
                Tuple::new(vec![Value::Int(k as i64), Value::Int((k * 3 + f) as i64)]),
            )
            .unwrap();
        }
    }
    sys.run_exchange().unwrap();
    sys
}

fn graph_options() -> EngineOptions {
    EngineOptions {
        strategy: Strategy::Graph,
        ..EngineOptions::default()
    }
}

fn main() {
    banner(
        "write_bench: delta write path vs full-rebuild baseline",
        "beyond the paper; ROADMAP write-heavy-traffic trajectory",
    );

    let families = scaled(24, 48);
    let rows = scaled(150, 1000);
    let writes = scaled(24, 120);
    let sys = build_families(families, rows);
    let total_rows = sys.db.total_rows();
    println!(
        "   {} families × {} rows: {} total rows, {} provenance rows",
        families,
        rows,
        total_rows,
        sys.provenance_rows()
    );

    // The query the service would run first after each write (graph
    // strategy forces the provenance graph to be current).
    let query_for = |f: usize| format!("FOR [Out{f} $x] INCLUDE PATH [$x] <-+ [] RETURN $x");

    // ---- Baseline: deep clone + full exchange + from-scratch rebuild.
    let mut baseline_ms: Vec<f64> = Vec::with_capacity(writes);
    let mut baseline_digests: Vec<u64> = Vec::with_capacity(writes);
    let mut engine = Engine::with_options(sys.clone(), graph_options());
    engine.graph().expect("warm graph");
    for w in 0..writes {
        let f = w % families;
        let k = (rows + w) as i64;
        let t0 = Instant::now();
        let mut next = engine.sys.deep_clone();
        // Break the delta chain + fixpoint marker: the old write path had
        // neither, so it paid the full bootstrap and the full rebuild.
        next.bump_version();
        next.insert_local(&format!("In{f}"), tup![k, k * 3])
            .unwrap();
        next.bump_version();
        next.run_exchange().unwrap();
        let fresh = Engine::with_options(next, graph_options());
        let out = fresh.query(&query_for(f)).expect("baseline query");
        baseline_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        baseline_digests.push(result_digest(&out));
        engine = fresh;
    }

    // ---- Delta path: CoW clone + seeded exchange + adopted graph patch.
    let mut delta_ms: Vec<f64> = Vec::with_capacity(writes);
    let mut engine = Engine::with_options(sys.clone(), graph_options());
    engine.graph().expect("warm graph");
    let mut patches = 0u64;
    for (w, &baseline_digest) in baseline_digests.iter().enumerate() {
        let f = w % families;
        let k = (rows + w) as i64;
        let t0 = Instant::now();
        let mut next = engine.sys.clone();
        next.insert_local(&format!("In{f}"), tup![k, k * 3])
            .unwrap();
        next.run_exchange().unwrap();
        let fresh = Engine::with_options(next, graph_options());
        fresh.adopt_graph_cache(&engine);
        let out = fresh.query(&query_for(f)).expect("delta query");
        delta_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            result_digest(&out),
            baseline_digest,
            "write {w}: delta path diverged from the full-rebuild baseline"
        );
        patches += fresh.graph_patch_count();
        engine = fresh;
    }
    assert!(
        patches as usize >= writes,
        "every delta write must patch, not rebuild (patches={patches})"
    );
    // The delta-maintained graph is content-identical to a rebuild.
    let digest_match = engine.graph().expect("final graph").digest()
        == ProvGraph::from_system(&engine.sys)
            .expect("rebuild")
            .digest();
    assert!(digest_match, "final graph digest must match a rebuild");

    baseline_ms.sort_by(|a, b| a.total_cmp(b));
    delta_ms.sort_by(|a, b| a.total_cmp(b));
    let (b50, b95) = (
        percentile(&baseline_ms, 0.5),
        percentile(&baseline_ms, 0.95),
    );
    let (d50, d95) = (percentile(&delta_ms, 0.5), percentile(&delta_ms, 0.95));
    let speedup = b50 / d50.max(1e-9);

    println!();
    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "path", "p50 (ms)", "p95 (ms)", "writes"
    );
    println!(
        "{:>12} {:>14.3} {:>14.3} {:>10}",
        "baseline", b50, b95, writes
    );
    println!("{:>12} {:>14.3} {:>14.3} {:>10}", "delta", d50, d95, writes);
    println!("   write-publish speedup (p50): {speedup:.1}x; digests bit-identical");

    // ---- Mixed read/write phase over the service: a writer applies a
    // fixed budget of point writes while readers hammer a hot query set
    // until the writer finishes.
    let readers = 3usize;
    let mixed_writes = scaled(30, 150);
    let core = Arc::new(ServiceCore::new(sys, EngineOptions::default()));
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let mut write_ms: Vec<f64> = Vec::new();
    let mut total_reads = 0usize;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for r in 0..readers {
            let core = Arc::clone(&core);
            let stop = Arc::clone(&stop);
            handles.push(s.spawn(move || {
                let mut reads = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let f = (r * 7 + reads) % 8; // a hot subset of families
                    core.query(&format!(
                        "FOR [Out{f} $x] INCLUDE PATH [$x] <-+ [] RETURN $x"
                    ))
                    .expect("read");
                    reads += 1;
                }
                reads
            }));
        }
        let writer = {
            let core = Arc::clone(&core);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut lat = Vec::with_capacity(mixed_writes);
                for w in 0..mixed_writes {
                    let k = 10 * rows as i64 + w as i64;
                    let f = w % 8;
                    let t = Instant::now();
                    core.insert_and_exchange(&format!("In{f}"), tup![k, k])
                        .expect("write");
                    lat.push(t.elapsed().as_secs_f64() * 1e3);
                }
                stop.store(true, Ordering::Relaxed);
                lat
            })
        };
        write_ms = writer.join().expect("writer");
        for h in handles {
            total_reads += h.join().expect("reader");
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let qps = total_reads as f64 / wall_s;
    write_ms.sort_by(|a, b| a.total_cmp(b));
    let (w50, w95) = (percentile(&write_ms, 0.5), percentile(&write_ms, 0.95));
    println!();
    println!(
        "   mixed phase: {qps:.0} reads/s with {} concurrent point writes \
         (write p50 {w50:.3} ms, p95 {w95:.3} ms)",
        write_ms.len()
    );

    if json_output() {
        println!(
            "{{\"fig\": \"write_bench\", \"families\": {families}, \"rows\": {rows}, \
             \"total_rows\": {total_rows}, \"writes\": {writes}, \
             \"baseline_p50_ms\": {b50:.4}, \"baseline_p95_ms\": {b95:.4}, \
             \"delta_p50_ms\": {d50:.4}, \"delta_p95_ms\": {d95:.4}, \
             \"write_speedup\": {speedup:.2}, \"digest_match\": {digest_match}, \
             \"mixed_read_qps\": {qps:.1}, \"mixed_writes\": {}, \
             \"mixed_write_p50_ms\": {w50:.4}, \"mixed_write_p95_ms\": {w95:.4}}}",
            write_ms.len()
        );
    }

    if let Ok(min) = std::env::var("PROQL_MIN_WRITE_SPEEDUP") {
        let min: f64 = min.parse().expect("PROQL_MIN_WRITE_SPEEDUP parses");
        assert!(
            speedup >= min,
            "write-publish speedup {speedup:.2}x below the \
             PROQL_MIN_WRITE_SPEEDUP={min} gate"
        );
        println!("   write-speedup gate passed: {speedup:.1}x >= {min}x");
    }
}
