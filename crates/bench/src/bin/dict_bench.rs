//! `dict_bench` — dictionary-encoded string columns on the batch hot path.
//!
//! Three workloads where interned `u32` codes replace per-row string work:
//!
//! * **selective filter** — an equality predicate over a string column
//!   whose values share a long common prefix (the worst case for string
//!   compares, the common case for provenance relation/mapping names):
//!   dictionary execution compares codes, one dictionary lookup total.
//! * **string-key join** — a hash join on a near-unique string key:
//!   dictionary execution hashes 4-byte codes and bridges the two tables'
//!   dictionaries with one precomputed translation table instead of
//!   hashing every string on both sides.
//! * **snapshot transfer** — the replication snapshot wire format ships
//!   each table's distinct strings once and 4-byte code references per
//!   row; reported as encoded bytes vs the inline-string layout.
//!
//! Results are asserted bit-identical between the two encodings (same
//! rows, same order). `PROQL_JSON=1` emits one machine-readable line and
//! `PROQL_MIN_DICT_SPEEDUP` gates the combined filter+join speedup.

use proql_bench::{banner, json_output, scaled};
use proql_common::{tup, Schema, Tuple, Value, ValueType};
use proql_provgraph::encode::wire::encode_snapshot_parts;
use proql_storage::optimize::optimize_with;
use proql_storage::{execute_batch, Database, Expr, Plan};
use std::time::Instant;

/// Strings in the shape provenance names take: a long shared prefix plus a
/// short distinguishing tail.
fn tag(i: usize) -> String {
    format!(
        "provenance-relation-shared-prefix-{}-{i:06}",
        "padding-".repeat(12)
    )
}

fn build(dict: bool, n: usize, m: usize, pool: usize) -> Database {
    let mut db = Database::new();
    db.set_dict_encoding(dict);
    db.create_table(
        Schema::build(
            "R",
            &[
                ("id", ValueType::Int),
                ("tag", ValueType::Str),
                ("key", ValueType::Str),
                ("w", ValueType::Int),
            ],
            &[0],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        Schema::build(
            "Q",
            &[
                ("qid", ValueType::Int),
                ("key", ValueType::Str),
                ("grp", ValueType::Int),
            ],
            &[0],
        )
        .unwrap(),
    )
    .unwrap();
    // `tag` repeats heavily (pool-sized dictionary); `key` repeats 8x, so
    // the join's dictionary translation amortizes over the repeats.
    for i in 0..n {
        db.insert(
            "R",
            tup![
                i as i64,
                tag((i * 31) % pool),
                tag(1_000_000 + i % (n / 8)),
                (i % 97) as i64
            ],
        )
        .unwrap();
    }
    // Every Q key hits 8 R rows, so the join output is 8*m rows.
    for j in 0..m {
        db.insert("Q", tup![j as i64, tag(1_000_000 + j), (j % 7) as i64])
            .unwrap();
    }
    db
}

/// Best-of-5 wall time plus the result rows (for identity assertions).
fn time_plan(db: &Database, p: &Plan) -> (f64, Vec<Tuple>) {
    let mut best = f64::INFINITY;
    let mut rows = Vec::new();
    for _ in 0..5 {
        let t0 = Instant::now();
        let batch = execute_batch(db, p).expect("plan executes");
        best = best.min(t0.elapsed().as_secs_f64());
        rows = batch.to_rows();
    }
    (best, rows)
}

/// Exact byte size of the pre-v2 inline-string snapshot layout, computed
/// from the same tables the v2 encoder sees.
fn inline_snapshot_bytes(tables: &[(String, Vec<Tuple>)]) -> usize {
    let value_size = |v: &Value| match v {
        Value::Null => 1,
        Value::Bool(_) => 2,
        Value::Int(_) | Value::Float(_) => 9,
        Value::Str(s) => 1 + 4 + s.len(),
    };
    let mut size = 1 + 8 + 8 + 8 + 4; // header + table count
    for (name, rows) in tables {
        size += 4 + name.len() + 4;
        for row in rows {
            size += 4 + row.values().iter().map(value_size).sum::<usize>();
        }
    }
    size
}

fn main() {
    banner(
        "dict_bench: dictionary-encoded columns on the batch hot path",
        "beyond the paper; ROADMAP columnar-encoding trajectory",
    );

    let n = scaled(40_000, 400_000);
    let m = n / 8;
    let pool = 64;
    let db_on = build(true, n, m, pool);
    let db_off = build(false, n, m, pool);

    // ---- Selective string filter (1/pool of the rows survive). ----
    // Executed unoptimized on purpose: the optimizer's index-conversion
    // pass would rewrite this `Filter(Scan)` into an `IndexLookup` (a
    // row-path filtered scan), and this workload measures the *batch*
    // filter — code-keyed comparison over the dictionary column.
    let filter = Plan::scan("R").filter(Expr::col(1).eq(Expr::lit(tag(7))));
    let (filter_on_s, rows_on) = time_plan(&db_on, &filter);
    let (filter_off_s, rows_off) = time_plan(&db_off, &filter);
    assert_eq!(rows_on, rows_off, "filter results must be bit-identical");
    assert!(!rows_on.is_empty(), "filter must select something");
    let filter_speedup = filter_off_s / filter_on_s.max(1e-9);

    // ---- String-key hash join (near-unique keys, ~m output rows). ----
    let join = Plan::scan("R").join(Plan::scan("Q"), vec![2], vec![1]);
    let join_on = optimize_with(&db_on, join.clone());
    let join_off = optimize_with(&db_off, join);
    let (join_on_s, jrows_on) = time_plan(&db_on, &join_on);
    let (join_off_s, jrows_off) = time_plan(&db_off, &join_off);
    assert_eq!(jrows_on, jrows_off, "join results must be bit-identical");
    assert_eq!(jrows_on.len(), 8 * m, "every Q key matches 8 R rows");
    let join_speedup = join_off_s / join_on_s.max(1e-9);

    let speedup = (filter_off_s + join_off_s) / (filter_on_s + join_on_s).max(1e-9);

    println!(
        "{:>10} {:>14} {:>14} {:>10}",
        "workload", "plain (s)", "dict (s)", "speedup"
    );
    println!(
        "{:>10} {filter_off_s:>14.4} {filter_on_s:>14.4} {filter_speedup:>9.1}x",
        "filter"
    );
    println!(
        "{:>10} {join_off_s:>14.4} {join_on_s:>14.4} {join_speedup:>9.1}x",
        "join"
    );
    println!(
        "{:>10} {:>14.4} {:>14.4} {speedup:>9.1}x",
        "combined",
        filter_off_s + join_off_s,
        filter_on_s + join_on_s
    );

    // ---- Snapshot transfer bytes: v2 dictionary wire vs inline. ----
    let tables: Vec<(String, Vec<Tuple>)> = vec![
        ("R".into(), db_on.table("R").unwrap().scan()),
        ("Q".into(), db_on.table("Q").unwrap().scan()),
    ];
    let wire_bytes = encode_snapshot_parts(1, 0, 0, &tables).len();
    let inline_bytes = inline_snapshot_bytes(&tables);
    assert!(
        wire_bytes < inline_bytes,
        "dictionary snapshot ({wire_bytes} B) must beat inline ({inline_bytes} B)"
    );
    let byte_ratio = inline_bytes as f64 / wire_bytes as f64;
    println!();
    println!(
        "snapshot transfer: {wire_bytes} B dictionary-encoded vs {inline_bytes} B inline \
         ({byte_ratio:.2}x smaller)"
    );

    if json_output() {
        println!(
            "{{\"fig\": \"dict_bench\", \"rows\": {n}, \"filter_plain_s\": {filter_off_s:.6}, \
             \"filter_dict_s\": {filter_on_s:.6}, \"filter_speedup\": {filter_speedup:.3}, \
             \"join_plain_s\": {join_off_s:.6}, \"join_dict_s\": {join_on_s:.6}, \
             \"join_speedup\": {join_speedup:.3}, \"speedup\": {speedup:.3}, \
             \"snapshot_wire_bytes\": {wire_bytes}, \"snapshot_inline_bytes\": {inline_bytes}, \
             \"snapshot_byte_ratio\": {byte_ratio:.3}}}"
        );
    }

    if let Ok(min) = std::env::var("PROQL_MIN_DICT_SPEEDUP") {
        let min: f64 = min.parse().expect("PROQL_MIN_DICT_SPEEDUP parses");
        assert!(
            speedup >= min,
            "dictionary speedup {speedup:.2}x below the PROQL_MIN_DICT_SPEEDUP={min} gate"
        );
        println!("   dict gate passed: {speedup:.2}x >= {min}x");
    }
}
