//! `scale_bench` — scale-out reads: delta-streaming replicas and
//! hash-sharded scatter-gather routing, measured across real processes
//! (beyond the paper: the ROADMAP's production-service trajectory).
//!
//! The orchestrator hosts the primary in-process and re-executes its
//! own binary (`--replica-node` / `--shard-node`) to spawn follower and
//! shard processes, each serving the binary wire protocol on its own
//! loopback port. Phases:
//!
//! 1. **Single-node baseline**: client threads replay family-local hot
//!    queries against the primary alone.
//! 2. **Replicated reads**: N replica processes subscribe to the
//!    primary's delta stream; the same client load fans across primary
//!    plus replicas while a writer applies touching deletes on the
//!    primary. Aggregate read qps vs the baseline is the scale-out
//!    ratio (`PROQL_MIN_SCALEOUT` gates it in CI — on a single-core
//!    host the processes share one CPU and the ratio is honest but
//!    meaningless, so the gate stays off locally).
//! 3. **Convergence + digest identity**: after the writes quiesce,
//!    every replica must reach the primary's version and answer every
//!    hot query with the digest of a from-scratch serial recomputation
//!    (`INVALIDATE` on the primary, then compare). Replica apply-lag
//!    p99 comes from each replica's own `STATS` histogram and is gated
//!    by `PROQL_MAX_REPLICA_LAG_MS`.
//! 4. **Broken-chain recovery**: the primary runs with a deliberately
//!    tiny delta log, so a replica joining after the write burst finds
//!    the chain trimmed past its version — the stream must fall back
//!    to a full snapshot transfer (counted on both ends, never silent)
//!    and still converge to digest identity.
//! 5. **Sharded reads**: shard processes each load only the relation
//!    families they own (same deterministic `ShardMap` on every node);
//!    routers in the client threads forward each family-local query to
//!    its owning shard with zero fan-out. Aggregate routed qps vs a
//!    fat single node holding all families is the shard ratio, and
//!    every routed answer must be digest-identical to the fat node's.
//!
//! `PROQL_JSON=1` emits one machine-readable line.

use proql::engine::EngineOptions;
use proql_bench::{banner, json_output, scaled};
use proql_common::{tup, Schema, Tuple, Value, ValueType};
use proql_provgraph::ProvenanceSystem;
use proql_service::proto::{json_f64_field, json_str_field, json_u64_field};
use proql_service::{
    handle_line, result_digest, serve, start_replica, Client, ReplicaConfig, RetryPolicy, Router,
    ServiceCore, ShardMap,
};
use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Delta-log retention on every node in this bench: small enough that
/// the post-burst late joiner *must* take the snapshot path.
const DELTA_LOG_CAP: usize = 8;

/// Independent mapping families `In{f} → Mid{f}`, `In{f} ⋈ Mid{f} →
/// Out{f}` (as in `write_bench`), loading data only for the families
/// `keep` accepts — the schema (and therefore the shard map) is
/// identical on every node, the data is partitioned.
fn build_families_filtered(
    families: usize,
    rows: usize,
    keep: impl Fn(usize) -> bool,
) -> ProvenanceSystem {
    let mut sys = ProvenanceSystem::new();
    for f in 0..families {
        for prefix in ["In", "Mid"] {
            sys.add_relation_with_local(
                Schema::build(
                    &format!("{prefix}{f}"),
                    &[("k", ValueType::Int), ("v", ValueType::Int)],
                    &[0],
                )
                .unwrap(),
            )
            .unwrap();
        }
        sys.add_relation_with_local(
            Schema::build(
                &format!("Out{f}"),
                &[
                    ("k", ValueType::Int),
                    ("a", ValueType::Int),
                    ("b", ValueType::Int),
                ],
                &[0],
            )
            .unwrap(),
        )
        .unwrap();
        sys.add_mapping_text(&format!("mm{f}: Mid{f}(k, v) :- In{f}(k, v)"))
            .unwrap();
        sys.add_mapping_text(&format!(
            "mo{f}: Out{f}(k, a, b) :- In{f}(k, a), Mid{f}(k, b)"
        ))
        .unwrap();
    }
    for f in (0..families).filter(|f| keep(*f)) {
        for k in 0..rows {
            sys.insert_local(
                &format!("In{f}"),
                Tuple::new(vec![Value::Int(k as i64), Value::Int((k * 3 + f) as i64)]),
            )
            .unwrap();
        }
    }
    sys.run_exchange().unwrap();
    sys
}

fn build_families(families: usize, rows: usize) -> ProvenanceSystem {
    build_families_filtered(families, rows, |_| true)
}

/// The shard map every node derives independently: families are
/// canonical-named by their `In{f}` relation (it sorts first), and the
/// family index modulo the shard count places it — deterministic and
/// perfectly balanced for this bench's synthetic schema.
fn scale_shard_map(schema: &ProvenanceSystem, shards: usize) -> ShardMap {
    ShardMap::from_system_with(schema, shards, |canonical| {
        let digits: String = canonical.chars().filter(|c| c.is_ascii_digit()).collect();
        digits.parse::<usize>().unwrap_or(0) % shards
    })
}

fn hot_query(family: usize) -> String {
    format!("FOR [Out{family} $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
}

// ---------------------------------------------------------------------------
// Child-node modes: this binary re-executes itself for each node role.
// ---------------------------------------------------------------------------

/// `--replica-node <primary_addr> <families> <rows>`: build the same
/// seed system, serve it, follow the primary, and park until killed.
fn replica_node(args: &[String]) -> ! {
    let primary: SocketAddr = args[0].parse().expect("primary addr");
    let families: usize = args[1].parse().expect("families");
    let rows: usize = args[2].parse().expect("rows");
    let mut sys = build_families(families, rows);
    sys.set_delta_log_capacity(DELTA_LOG_CAP);
    let core = Arc::new(ServiceCore::new(sys, EngineOptions::default()));
    let server = serve(Arc::clone(&core), "127.0.0.1:0", 2).expect("replica serves");
    let _stream = start_replica(core, primary, ReplicaConfig::default());
    println!("READY {}", server.addr());
    std::io::stdout().flush().expect("flush READY");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// `--shard-node <idx> <shards> <families> <rows>`: full schema, data
/// only for owned families, serve, park until killed.
fn shard_node(args: &[String]) -> ! {
    let idx: usize = args[0].parse().expect("shard idx");
    let shards: usize = args[1].parse().expect("shards");
    let families: usize = args[2].parse().expect("families");
    let rows: usize = args[3].parse().expect("rows");
    let sys = build_families_filtered(families, rows, |f| f % shards == idx);
    let core = Arc::new(ServiceCore::new(sys, EngineOptions::default()));
    let server = serve(core, "127.0.0.1:0", 2).expect("shard serves");
    println!("READY {}", server.addr());
    std::io::stdout().flush().expect("flush READY");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// A spawned node process; killed on drop so a panicking orchestrator
/// never leaks children.
struct ChildNode {
    child: Child,
    addr: SocketAddr,
}

impl ChildNode {
    fn spawn(mode: &str, args: &[String]) -> ChildNode {
        let exe = std::env::current_exe().expect("current exe");
        let mut child = Command::new(exe)
            .arg(mode)
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn child node");
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read READY");
        let addr = line
            .trim()
            .strip_prefix("READY ")
            .unwrap_or_else(|| panic!("child spoke {line:?}, expected READY <addr>"))
            .parse()
            .expect("child addr");
        ChildNode { child, addr }
    }
}

impl Drop for ChildNode {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

// ---------------------------------------------------------------------------
// Orchestrator helpers
// ---------------------------------------------------------------------------

fn stats_of(addr: SocketAddr) -> String {
    let mut c = Client::connect(addr).expect("stats client");
    c.stats().expect("stats")
}

/// Poll a node's `STATS` until its published version reaches `target`.
fn wait_node_version(addr: SocketAddr, target: u64, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if json_u64_field(&stats_of(addr), "version").unwrap_or(0) >= target {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Aggregate read throughput: `clients_per` threads per endpoint, each
/// replaying the hot set against its endpoint. Returns qps.
fn read_load(addrs: &[SocketAddr], clients_per: usize, requests: usize, hot: &[String]) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for &addr in addrs {
            for c in 0..clients_per {
                let hot = &hot;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("load client");
                    for r in 0..requests {
                        let json = client.query(&hot[(c + r) % hot.len()]).expect("query");
                        assert!(
                            json_u64_field(&json, "version").is_some(),
                            "bad reply {json}"
                        );
                    }
                });
            }
        }
    });
    (addrs.len() * clients_per * requests) as f64 / t0.elapsed().as_secs_f64()
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    match argv.get(1).map(String::as_str) {
        Some("--replica-node") => replica_node(&argv[2..]),
        Some("--shard-node") => shard_node(&argv[2..]),
        _ => {}
    }

    banner(
        "scale_bench: replicated and sharded read scale-out across processes",
        "beyond the paper; ROADMAP production-service trajectory",
    );
    std::env::set_var("PROQL_TRACE", "0");
    proql_common::trace::set_enabled(false);

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let replicas = env_usize("PROQL_SCALE_REPLICAS", 2);
    let shards = env_usize("PROQL_SCALE_SHARDS", 2);
    let families = env_usize("PROQL_SCALE_FAMILIES", 4);
    let rows = env_usize("PROQL_SCALE_ROWS", scaled(48, 200));
    let clients_per = env_usize("PROQL_SCALE_CLIENTS", 2);
    let requests = env_usize("PROQL_SCALE_REQUESTS", scaled(40, 200));
    let write_rounds = env_usize("PROQL_SCALE_WRITES", scaled(12, 24)).min(rows.saturating_sub(4));
    let hot: Vec<String> = (0..families).map(hot_query).collect();
    println!("   detected CPUs: {cpus} (scale-out ratios need >1 to mean anything)");

    // Primary: in-process, tiny delta log (phase 4 relies on trimming).
    let mut sys = build_families(families, rows);
    sys.set_delta_log_capacity(DELTA_LOG_CAP);
    let primary = Arc::new(ServiceCore::new(sys, EngineOptions::default()));
    let server = serve(
        Arc::clone(&primary),
        "127.0.0.1:0",
        clients_per * (replicas + 1) + 2,
    )
    .expect("primary serves");
    let primary_addr = server.addr();

    // Phase 1: single-node baseline (warmed).
    for q in &hot {
        primary.query(q).expect("warm");
    }
    let single_qps = read_load(&[primary_addr], clients_per, requests, &hot);
    println!("   single-node baseline: {single_qps:.1} qps");

    // Phase 2: replicated reads under touching writes.
    let fam_args = vec![
        primary_addr.to_string(),
        families.to_string(),
        rows.to_string(),
    ];
    let replica_nodes: Vec<ChildNode> = (0..replicas)
        .map(|_| ChildNode::spawn("--replica-node", &fam_args))
        .collect();
    for node in &replica_nodes {
        assert!(
            wait_node_version(node.addr, primary.version(), Duration::from_secs(60)),
            "replica {} never joined the stream",
            node.addr
        );
    }
    let mut endpoints = vec![primary_addr];
    endpoints.extend(replica_nodes.iter().map(|n| n.addr));
    let (replicated_qps, writes_applied) = std::thread::scope(|s| {
        let primary = &primary;
        let writer = s.spawn(move || {
            let mut applied = 0u64;
            for k in 0..write_rounds {
                primary
                    .delete("In0", &tup![k as i64])
                    .expect("touching delete");
                applied += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            applied
        });
        let qps = read_load(&endpoints, clients_per, requests, &hot);
        (qps, writer.join().expect("writer"))
    });
    let replica_speedup = replicated_qps / single_qps.max(1e-9);
    println!(
        "   replicated ({} endpoints, {writes_applied} touching writes): \
         {replicated_qps:.1} qps ({replica_speedup:.2}x)",
        endpoints.len()
    );

    // Phase 3: convergence, digest identity vs serial recompute, lag.
    let target = primary.version();
    for node in &replica_nodes {
        assert!(
            wait_node_version(node.addr, target, Duration::from_secs(60)),
            "replica {} never converged to v{target}",
            node.addr
        );
    }
    // Serial mirror: drop every cached answer on the primary and
    // recompute each hot query from scratch at the converged version.
    assert!(handle_line(&primary, "INVALIDATE").starts_with("OK "));
    let serial: Vec<(String, u64, String)> = hot
        .iter()
        .map(|q| {
            let resp = primary.query(q).expect("serial recompute");
            assert!(!resp.cache_hit, "INVALIDATE must force a recompute");
            (
                q.clone(),
                resp.version,
                result_digest(&resp.output).to_string(),
            )
        })
        .collect();
    let mut digest_identity = true;
    let mut lag_p99_max: f64 = 0.0;
    let mut deltas_applied_total = 0u64;
    for node in &replica_nodes {
        let mut c = Client::connect(node.addr).expect("replica client");
        for (q, version, digest) in &serial {
            let json = c.query(q).expect("replica query");
            let ok = json_u64_field(&json, "version") == Some(*version)
                && json_str_field(&json, "digest").as_deref() == Some(digest.as_str());
            if !ok {
                eprintln!(
                    "   DIGEST MISMATCH on {}: {json} (want v{version} {digest})",
                    node.addr
                );
            }
            digest_identity &= ok;
        }
        let stats = c.stats().expect("replica stats");
        lag_p99_max = lag_p99_max.max(json_f64_field(&stats, "repl_lag_p99_ms").unwrap_or(0.0));
        deltas_applied_total += json_u64_field(&stats, "repl_deltas_applied").unwrap_or(0);
    }
    assert!(
        digest_identity,
        "replica answers diverged from the serial mirror"
    );
    assert!(
        deltas_applied_total >= writes_applied,
        "replicas applied {deltas_applied_total} deltas for {writes_applied} writes"
    );
    println!(
        "   convergence: digest identity at v{target}; replica apply-lag p99 max \
         {lag_p99_max:.3} ms; {deltas_applied_total} deltas applied"
    );

    // Phase 4: broken chain — the burst exceeded the delta-log cap, so
    // a late joiner must recover over the snapshot path.
    assert!(
        write_rounds > DELTA_LOG_CAP,
        "bench invariant: the write burst must out-run the delta log"
    );
    let late = ChildNode::spawn("--replica-node", &fam_args);
    assert!(
        wait_node_version(late.addr, target, Duration::from_secs(60)),
        "late joiner never converged"
    );
    let late_stats = stats_of(late.addr);
    let late_snapshots = json_u64_field(&late_stats, "repl_snapshots_installed").unwrap_or(0);
    assert!(
        late_snapshots >= 1,
        "a joiner past log retention must take the snapshot path: {late_stats}"
    );
    let mut late_client = Client::connect(late.addr).expect("late client");
    for (q, version, digest) in &serial {
        let json = late_client.query(q).expect("late query");
        assert_eq!(json_u64_field(&json, "version"), Some(*version), "{json}");
        assert_eq!(
            json_str_field(&json, "digest").as_deref(),
            Some(digest.as_str()),
            "late joiner diverged after snapshot recovery: {json}"
        );
    }
    let primary_stats = stats_of(primary_addr);
    let snapshots_streamed = json_u64_field(&primary_stats, "repl_snapshots_streamed").unwrap_or(0);
    assert!(
        snapshots_streamed >= 1,
        "the primary must have counted the snapshot transfer: {primary_stats}"
    );
    println!(
        "   broken-chain recovery: late joiner installed {late_snapshots} snapshot(s) \
         (primary streamed {snapshots_streamed}) and converged to digest identity"
    );
    drop(late);
    drop(replica_nodes);

    // Phase 5: sharded reads behind scatter-gather routers.
    let schema_only = build_families_filtered(families, rows, |_| false);
    let map = scale_shard_map(&schema_only, shards);
    let shard_args: Vec<Vec<String>> = (0..shards)
        .map(|i| {
            vec![
                i.to_string(),
                shards.to_string(),
                families.to_string(),
                rows.to_string(),
            ]
        })
        .collect();
    let shard_nodes: Vec<ChildNode> = shard_args
        .iter()
        .map(|a| ChildNode::spawn("--shard-node", a))
        .collect();
    let shard_addrs: Vec<SocketAddr> = shard_nodes.iter().map(|n| n.addr).collect();

    // Fat-node baseline: every family on one node (fresh, no deletes).
    let fat = Arc::new(ServiceCore::new(
        build_families(families, rows),
        EngineOptions::default(),
    ));
    let fat_server =
        serve(Arc::clone(&fat), "127.0.0.1:0", clients_per * shards + 2).expect("fat node serves");
    for q in &hot {
        fat.query(q).expect("warm fat");
    }
    let fat_qps = read_load(&[fat_server.addr()], clients_per * shards, requests, &hot);

    // Routed: the same total client count, each thread owning a router.
    let router_threads = clients_per * shards;
    let mut zero_fanout = true;
    let mut routed_digest_identity = true;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..router_threads)
            .map(|c| {
                let map = map.clone();
                let shard_addrs = &shard_addrs;
                let hot = &hot;
                s.spawn(move || {
                    let mut router = Router::connect(map, shard_addrs, RetryPolicy::default())
                        .expect("router connects");
                    for r in 0..requests {
                        let q = &hot[(c + r) % hot.len()];
                        let json = router.query(q).expect("routed query");
                        assert!(
                            json_u64_field(&json, "version").is_some(),
                            "bad reply {json}"
                        );
                    }
                    router.counters()
                })
            })
            .collect();
        for h in handles {
            let counters = h.join().expect("router thread");
            zero_fanout &= counters.scattered == 0 && counters.single_shard == requests as u64;
        }
    });
    let routed_qps = (router_threads * requests) as f64 / t0.elapsed().as_secs_f64();
    let shard_speedup = routed_qps / fat_qps.max(1e-9);
    assert!(
        zero_fanout,
        "family-local queries must route with zero fan-out"
    );
    // Routed answers are digest-identical to the fat node's.
    {
        let mut router =
            Router::connect(map.clone(), &shard_addrs, RetryPolicy::default()).expect("verifier");
        for q in &hot {
            let routed = router.query(q).expect("routed");
            let fat_resp = fat.query(q).expect("fat");
            let ok = json_str_field(&routed, "digest")
                == Some(result_digest(&fat_resp.output).to_string());
            if !ok {
                eprintln!("   SHARD DIGEST MISMATCH on {q}: {routed}");
            }
            routed_digest_identity &= ok;
        }
    }
    assert!(
        routed_digest_identity,
        "routed answers diverged from the fat node"
    );
    println!(
        "   sharded ({shards} shards, {} families): routed {routed_qps:.1} qps vs \
         fat node {fat_qps:.1} qps ({shard_speedup:.2}x), zero fan-out, digests identical",
        families
    );
    fat_server.shutdown();
    drop(shard_nodes);
    server.shutdown();

    if json_output() {
        println!(
            "{{\"fig\": \"scale\", \"cpus\": {cpus}, \"replicas\": {replicas}, \
             \"shards\": {shards}, \"families\": {families}, \"rows\": {rows}, \
             \"single_qps\": {single_qps:.1}, \"replicated_qps\": {replicated_qps:.1}, \
             \"replica_speedup\": {replica_speedup:.4}, \"writes\": {writes_applied}, \
             \"digest_identity\": {digest_identity}, \"lag_p99_ms_max\": {lag_p99_max:.4}, \
             \"deltas_applied\": {deltas_applied_total}, \
             \"late_joiner_snapshots\": {late_snapshots}, \
             \"snapshots_streamed\": {snapshots_streamed}, \
             \"fat_qps\": {fat_qps:.1}, \"routed_qps\": {routed_qps:.1}, \
             \"shard_speedup\": {shard_speedup:.4}, \"zero_fanout\": {zero_fanout}, \
             \"routed_digest_identity\": {routed_digest_identity}}}"
        );
    }

    // Like fig7's parallel gate: scale-out ratios are pure scheduling
    // noise when every process shares one core, so the throughput gates
    // only apply on multi-core hosts. The correctness assertions above
    // (digest identity, snapshot recovery, zero fan-out) ran regardless.
    if let Ok(min) = std::env::var("PROQL_MIN_SCALEOUT") {
        let min: f64 = min.parse().expect("PROQL_MIN_SCALEOUT parses");
        if cpus == 1 {
            println!("   scale-out gate skipped on a single-core host");
        } else {
            assert!(
                replica_speedup >= min,
                "replica scale-out {replica_speedup:.2}x below the PROQL_MIN_SCALEOUT={min} gate \
                 ({replicated_qps:.1} qps vs {single_qps:.1} qps on {cpus} CPUs)"
            );
            println!("   scale-out gate passed: {replica_speedup:.2}x >= {min}");
        }
    }
    if let Ok(max) = std::env::var("PROQL_MAX_REPLICA_LAG_MS") {
        let max: f64 = max.parse().expect("PROQL_MAX_REPLICA_LAG_MS parses");
        assert!(
            lag_p99_max <= max,
            "replica apply-lag p99 {lag_p99_max:.3} ms above the \
             PROQL_MAX_REPLICA_LAG_MS={max} gate"
        );
        println!("   replica-lag gate passed: {lag_p99_max:.3} ms <= {max} ms");
    }
    if let Ok(min) = std::env::var("PROQL_MIN_SHARD_SCALEOUT") {
        let min: f64 = min.parse().expect("PROQL_MIN_SHARD_SCALEOUT parses");
        if cpus == 1 {
            println!("   shard scale-out gate skipped on a single-core host");
        } else {
            assert!(
                shard_speedup >= min,
                "shard scale-out {shard_speedup:.2}x below the PROQL_MIN_SHARD_SCALEOUT={min} gate"
            );
            println!("   shard scale-out gate passed: {shard_speedup:.2}x >= {min}");
        }
    }
}
