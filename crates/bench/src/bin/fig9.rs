//! Figure 9 — chain and branched topologies of 20 peers, varying base size
//! (tuples per data peer). Expected shape: instance size and query
//! processing time grow **linearly** with base size.
//!
//! With `PROQL_JSON=1` one JSON line per configuration is printed
//! (machine-readable perf trajectory for future PRs).

use proql::engine::EngineOptions;
use proql_bench::{banner, build_timed, json_output, json_str, measure_target_query, scaled};
use proql_cdss::topology::{CdssConfig, Topology};

fn main() {
    banner(
        "Figure 9: 20 peers, varying base size",
        "query time and instance size vs base size (linear), chain + branched",
    );
    let peers = scaled(10, 20);
    let steps: Vec<usize> = if proql_bench::full_scale() {
        (1..=8).map(|i| i * 10_000).collect()
    } else {
        (1..=8).map(|i| i * 500).collect()
    };
    println!(
        "{:>10} {:>9} {:>14} {:>14} {:>14}",
        "base", "topology", "total (s)", "instance", "rules"
    );
    for &base in &steps {
        for (name, topo, data) in [
            (
                "chain",
                Topology::Chain,
                CdssConfig::upstream_data(peers, 2, base),
            ),
            (
                "branched",
                Topology::Branched,
                CdssConfig::new(peers, vec![peers - 1, peers - 2, peers - 3], base),
            ),
        ] {
            let (sys, _) = build_timed(topo, &data);
            let m = measure_target_query(&sys, EngineOptions::default());
            println!(
                "{:>10} {:>9} {:>14.4} {:>14} {:>14}",
                base,
                name,
                m.total_s(),
                m.instance_rows,
                m.rules
            );
            if json_output() {
                println!(
                    "{}",
                    m.to_json(&[
                        format!("\"fig\": {}", json_str("fig9")),
                        format!("\"base\": {base}"),
                        format!("\"topology\": {}", json_str(name)),
                    ])
                );
            }
        }
    }
}
