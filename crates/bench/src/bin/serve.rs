//! `serve` — load generator for the `proql-service` TCP stack (beyond
//! the paper: the ROADMAP's production-service trajectory).
//!
//! Starts a [`proql_service::ServiceCore`] over a CDSS chain (plus the
//! disconnected `Island` family), exposes it on a loopback TCP port,
//! and drives it in three phases:
//!
//! 1. **Load**: `PROQL_CLIENTS` concurrent connections replay a small
//!    set of hot target-peer queries while a writer deletes island
//!    tuples over the same wire — writes whose write sets share no
//!    relation with any hot query, so the dependency-tracked cache must
//!    keep serving hits throughout.
//! 2. **Maintenance demo** (serial): one unrelated write followed by a
//!    re-query (asserted to be a cache **hit**), then one write inside
//!    the chain followed by a re-query — with incremental view
//!    maintenance the touched entry is patched forward, so this is
//!    asserted to be a **hit** too, at the new version.
//! 3. **Sustained touching writes** (serial): every round deletes a
//!    chain tuple that intersects all hot entries, then replays the hot
//!    set; the effective hit rate under this adversarial write stream is
//!    the maintenance payoff. Afterwards the maintained answers are
//!    checked digest-equal to fresh recomputation (`INVALIDATE` + serve
//!    from scratch, which also demonstrates prepared-plan reuse), and a
//!    second in-process core with maintenance disabled reproduces the
//!    old evict-on-write contract as the ablation baseline.
//!
//! 4. **High connection count**: `PROQL_HICONN_CLIENTS` connections
//!    (≥ 8× the worker threads) replay the hot set twice — once against
//!    the event-loop server in pipelined binary mode, once against the
//!    thread-per-connection blocking baseline ([`serve_blocking`]) in
//!    line mode — and the throughput ratio is reported (and gated by
//!    `PROQL_MIN_EVENTLOOP_SPEEDUP`). Server-side latency percentiles
//!    come from the transport's log-bucketed histogram via `STATS`.
//!
//! Reports throughput, client-observed latency percentiles, cache hit
//! rate, maintenance counters, and the demo outcomes; `PROQL_JSON=1`
//! emits one machine-readable line. `PROQL_MIN_HIT_RATE=<0..1>` gates
//! the phase-1 rate and `PROQL_MIN_MAINT_HIT_RATE=<0..1>` gates the
//! phase-3 rate so CI catches both eviction and maintenance regressions.

use proql::engine::EngineOptions;
use proql_bench::{banner, json_output, percentile, scaled};
use proql_cdss::topology::{build_system_with_island, CdssConfig, Topology};
use proql_common::tup;
use proql_service::proto::{json_f64_field, json_str_field, json_u64_field};
use proql_service::{serve, serve_blocking, BinClient, Client, ServiceCore};
use std::sync::Arc;
use std::time::Instant;

const HOT_QUERIES: [&str; 4] = [
    "FOR [R0a $x] INCLUDE PATH [$x] <-+ [] RETURN $x",
    "FOR [R0a $x] INCLUDE PATH [$x] <-+ [] WHERE $x.k >= 10 RETURN $x",
    "FOR [R0a $x] INCLUDE PATH [$x] <-+ [] WHERE $x.k < 5 RETURN $x",
    "EVALUATE DERIVABILITY OF { FOR [R0a $x] INCLUDE PATH [$x] <-+ [] RETURN $x }",
];

fn main() {
    banner(
        "serve: concurrent query service under mixed read/write load",
        "beyond the paper; ROADMAP production-service trajectory",
    );

    // This bench measures the *transport and cache*, so the span layer
    // must not pollute it — in particular the event-loop vs blocking
    // A/B phase, whose gate sits at 1x on single-core runners.
    // `obs_bench` owns the tracing-overhead measurement. Set before any
    // core exists so every `trace::init_from_env` call honors it.
    std::env::set_var("PROQL_TRACE", "0");
    proql_common::trace::set_enabled(false);

    let clients = env_usize("PROQL_CLIENTS", 4);
    let requests_per_client = env_usize("PROQL_REQUESTS", scaled(60, 400));
    let peers = scaled(4, 8);
    let base = scaled(200, 2000);
    let island = 64;

    let sys = build_system_with_island(
        Topology::Chain,
        &CdssConfig::new(peers, vec![peers - 1], base),
        island,
    )
    .expect("topology builds");
    let chain_rel = format!("R{}a", peers - 1);
    let core = Arc::new(ServiceCore::new(sys, EngineOptions::default()));
    let server = serve(Arc::clone(&core), "127.0.0.1:0", clients + 2).expect("server starts");
    let addr = server.addr();

    // Phase 1: concurrent load + unrelated writes.
    let t0 = Instant::now();
    let mut all_latencies: Vec<f64> = Vec::new();
    let mut write_latencies: Vec<f64> = Vec::new();
    let mut island_deletes = 0usize;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for c in 0..clients {
            handles.push(s.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut latencies = Vec::with_capacity(requests_per_client);
                for r in 0..requests_per_client {
                    let q = HOT_QUERIES[(c + r) % HOT_QUERIES.len()];
                    let t = Instant::now();
                    let json = client.query(q).expect("query succeeds");
                    latencies.push(t.elapsed().as_secs_f64() * 1e3);
                    assert!(
                        json_u64_field(&json, "version").is_some(),
                        "bad reply: {json}"
                    );
                }
                latencies
            }));
        }
        let writer = s.spawn(move || {
            let mut client = Client::connect(addr).expect("writer connects");
            let mut latencies = Vec::with_capacity(16);
            for k in 0..16 {
                let t = Instant::now();
                let resp = client
                    .request(&format!("DELETE Island {k}"))
                    .expect("delete request");
                latencies.push(t.elapsed().as_secs_f64() * 1e3);
                assert!(resp.starts_with("OK "), "island delete failed: {resp}");
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            latencies
        });
        for h in handles {
            all_latencies.extend(h.join().expect("client thread"));
        }
        write_latencies = writer.join().expect("writer thread");
        island_deletes = write_latencies.len();
    });
    let wall_s = t0.elapsed().as_secs_f64();

    // Phase 2 (serial): the maintenance contract, end to end over TCP.
    let mut demo = Client::connect(addr).expect("demo client");
    demo.query(HOT_QUERIES[0]).expect("warm");
    let unrelated = demo
        .request(&format!("DELETE Island {}", island - 1))
        .expect("unrelated delete");
    assert!(unrelated.starts_with("OK "), "{unrelated}");
    let after_unrelated = demo.query(HOT_QUERIES[0]).expect("re-query");
    let unrelated_write_hit = json_str_field(&after_unrelated, "cache").as_deref() == Some("hit");
    assert!(
        unrelated_write_hit,
        "a write to an untouched relation must keep the entry: {after_unrelated}"
    );
    let touching = demo
        .request(&format!("DELETE {chain_rel} {}", base - 1))
        .expect("touching delete");
    assert!(touching.starts_with("OK "), "{touching}");
    let touch_version = json_u64_field(&touching, "version").expect("write reply has a version");
    let after_touching = demo.query(HOT_QUERIES[0]).expect("re-query");
    let touching_write_hit = json_str_field(&after_touching, "cache").as_deref() == Some("hit");
    assert!(
        touching_write_hit,
        "a localizable write to a touched relation must be maintained, not evicted: \
         {after_touching}"
    );
    assert_eq!(
        json_u64_field(&after_touching, "version"),
        Some(touch_version),
        "the maintained entry must be re-stamped to the write's version: {after_touching}"
    );

    // Phase 3 (serial): sustained touching-write load. Every round kills a
    // chain tuple that every hot entry depends on; with maintenance the
    // entries are patched forward and keep hitting.
    for q in HOT_QUERIES {
        demo.query(q).expect("warm hot set");
    }
    let rounds = env_usize("PROQL_MAINT_ROUNDS", scaled(12, 32));
    let mut maint_requests = 0u64;
    let mut maint_hits_observed = 0u64;
    for round in 0..rounds {
        let resp = demo
            .request(&format!("DELETE {chain_rel} {}", base - 2 - round))
            .expect("sustained chain delete");
        assert!(resp.starts_with("OK "), "chain delete failed: {resp}");
        for q in HOT_QUERIES {
            let json = demo.query(q).expect("hot re-query");
            maint_requests += 1;
            if json_str_field(&json, "cache").as_deref() == Some("hit") {
                maint_hits_observed += 1;
            }
        }
    }
    let maint_hit_rate = maint_hits_observed as f64 / maint_requests.max(1) as f64;

    // Digest-equality: every maintained answer must be bit-identical to a
    // from-scratch recomputation of the same query at the same snapshot.
    // The fresh re-execution after INVALIDATE also demonstrates that a
    // result miss reuses the cached prepared plan.
    let maintained: Vec<(String, u64)> = HOT_QUERIES
        .iter()
        .map(|q| {
            let json = demo.query(q).expect("maintained read");
            (
                q.to_string(),
                json_u64_field(&json, "digest").expect("reply has a digest"),
            )
        })
        .collect();
    let inval = demo.request("INVALIDATE").expect("invalidate");
    assert!(inval.starts_with("OK "), "{inval}");
    let mut maint_digest_match = true;
    let mut fresh_requery_plan_hit = true;
    for (q, maintained_digest) in &maintained {
        let json = demo.query(q).expect("fresh recompute");
        assert_eq!(
            json_str_field(&json, "cache").as_deref(),
            Some("miss"),
            "INVALIDATE must force a recompute: {json}"
        );
        fresh_requery_plan_hit &= json_str_field(&json, "plan_cache").as_deref() == Some("hit");
        maint_digest_match &= json_u64_field(&json, "digest") == Some(*maintained_digest);
    }
    assert!(
        maint_digest_match,
        "a maintained answer diverged from fresh recomputation"
    );
    assert!(
        fresh_requery_plan_hit,
        "a result miss must re-execute from the cached prepared plan"
    );

    let stats_json = demo.stats().expect("stats");
    drop(demo);
    server.shutdown();

    // Ablation baseline (in-process, no TCP): with maintenance disabled
    // the same touching write evicts instead of patching.
    let ablation_touching_write_miss = {
        let sys = build_system_with_island(Topology::Chain, &CdssConfig::new(3, vec![2], 8), 4)
            .expect("ablation topology");
        let core = ServiceCore::new(sys, EngineOptions::default()).with_maintenance(false);
        core.query(HOT_QUERIES[0]).expect("warm");
        core.delete("R2a", &tup![7]).expect("touching delete");
        let resp = core.query(HOT_QUERIES[0]).expect("re-query");
        assert!(
            !resp.cache_hit,
            "with maintenance disabled a touching write must evict"
        );
        let stats = core.stats();
        assert_eq!(stats.cache.maint_hits, 0, "ablation must never maintain");
        assert_eq!(stats.cache.stale_evictions, 1);
        !resp.cache_hit
    };

    // Phase 4: high connection count — event loop (pipelined binary) vs
    // thread-per-connection blocking baseline (lockstep lines), same
    // worker budget, connections ≥ 8x workers. With the baseline, a
    // connection beyond the pool size waits for a whole pinned worker;
    // the event loop multiplexes them all.
    let hc_workers = env_usize("PROQL_HICONN_WORKERS", 2);
    let hc_conns = env_usize("PROQL_HICONN_CLIENTS", hc_workers * 8).max(hc_workers * 8);
    let hc_requests = env_usize("PROQL_HICONN_REQUESTS", scaled(40, 150));
    let (eventloop_qps, eventloop_stats) = hiconn_phase(true, hc_workers, hc_conns, hc_requests);
    let (blocking_qps, _blocking_stats) = hiconn_phase(false, hc_workers, hc_conns, hc_requests);
    let eventloop_speedup = eventloop_qps / blocking_qps.max(1e-9);
    // Server-side latency percentiles from the transport histogram.
    let server_p50 = json_f64_field(&eventloop_stats, "latency_p50_ms").unwrap_or(0.0);
    let server_p95 = json_f64_field(&eventloop_stats, "latency_p95_ms").unwrap_or(0.0);
    let server_p99 = json_f64_field(&eventloop_stats, "latency_p99_ms").unwrap_or(0.0);
    let hc_frames_in = json_u64_field(&eventloop_stats, "frames_in").unwrap_or(0);
    let hc_shed = json_u64_field(&eventloop_stats, "shed_count").unwrap_or(0);
    assert!(
        json_u64_field(&eventloop_stats, "requests_recorded").unwrap_or(0) > 0,
        "the transport histogram must have recorded the phase: {eventloop_stats}"
    );
    assert!(
        hc_frames_in >= (hc_conns * hc_requests) as u64,
        "every pipelined frame must be decoded: {eventloop_stats}"
    );

    let total_requests = clients * requests_per_client;
    let throughput = total_requests as f64 / wall_s;
    all_latencies.sort_by(|a, b| a.total_cmp(b));
    let (p50, p95, p99) = (
        percentile(&all_latencies, 0.50),
        percentile(&all_latencies, 0.95),
        percentile(&all_latencies, 0.99),
    );
    // Client-observed write (DELETE) latency percentiles.
    write_latencies.sort_by(|a, b| a.total_cmp(b));
    let (write_p50, write_p95) = (
        percentile(&write_latencies, 0.50),
        percentile(&write_latencies, 0.95),
    );
    // The server's own hit-rate definition is the single source of truth.
    let hit_rate = json_f64_field(&stats_json, "cache_hit_rate").unwrap_or(0.0);
    let plan_hit_rate = json_f64_field(&stats_json, "plan_cache_hit_rate").unwrap_or(0.0);
    assert!(
        plan_hit_rate > 0.0,
        "plan cache must report a nonzero hit rate: {stats_json}"
    );
    let maint_hits = json_u64_field(&stats_json, "maint_hits").unwrap_or(0);
    let maint_fallbacks = json_u64_field(&stats_json, "maint_fallbacks").unwrap_or(0);
    let maint_rows_patched = json_u64_field(&stats_json, "maint_rows_patched").unwrap_or(0);
    assert!(
        maint_hits > 0,
        "the sustained phase must exercise maintenance: {stats_json}"
    );

    println!(
        "{:>10} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "clients", "requests", "qps", "p50 (ms)", "p95 (ms)", "p99 (ms)", "hit rate", "writes"
    );
    println!(
        "{:>10} {:>10} {:>12.1} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>8}",
        clients,
        total_requests,
        throughput,
        p50,
        p95,
        p99,
        hit_rate,
        island_deletes + 2 + rounds
    );
    println!("   write latency: p50 {write_p50:.3} ms, p95 {write_p95:.3} ms");
    println!("   unrelated-write re-query: hit  (entry survived)");
    println!(
        "   touching-write re-query:  hit  (entry maintained, re-stamped to v{touch_version})"
    );
    println!(
        "   sustained touching writes: {rounds} rounds, effective hit rate {maint_hit_rate:.3}"
    );
    println!(
        "   maintenance: {maint_hits} patches ({maint_rows_patched} rows), \
         {maint_fallbacks} fallbacks; digests match fresh recompute"
    );
    println!("   ablation (maintenance off): touching write evicts");
    println!("   plan-cache hit rate: {plan_hit_rate:.3}");
    println!(
        "   high-conn ({hc_conns} conns / {hc_workers} workers, {hc_requests} req each): \
         event loop {eventloop_qps:.1} qps vs blocking baseline {blocking_qps:.1} qps \
         ({eventloop_speedup:.2}x)"
    );
    println!(
        "   server-side latency (histogram): p50 {server_p50:.4} ms, p95 {server_p95:.4} ms, \
         p99 {server_p99:.4} ms; {hc_shed} shed"
    );
    println!("   server stats: {stats_json}");

    if json_output() {
        println!(
            "{{\"fig\": \"serve\", \"clients\": {clients}, \"requests\": {total_requests}, \
             \"wall_s\": {wall_s:.6}, \"throughput_qps\": {throughput:.1}, \
             \"p50_ms\": {p50:.4}, \"p95_ms\": {p95:.4}, \"p99_ms\": {p99:.4}, \
             \"write_p50_ms\": {write_p50:.4}, \"write_p95_ms\": {write_p95:.4}, \
             \"cache_hit_rate\": {hit_rate:.6}, \"plan_cache_hit_rate\": {plan_hit_rate:.6}, \
             \"writes\": {}, \"unrelated_write_hit\": {unrelated_write_hit}, \
             \"touching_write_hit\": {touching_write_hit}, \
             \"maint_rounds\": {rounds}, \"maint_hit_rate\": {maint_hit_rate:.6}, \
             \"maint_hits\": {maint_hits}, \"maint_fallbacks\": {maint_fallbacks}, \
             \"maint_rows_patched\": {maint_rows_patched}, \
             \"maint_digest_match\": {maint_digest_match}, \
             \"fresh_requery_plan_hit\": {fresh_requery_plan_hit}, \
             \"ablation_touching_write_miss\": {ablation_touching_write_miss}, \
             \"hiconn_clients\": {hc_conns}, \"hiconn_workers\": {hc_workers}, \
             \"eventloop_qps\": {eventloop_qps:.1}, \"blocking_qps\": {blocking_qps:.1}, \
             \"eventloop_speedup\": {eventloop_speedup:.4}, \
             \"server_p50_ms\": {server_p50:.4}, \"server_p95_ms\": {server_p95:.4}, \
             \"server_p99_ms\": {server_p99:.4}, \"shed_count\": {hc_shed}, \
             \"stale_evictions\": {}, \"version\": {}}}",
            island_deletes + 2 + rounds,
            json_u64_field(&stats_json, "stale_evictions").unwrap_or(0),
            json_u64_field(&stats_json, "version").unwrap_or(0),
        );
    }

    if let Ok(min) = std::env::var("PROQL_MIN_HIT_RATE") {
        let min: f64 = min.parse().expect("PROQL_MIN_HIT_RATE parses");
        assert!(
            hit_rate >= min,
            "cache hit rate {hit_rate:.3} below the PROQL_MIN_HIT_RATE={min} gate \
             (stats: {stats_json})"
        );
        println!("   hit-rate gate passed: {hit_rate:.3} >= {min}");
    }
    if let Ok(min) = std::env::var("PROQL_MIN_MAINT_HIT_RATE") {
        let min: f64 = min.parse().expect("PROQL_MIN_MAINT_HIT_RATE parses");
        assert!(
            maint_hit_rate >= min,
            "maintenance effective hit rate {maint_hit_rate:.3} below the \
             PROQL_MIN_MAINT_HIT_RATE={min} gate (stats: {stats_json})"
        );
        println!("   maintenance hit-rate gate passed: {maint_hit_rate:.3} >= {min}");
    }
    if let Ok(min) = std::env::var("PROQL_MIN_EVENTLOOP_SPEEDUP") {
        let min: f64 = min.parse().expect("PROQL_MIN_EVENTLOOP_SPEEDUP parses");
        assert!(
            eventloop_speedup >= min,
            "event-loop speedup {eventloop_speedup:.2}x below the \
             PROQL_MIN_EVENTLOOP_SPEEDUP={min} gate \
             ({eventloop_qps:.1} qps vs {blocking_qps:.1} qps baseline)"
        );
        println!("   event-loop speedup gate passed: {eventloop_speedup:.2}x >= {min}");
    }
}

/// One phase-4 run: a fresh core, served either by the event loop
/// (driven in pipelined binary mode) or by the thread-per-connection
/// blocking baseline (driven in lockstep line mode), with `conns`
/// concurrent client threads issuing `requests` hot queries each.
/// Returns (throughput qps, final STATS payload).
fn hiconn_phase(event_loop: bool, workers: usize, conns: usize, requests: usize) -> (f64, String) {
    let sys = build_system_with_island(Topology::Chain, &CdssConfig::new(3, vec![2], 64), 8)
        .expect("hiconn topology builds");
    let core = Arc::new(ServiceCore::new(sys, EngineOptions::default()));
    let server = if event_loop {
        serve(Arc::clone(&core), "127.0.0.1:0", workers).expect("event-loop server starts")
    } else {
        serve_blocking(Arc::clone(&core), "127.0.0.1:0", workers).expect("baseline server starts")
    };
    let addr = server.addr();
    // Warm the two hot entries so the phase measures the transport, not
    // first-evaluation cost.
    {
        let mut warm = Client::connect(addr).expect("warm client");
        for q in &HOT_QUERIES[..2] {
            warm.query(q).expect("warm query");
        }
    }
    // Best-of-N passes against the same warm server: one descheduled
    // pass on a shared runner would otherwise fake a transport
    // regression in the A/B ratio.
    let passes = env_usize("PROQL_HICONN_PASSES", 3);
    let mut qps: f64 = 0.0;
    for _ in 0..passes.max(1) {
        qps = qps.max(hiconn_pass(addr, event_loop, conns, requests));
    }
    let mut stats_client = Client::connect(addr).expect("stats client");
    let stats = stats_client.stats().expect("stats");
    drop(stats_client);
    server.shutdown();
    (qps, stats)
}

/// One timed sweep of the high-connection phase: `conns` client threads
/// replay the hot set, pipelined binary against the event loop or line
/// mode against the blocking baseline.
fn hiconn_pass(addr: std::net::SocketAddr, event_loop: bool, conns: usize, requests: usize) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..conns {
            s.spawn(move || {
                if event_loop {
                    let mut client = BinClient::connect(addr).expect("bin client connects");
                    let mut done = 0usize;
                    while done < requests {
                        let batch = (requests - done).min(16);
                        let qs: Vec<&str> = (0..batch)
                            .map(|i| HOT_QUERIES[(c + done + i) % 2])
                            .collect();
                        let payloads = client.pipeline_queries(&qs).expect("pipelined batch");
                        assert_eq!(payloads.len(), batch, "batch answered in full");
                        done += batch;
                    }
                } else {
                    let mut client = Client::connect(addr).expect("line client connects");
                    for r in 0..requests {
                        client
                            .query(HOT_QUERIES[(c + r) % 2])
                            .expect("query succeeds");
                    }
                }
            });
        }
    });
    (conns * requests) as f64 / t0.elapsed().as_secs_f64()
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
