//! `serve` — load generator for the `proql-service` TCP stack (beyond
//! the paper: the ROADMAP's production-service trajectory).
//!
//! Starts a [`proql_service::ServiceCore`] over a CDSS chain (plus the
//! disconnected `Island` family), exposes it on a loopback TCP port,
//! and drives it in two phases:
//!
//! 1. **Load**: `PROQL_CLIENTS` concurrent connections replay a small
//!    set of hot target-peer queries while a writer deletes island
//!    tuples over the same wire — writes whose write sets share no
//!    relation with any hot query, so the dependency-tracked cache must
//!    keep serving hits throughout.
//! 2. **Invalidation demo** (serial): one unrelated write followed by a
//!    re-query (asserted to be a cache **hit**), then one write inside
//!    the chain followed by a re-query (asserted to be a **miss**).
//!
//! Reports throughput, client-observed latency percentiles, cache hit
//! rate, and the two demo outcomes; `PROQL_JSON=1` emits one
//! machine-readable line. `PROQL_MIN_HIT_RATE=<0..1>` gates the run so
//! CI catches invalidation regressions that silently evict everything.

use proql::engine::EngineOptions;
use proql_bench::{banner, json_output, percentile, scaled};
use proql_cdss::topology::{build_system_with_island, CdssConfig, Topology};
use proql_service::proto::{json_f64_field, json_str_field, json_u64_field};
use proql_service::{serve, Client, ServiceCore};
use std::sync::Arc;
use std::time::Instant;

const HOT_QUERIES: [&str; 4] = [
    "FOR [R0a $x] INCLUDE PATH [$x] <-+ [] RETURN $x",
    "FOR [R0a $x] INCLUDE PATH [$x] <-+ [] WHERE $x.k >= 10 RETURN $x",
    "FOR [R0a $x] INCLUDE PATH [$x] <-+ [] WHERE $x.k < 5 RETURN $x",
    "EVALUATE DERIVABILITY OF { FOR [R0a $x] INCLUDE PATH [$x] <-+ [] RETURN $x }",
];

fn main() {
    banner(
        "serve: concurrent query service under mixed read/write load",
        "beyond the paper; ROADMAP production-service trajectory",
    );

    let clients = env_usize("PROQL_CLIENTS", 4);
    let requests_per_client = env_usize("PROQL_REQUESTS", scaled(60, 400));
    let peers = scaled(4, 8);
    let base = scaled(200, 2000);
    let island = 64;

    let sys = build_system_with_island(
        Topology::Chain,
        &CdssConfig::new(peers, vec![peers - 1], base),
        island,
    )
    .expect("topology builds");
    let chain_rel = format!("R{}a", peers - 1);
    let core = Arc::new(ServiceCore::new(sys, EngineOptions::default()));
    let server = serve(Arc::clone(&core), "127.0.0.1:0", clients + 2).expect("server starts");
    let addr = server.addr();

    // Phase 1: concurrent load + unrelated writes.
    let t0 = Instant::now();
    let mut all_latencies: Vec<f64> = Vec::new();
    let mut write_latencies: Vec<f64> = Vec::new();
    let mut island_deletes = 0usize;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for c in 0..clients {
            handles.push(s.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut latencies = Vec::with_capacity(requests_per_client);
                for r in 0..requests_per_client {
                    let q = HOT_QUERIES[(c + r) % HOT_QUERIES.len()];
                    let t = Instant::now();
                    let json = client.query(q).expect("query succeeds");
                    latencies.push(t.elapsed().as_secs_f64() * 1e3);
                    assert!(
                        json_u64_field(&json, "version").is_some(),
                        "bad reply: {json}"
                    );
                }
                latencies
            }));
        }
        let writer = s.spawn(move || {
            let mut client = Client::connect(addr).expect("writer connects");
            let mut latencies = Vec::with_capacity(16);
            for k in 0..16 {
                let t = Instant::now();
                let resp = client
                    .request(&format!("DELETE Island {k}"))
                    .expect("delete request");
                latencies.push(t.elapsed().as_secs_f64() * 1e3);
                assert!(resp.starts_with("OK "), "island delete failed: {resp}");
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            latencies
        });
        for h in handles {
            all_latencies.extend(h.join().expect("client thread"));
        }
        write_latencies = writer.join().expect("writer thread");
        island_deletes = write_latencies.len();
    });
    let wall_s = t0.elapsed().as_secs_f64();

    // Phase 2 (serial): the invalidation contract, end to end over TCP.
    let mut demo = Client::connect(addr).expect("demo client");
    demo.query(HOT_QUERIES[0]).expect("warm");
    let unrelated = demo
        .request(&format!("DELETE Island {}", island - 1))
        .expect("unrelated delete");
    assert!(unrelated.starts_with("OK "), "{unrelated}");
    let after_unrelated = demo.query(HOT_QUERIES[0]).expect("re-query");
    let unrelated_write_hit = json_str_field(&after_unrelated, "cache").as_deref() == Some("hit");
    assert!(
        unrelated_write_hit,
        "a write to an untouched relation must keep the entry: {after_unrelated}"
    );
    let touching = demo
        .request(&format!("DELETE {chain_rel} {}", base - 1))
        .expect("touching delete");
    assert!(touching.starts_with("OK "), "{touching}");
    let after_touching = demo.query(HOT_QUERIES[0]).expect("re-query");
    let touching_write_miss = json_str_field(&after_touching, "cache").as_deref() == Some("miss");
    assert!(
        touching_write_miss,
        "a write to a touched relation must evict the entry: {after_touching}"
    );
    // The forced result miss must have reused the cached prepared plan:
    // a point delete stays within the stats fingerprint's buckets.
    let touching_write_plan_hit =
        json_str_field(&after_touching, "plan_cache").as_deref() == Some("hit");
    assert!(
        touching_write_plan_hit,
        "an evicted result must re-execute from the cached plan: {after_touching}"
    );

    let stats_json = demo.stats().expect("stats");
    drop(demo);
    server.shutdown();

    let total_requests = clients * requests_per_client;
    let throughput = total_requests as f64 / wall_s;
    all_latencies.sort_by(|a, b| a.total_cmp(b));
    let (p50, p95, p99) = (
        percentile(&all_latencies, 0.50),
        percentile(&all_latencies, 0.95),
        percentile(&all_latencies, 0.99),
    );
    // Client-observed write (DELETE) latency percentiles.
    write_latencies.sort_by(|a, b| a.total_cmp(b));
    let (write_p50, write_p95) = (
        percentile(&write_latencies, 0.50),
        percentile(&write_latencies, 0.95),
    );
    // The server's own hit-rate definition is the single source of truth.
    let hit_rate = json_f64_field(&stats_json, "cache_hit_rate").unwrap_or(0.0);
    let plan_hit_rate = json_f64_field(&stats_json, "plan_cache_hit_rate").unwrap_or(0.0);
    assert!(
        plan_hit_rate > 0.0,
        "plan cache must report a nonzero hit rate: {stats_json}"
    );

    println!(
        "{:>10} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "clients", "requests", "qps", "p50 (ms)", "p95 (ms)", "p99 (ms)", "hit rate", "writes"
    );
    println!(
        "{:>10} {:>10} {:>12.1} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>8}",
        clients,
        total_requests,
        throughput,
        p50,
        p95,
        p99,
        hit_rate,
        island_deletes + 2
    );
    println!("   write latency: p50 {write_p50:.3} ms, p95 {write_p95:.3} ms");
    println!("   unrelated-write re-query: hit   (entry survived)");
    println!("   touching-write re-query:  miss  (entry evicted; prepared plan reused)");
    println!("   plan-cache hit rate: {plan_hit_rate:.3}");
    println!("   server stats: {stats_json}");

    if json_output() {
        println!(
            "{{\"fig\": \"serve\", \"clients\": {clients}, \"requests\": {total_requests}, \
             \"wall_s\": {wall_s:.6}, \"throughput_qps\": {throughput:.1}, \
             \"p50_ms\": {p50:.4}, \"p95_ms\": {p95:.4}, \"p99_ms\": {p99:.4}, \
             \"write_p50_ms\": {write_p50:.4}, \"write_p95_ms\": {write_p95:.4}, \
             \"cache_hit_rate\": {hit_rate:.6}, \"plan_cache_hit_rate\": {plan_hit_rate:.6}, \
             \"writes\": {}, \"unrelated_write_hit\": {unrelated_write_hit}, \
             \"touching_write_miss\": {touching_write_miss}, \
             \"touching_write_plan_hit\": {touching_write_plan_hit}, \
             \"stale_evictions\": {}, \"version\": {}}}",
            island_deletes + 2,
            json_u64_field(&stats_json, "stale_evictions").unwrap_or(0),
            json_u64_field(&stats_json, "version").unwrap_or(0),
        );
    }

    if let Ok(min) = std::env::var("PROQL_MIN_HIT_RATE") {
        let min: f64 = min.parse().expect("PROQL_MIN_HIT_RATE parses");
        assert!(
            hit_rate >= min,
            "cache hit rate {hit_rate:.3} below the PROQL_MIN_HIT_RATE={min} gate \
             (stats: {stats_json})"
        );
        println!("   hit-rate gate passed: {hit_rate:.3} >= {min}");
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
