//! Figure 11 — query processing times for different ASR types and maximum
//! path lengths, on a chain of 20 peers, few of which have local data.
//! Expected shape: every ASR type beats the no-ASR baseline, and the
//! benefit grows with ASR length (the chain's paths are subsumed by the
//! indexed paths).

use proql_bench::{asr_sweep, banner, scaled};
use proql_cdss::topology::{CdssConfig, Topology};

fn main() {
    banner(
        "Figure 11: ASR types × lengths, chain of 20 peers, 2 data peers",
        "query time vs max ASR path length; all types improve, longer is better",
    );
    let peers = scaled(12, 20);
    let base = scaled(2_000, 50_000);
    let lengths: Vec<usize> = if proql_bench::full_scale() {
        (2..=10).collect()
    } else {
        vec![2, 3, 4, 6, 8]
    };
    asr_sweep(
        Topology::Chain,
        &CdssConfig::upstream_data(peers, 2, base),
        &lengths,
    );
}
