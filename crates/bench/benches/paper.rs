//! Micro-benchmarks mirroring the paper's figures, with a dependency-free
//! timing harness (the build environment has no registry access, so
//! criterion is unavailable). Each case reports median wall time over a
//! fixed number of iterations; run with `cargo bench -p proql-bench`.

use proql::engine::{Engine, Strategy};
use proql_cdss::topology::{build_system, target_query, CdssConfig, Topology};
use proql_provgraph::system::example_2_1;
use std::time::Instant;

fn median_secs(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench<F: FnMut()>(name: &str, iters: usize, mut f: F) {
    // One warmup round, then timed iterations.
    f();
    let samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    println!(
        "{name:<40} median {:>12.6}s over {iters} iters",
        median_secs(samples)
    );
}

fn bench_table1() {
    for semiring in ["DERIVABILITY", "LINEAGE", "WEIGHT"] {
        let q =
            format!("EVALUATE {semiring} OF {{ FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x }}");
        let mut engine = Engine::new(example_2_1().unwrap());
        engine.options.strategy = Strategy::Graph;
        bench(&format!("table1/{semiring}"), 10, || {
            engine.query(&q).unwrap();
        });
    }
}

fn bench_fig7() {
    for peers in [2usize, 3, 4] {
        let sys = build_system(Topology::Chain, &CdssConfig::all_data(peers, 30)).unwrap();
        let mut engine = Engine::new(sys);
        engine.options.strategy = Strategy::Unfold;
        bench(&format!("fig7/peers={peers}"), 10, || {
            engine.query(target_query()).unwrap();
        });
    }
}

fn main() {
    // `cargo test` compiles bench targets and runs them with `--test`;
    // only do real work under `cargo bench` (no such flag).
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    bench_table1();
    bench_fig7();
}
