//! Criterion benches mirroring the paper's figures at micro scale: one
//! group per figure, benchmarking the dominant operation of each
//! experiment. The `fig*` binaries print the full paper-style sweeps;
//! these benches track regressions on the same code paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proql::engine::{Engine, EngineOptions, Strategy};
use proql_asr::{advise, AsrKind, AsrRegistry};
use proql_cdss::topology::{build_system, target_query, CdssConfig, Topology};
use proql_provgraph::system::example_2_1;
use std::sync::Arc;
use std::time::Duration;

fn configure(c: &mut Criterion) -> Criterion {
    let _ = c;
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_semirings");
    for semiring in ["DERIVABILITY", "LINEAGE", "WEIGHT"] {
        let q = format!(
            "EVALUATE {semiring} OF {{ FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x }}"
        );
        g.bench_with_input(BenchmarkId::from_parameter(semiring), &q, |b, q| {
            let mut engine = Engine::new(example_2_1().unwrap());
            engine.options.strategy = Strategy::Graph;
            b.iter(|| engine.query(q).unwrap());
        });
    }
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_chain_all_data");
    for peers in [2usize, 3, 4] {
        let sys = build_system(Topology::Chain, &CdssConfig::all_data(peers, 30)).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(peers), &sys, |b, sys| {
            b.iter(|| {
                let mut e = Engine::new(sys.clone());
                e.options.strategy = Strategy::Unfold;
                e.query(target_query()).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_fig8_data_peers(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_data_peers");
    for k in [1usize, 2, 3] {
        let sys =
            build_system(Topology::Chain, &CdssConfig::upstream_data(8, k, 30)).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(k), &sys, |b, sys| {
            b.iter(|| {
                let mut e = Engine::new(sys.clone());
                e.options.strategy = Strategy::Unfold;
                e.query(target_query()).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_fig9_base_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_base_size");
    for base in [100usize, 200, 400] {
        let sys =
            build_system(Topology::Chain, &CdssConfig::upstream_data(8, 2, base)).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(base), &sys, |b, sys| {
            b.iter(|| {
                let mut e = Engine::new(sys.clone());
                e.options.strategy = Strategy::Unfold;
                e.query(target_query()).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_fig10_peers(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_peers");
    for peers in [4usize, 8, 12] {
        let sys =
            build_system(Topology::Chain, &CdssConfig::upstream_data(peers, 2, 100)).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(peers), &sys, |b, sys| {
            b.iter(|| {
                let mut e = Engine::new(sys.clone());
                e.options.strategy = Strategy::Unfold;
                e.query(target_query()).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_fig11_to_13_asr_kinds(c: &mut Criterion) {
    // One group per topology (fig11: chain few-data, fig12: chain
    // half-data, fig13: branched).
    let settings: [(&str, Topology, CdssConfig); 3] = [
        (
            "fig11_chain",
            Topology::Chain,
            CdssConfig::upstream_data(8, 2, 200),
        ),
        (
            "fig12_half_data",
            Topology::Chain,
            CdssConfig::upstream_data(8, 4, 200),
        ),
        (
            "fig13_branched",
            Topology::Branched,
            CdssConfig::new(7, vec![4, 5, 6], 200),
        ),
    ];
    for (name, topo, cfg) in settings {
        let mut g = c.benchmark_group(name);
        let sys = build_system(topo, &cfg).unwrap();
        g.bench_function("no_asr", |b| {
            b.iter(|| {
                let mut e = Engine::new(sys.clone());
                e.options.strategy = Strategy::Unfold;
                e.query(target_query()).unwrap()
            });
        });
        for kind in [AsrKind::Complete, AsrKind::Subpath, AsrKind::Prefix, AsrKind::Suffix] {
            let mut sys2 = sys.clone();
            let mut reg = AsrRegistry::new();
            for def in advise(&sys2, "R0a", 3, kind) {
                let _ = reg.build(&mut sys2, def);
            }
            let reg = Arc::new(reg);
            g.bench_function(kind.name(), |b| {
                b.iter(|| {
                    let mut opts = EngineOptions::default();
                    opts.strategy = Strategy::Unfold;
                    opts.rewriter = Some(reg.clone());
                    let mut e = Engine::with_options(sys2.clone(), opts);
                    e.query(target_query()).unwrap()
                });
            });
        }
        g.finish();
    }
}

fn bench_exchange(c: &mut Criterion) {
    let mut g = c.benchmark_group("exchange");
    g.bench_function("chain8_base100", |b| {
        b.iter(|| {
            build_system(Topology::Chain, &CdssConfig::upstream_data(8, 2, 100)).unwrap()
        });
    });
    g.finish();
}

fn all(c: &mut Criterion) {
    bench_table1(c);
    bench_fig7(c);
    bench_fig8_data_peers(c);
    bench_fig9_base_size(c);
    bench_fig10_peers(c);
    bench_fig11_to_13_asr_kinds(c);
    bench_exchange(c);
}

criterion_group! {
    name = benches;
    config = configure(&mut Criterion::default());
    targets = all
}
criterion_main!(benches);
