//! ProQL lexer.

use proql_common::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Keyword or bare identifier (`FOR`, `m1`, `leaf_node`, ...).
    Ident(String),
    /// `$x`-style variable.
    Var(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `<-+`
    ArrowPlus,
    /// `<-`
    Arrow,
    /// `<` (as the derivation-step opener `<m1` / `<$p`)
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `+`
    PlusSign,
    /// `*`
    Star,
}

/// Tokenize ProQL source.
pub fn lex(src: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if b.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '[' => {
                out.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Tok::RBracket);
                i += 1;
            }
            '{' => {
                out.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Tok::RBrace);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            ':' => {
                out.push(Tok::Colon);
                i += 1;
            }
            '.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            '+' => {
                out.push(Tok::PlusSign);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            '!' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Ne);
                i += 2;
            }
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            '<' => {
                if src[i..].starts_with("<-+") {
                    out.push(Tok::ArrowPlus);
                    i += 3;
                } else if src[i..].starts_with("<-") {
                    out.push(Tok::Arrow);
                    i += 2;
                } else if src[i..].starts_with("<=") {
                    out.push(Tok::Le);
                    i += 2;
                } else if src[i..].starts_with("<>") {
                    out.push(Tok::Ne);
                    i += 2;
                } else {
                    out.push(Tok::Lt);
                    i += 1;
                }
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                if j == start {
                    return Err(Error::Parse(format!("bare `$` at byte {i}")));
                }
                out.push(Tok::Var(src[start..j].to_string()));
                i = j;
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(Error::Parse("unterminated string literal".into()));
                }
                out.push(Tok::Str(src[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit()
                || (c == '-' && b.get(i + 1).is_some_and(u8::is_ascii_digit)) =>
            {
                let start = i;
                i += 1;
                let mut is_float = false;
                while i < b.len() {
                    let d = b[i] as char;
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.' && !is_float && b.get(i + 1).is_some_and(u8::is_ascii_digit)
                    {
                        is_float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &src[start..i];
                if is_float {
                    out.push(Tok::Float(text.parse().map_err(|_| {
                        Error::Parse(format!("bad float literal {text}"))
                    })?));
                } else {
                    out.push(Tok::Int(
                        text.parse()
                            .map_err(|_| Error::Parse(format!("bad int literal {text}")))?,
                    ));
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Tok::Ident(src[start..i].to_string()));
            }
            other => {
                return Err(Error::Parse(format!(
                    "unexpected character `{other}` at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_q1() {
        let toks = lex("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x").unwrap();
        assert!(toks.contains(&Tok::Ident("FOR".into())));
        assert!(toks.contains(&Tok::Var("x".into())));
        assert!(toks.contains(&Tok::ArrowPlus));
        assert_eq!(toks.iter().filter(|t| **t == Tok::LBracket).count(), 3);
    }

    #[test]
    fn arrow_variants_disambiguate() {
        assert_eq!(lex("<-+").unwrap(), vec![Tok::ArrowPlus]);
        assert_eq!(lex("<-").unwrap(), vec![Tok::Arrow]);
        assert_eq!(lex("<m1").unwrap(), vec![Tok::Lt, Tok::Ident("m1".into())]);
        assert_eq!(lex("<=").unwrap(), vec![Tok::Le]);
        assert_eq!(lex("<>").unwrap(), vec![Tok::Ne]);
    }

    #[test]
    fn literals() {
        assert_eq!(
            lex("42 -7 3.5 'abc'").unwrap(),
            vec![
                Tok::Int(42),
                Tok::Int(-7),
                Tok::Float(3.5),
                Tok::Str("abc".into())
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("FOR -- the for clause\n$x").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn errors() {
        assert!(lex("$").is_err());
        assert!(lex("'oops").is_err());
        assert!(lex("#").is_err());
    }

    #[test]
    fn dotted_attribute_access() {
        let toks = lex("$x.height >= 6").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Var("x".into()),
                Tok::Dot,
                Tok::Ident("height".into()),
                Tok::Ge,
                Tok::Int(6)
            ]
        );
    }
}
