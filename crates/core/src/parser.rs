//! ProQL parser (recursive descent over the token stream).

use crate::ast::*;
use crate::lexer::{lex, Tok};
use proql_common::{Error, Result, Value};
use proql_semiring::{SecurityLevel, SemiringKind};

/// A parsed CASE ladder: the cases plus the optional DEFAULT.
type CaseBlock = (Vec<(Condition, SetValue)>, Option<SetValue>);

/// Parse a full ProQL query.
pub fn parse_query(src: &str) -> Result<Query> {
    let toks = lex(src)?;
    let mut p = P { toks, pos: 0 };
    let q = p.query()?;
    if !p.at_end() {
        return Err(p.err("trailing input after query"));
    }
    validate(&q)?;
    Ok(q)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: &str) -> Error {
        Error::Parse(format!("{msg} (at token {} = {:?})", self.pos, self.peek()))
    }

    fn eat_tok(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, t: &Tok) -> Result<()> {
        if self.eat_tok(t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {t:?}")))
        }
    }

    /// Case-insensitive keyword.
    fn eat_kw(&mut self, kw: &str) -> bool {
        match self.peek() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected keyword {kw}")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn var(&mut self) -> Result<String> {
        match self.bump() {
            Some(Tok::Var(v)) => Ok(v),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected $variable"))
            }
        }
    }

    fn query(&mut self) -> Result<Query> {
        let explain = self.eat_kw("EXPLAIN");
        let analyze = explain && self.eat_kw("ANALYZE");
        let mut q = self.query_body()?;
        q.explain = explain;
        q.analyze = analyze;
        Ok(q)
    }

    fn query_body(&mut self) -> Result<Query> {
        if self.eat_kw("EVALUATE") {
            let name = self.ident()?;
            let semiring = SemiringKind::parse(&name)
                .ok_or_else(|| Error::Parse(format!("unknown semiring {name}")))?;
            self.expect_kw("OF")?;
            self.expect_tok(&Tok::LBrace)?;
            let projection = self.projection()?;
            self.expect_tok(&Tok::RBrace)?;
            let mut leaf_assign = None;
            let mut map_assign = None;
            while self.eat_kw("ASSIGNING") {
                self.expect_kw("EACH")?;
                if self.eat_kw("leaf_node") {
                    if leaf_assign.is_some() {
                        return Err(self.err("duplicate leaf_node assignment"));
                    }
                    leaf_assign = Some(self.leaf_assign()?);
                } else if self.eat_kw("mapping") {
                    if map_assign.is_some() {
                        return Err(self.err("duplicate mapping assignment"));
                    }
                    map_assign = Some(self.map_assign()?);
                } else {
                    return Err(self.err("expected `leaf_node` or `mapping`"));
                }
            }
            Ok(Query {
                explain: false,
                analyze: false,
                evaluate: Some(Evaluate {
                    semiring,
                    leaf_assign,
                    map_assign,
                }),
                projection,
            })
        } else {
            Ok(Query {
                explain: false,
                analyze: false,
                evaluate: None,
                projection: self.projection()?,
            })
        }
    }

    fn projection(&mut self) -> Result<Projection> {
        self.expect_kw("FOR")?;
        let mut for_paths = vec![self.path_expr()?];
        while self.eat_tok(&Tok::Comma) {
            for_paths.push(self.path_expr()?);
        }
        // WHERE and INCLUDE PATH may appear in either order.
        let mut where_cond = None;
        let mut include_paths = Vec::new();
        loop {
            if self.eat_kw("WHERE") {
                if where_cond.replace(self.condition()?).is_some() {
                    return Err(self.err("duplicate WHERE clause"));
                }
            } else if self.eat_kw("INCLUDE") {
                self.expect_kw("PATH")?;
                if !include_paths.is_empty() {
                    return Err(self.err("duplicate INCLUDE PATH clause"));
                }
                include_paths.push(self.path_expr()?);
                while self.eat_tok(&Tok::Comma) {
                    include_paths.push(self.path_expr()?);
                }
            } else {
                break;
            }
        }
        self.expect_kw("RETURN")?;
        let mut return_vars = vec![self.var()?];
        while self.eat_tok(&Tok::Comma) {
            return_vars.push(self.var()?);
        }
        Ok(Projection {
            for_paths,
            where_cond,
            include_paths,
            return_vars,
        })
    }

    fn path_expr(&mut self) -> Result<PathExpr> {
        let start = self.node_pattern()?;
        let mut steps = Vec::new();
        loop {
            let step = match self.peek() {
                Some(Tok::ArrowPlus) => {
                    self.pos += 1;
                    StepPattern::Plus
                }
                Some(Tok::Arrow) => {
                    self.pos += 1;
                    StepPattern::Single(DerivPattern::default())
                }
                Some(Tok::Lt) => {
                    self.pos += 1;
                    match self.bump() {
                        Some(Tok::Ident(m)) => StepPattern::Single(DerivPattern {
                            mapping: Some(m),
                            var: None,
                        }),
                        Some(Tok::Var(v)) => StepPattern::Single(DerivPattern {
                            mapping: None,
                            var: Some(v),
                        }),
                        _ => return Err(self.err("expected mapping name or $var after `<`")),
                    }
                }
                _ => break,
            };
            let node = self.node_pattern()?;
            steps.push((step, node));
        }
        Ok(PathExpr { start, steps })
    }

    fn node_pattern(&mut self) -> Result<NodePattern> {
        self.expect_tok(&Tok::LBracket)?;
        let mut pat = NodePattern::default();
        match self.peek() {
            Some(Tok::Ident(_)) => {
                pat.relation = Some(self.ident()?);
                if let Some(Tok::Var(_)) = self.peek() {
                    pat.var = Some(self.var()?);
                }
            }
            Some(Tok::Var(_)) => {
                pat.var = Some(self.var()?);
            }
            _ => {}
        }
        self.expect_tok(&Tok::RBracket)?;
        Ok(pat)
    }

    /// condition := disjunct (OR disjunct)*
    fn condition(&mut self) -> Result<Condition> {
        let mut parts = vec![self.conjunction()?];
        while self.eat_kw("OR") {
            parts.push(self.conjunction()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Condition::Or(parts)
        })
    }

    fn conjunction(&mut self) -> Result<Condition> {
        let mut parts = vec![self.atom_condition()?];
        while self.eat_kw("AND") {
            parts.push(self.atom_condition()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Condition::And(parts)
        })
    }

    fn atom_condition(&mut self) -> Result<Condition> {
        if self.eat_kw("NOT") {
            return Ok(Condition::Not(Box::new(self.atom_condition()?)));
        }
        if self.eat_tok(&Tok::LParen) {
            let c = self.condition()?;
            self.expect_tok(&Tok::RParen)?;
            return Ok(c);
        }
        let var = self.var()?;
        match self.peek() {
            Some(Tok::Dot) => {
                self.pos += 1;
                let attr = self.ident()?;
                let op = self.cmp_op()?;
                let value = self.literal()?;
                Ok(Condition::AttrCmp {
                    var,
                    attr,
                    op,
                    value,
                })
            }
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("in") => {
                self.pos += 1;
                let relation = self.ident()?;
                Ok(Condition::InRelation { var, relation })
            }
            Some(Tok::Eq) => {
                self.pos += 1;
                let mapping = self.ident()?;
                Ok(Condition::MappingIs {
                    var,
                    mapping,
                    positive: true,
                })
            }
            Some(Tok::Ne) => {
                self.pos += 1;
                let mapping = self.ident()?;
                Ok(Condition::MappingIs {
                    var,
                    mapping,
                    positive: false,
                })
            }
            _ => Err(self.err("expected `.attr`, `in`, `=`, or `<>` after variable")),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        let op = match self.peek() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            _ => return Err(self.err("expected comparison operator")),
        };
        self.pos += 1;
        Ok(op)
    }

    fn literal(&mut self) -> Result<Value> {
        match self.bump() {
            Some(Tok::Int(i)) => Ok(Value::Int(i)),
            Some(Tok::Float(f)) => Ok(Value::Float(f)),
            Some(Tok::Str(s)) => Ok(Value::str(s)),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("null") => Ok(Value::Null),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected literal"))
            }
        }
    }

    fn leaf_assign(&mut self) -> Result<LeafAssign> {
        let var = self.var()?;
        self.expect_tok(&Tok::LBrace)?;
        let (cases, default) = self.case_block()?;
        Ok(LeafAssign {
            var,
            cases,
            default,
        })
    }

    fn map_assign(&mut self) -> Result<MapAssign> {
        let pvar = self.var()?;
        self.expect_tok(&Tok::LParen)?;
        let zvar = self.var()?;
        self.expect_tok(&Tok::RParen)?;
        self.expect_tok(&Tok::LBrace)?;
        let (cases, default) = self.case_block()?;
        Ok(MapAssign {
            pvar,
            zvar,
            cases,
            default,
        })
    }

    fn case_block(&mut self) -> Result<CaseBlock> {
        let mut cases = Vec::new();
        let mut default = None;
        loop {
            if self.eat_kw("CASE") {
                let cond = self.condition()?;
                self.expect_tok(&Tok::Colon)?;
                self.expect_kw("SET")?;
                cases.push((cond, self.set_value()?));
            } else if self.eat_kw("DEFAULT") {
                self.expect_tok(&Tok::Colon)?;
                self.expect_kw("SET")?;
                if default.replace(self.set_value()?).is_some() {
                    return Err(self.err("duplicate DEFAULT"));
                }
            } else if self.eat_tok(&Tok::RBrace) {
                return Ok((cases, default));
            } else {
                return Err(self.err("expected CASE, DEFAULT, or `}`"));
            }
        }
    }

    fn set_value(&mut self) -> Result<SetValue> {
        match self.peek() {
            Some(Tok::Var(_)) => {
                self.var()?;
                if self.eat_tok(&Tok::PlusSign) {
                    let v = self.number()?;
                    Ok(SetValue::InputPlus(v))
                } else if self.eat_tok(&Tok::Star) {
                    let v = self.number()?;
                    Ok(SetValue::InputTimes(v))
                } else {
                    Ok(SetValue::Input)
                }
            }
            Some(Tok::Ident(s)) if SecurityLevel::parse(s).is_some() => {
                let lvl = s.clone();
                self.pos += 1;
                Ok(SetValue::Lit(Value::str(lvl)))
            }
            _ => Ok(SetValue::Lit(self.literal()?)),
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.bump() {
            Some(Tok::Int(i)) => Ok(i as f64),
            Some(Tok::Float(f)) => Ok(f),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected number"))
            }
        }
    }
}

/// Static validation: RETURN variables must be bound by FOR paths.
fn validate(q: &Query) -> Result<()> {
    let mut bound: Vec<&str> = Vec::new();
    for p in &q.projection.for_paths {
        if let Some(v) = &p.start.var {
            bound.push(v);
        }
        for (step, node) in &p.steps {
            if let StepPattern::Single(d) = step {
                if let Some(v) = &d.var {
                    bound.push(v);
                }
            }
            if let Some(v) = &node.var {
                bound.push(v);
            }
        }
    }
    for rv in &q.projection.return_vars {
        if !bound.contains(&rv.as_str()) {
            return Err(Error::Query(format!(
                "RETURN variable ${rv} is not bound in the FOR clause"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1() {
        let q = parse_query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x").unwrap();
        assert!(q.evaluate.is_none());
        assert_eq!(q.projection.for_paths.len(), 1);
        assert_eq!(
            q.projection.for_paths[0].start.relation.as_deref(),
            Some("O")
        );
        assert_eq!(q.projection.include_paths.len(), 1);
        assert_eq!(q.projection.return_vars, vec!["x"]);
        assert!(matches!(
            q.projection.include_paths[0].steps[0].0,
            StepPattern::Plus
        ));
    }

    #[test]
    fn parses_q2_with_endpoint_relation() {
        let q = parse_query("FOR [O $x] <-+ [A $y] INCLUDE PATH [$x] <-+ [$y] RETURN $x").unwrap();
        let path = &q.projection.for_paths[0];
        assert_eq!(path.steps.len(), 1);
        assert_eq!(path.steps[0].1.relation.as_deref(), Some("A"));
        assert_eq!(path.steps[0].1.var.as_deref(), Some("y"));
    }

    #[test]
    fn parses_q3_with_mapping_vars_and_where() {
        let q = parse_query(
            "FOR [$x] <$p [], [$y] <- [$x]
             WHERE $p = m1 OR $p = m2
             INCLUDE PATH [$y] <- [$x]
             RETURN $y",
        )
        .unwrap();
        assert_eq!(q.projection.for_paths.len(), 2);
        match q.projection.where_cond.as_ref().unwrap() {
            Condition::Or(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn parses_q4_common_provenance() {
        let q = parse_query(
            "FOR [O $x] <-+ [$z], [C $y] <-+ [$z]
             INCLUDE PATH [$x] <-+ [], [$y] <-+ []
             RETURN $x, $y",
        )
        .unwrap();
        assert_eq!(q.projection.return_vars, vec!["x", "y"]);
        assert_eq!(q.projection.include_paths.len(), 2);
    }

    #[test]
    fn parses_q7_trust_evaluation() {
        let q = parse_query(
            "EVALUATE TRUST OF {
               FOR [O $x]
               INCLUDE PATH [$x] <-+ []
               RETURN $x
             } ASSIGNING EACH leaf_node $y {
               CASE $y in C : SET true
               CASE $y in A AND $y.height >= 6 : SET false
               DEFAULT : SET true
             } ASSIGNING EACH mapping $p($z) {
               CASE $p = m4 : SET false
               DEFAULT : SET $z
             }",
        )
        .unwrap();
        let ev = q.evaluate.unwrap();
        assert_eq!(ev.semiring, SemiringKind::Trust);
        let leaf = ev.leaf_assign.unwrap();
        assert_eq!(leaf.cases.len(), 2);
        assert_eq!(leaf.default, Some(SetValue::Lit(Value::Bool(true))));
        let map = ev.map_assign.unwrap();
        assert_eq!(map.pvar, "p");
        assert_eq!(map.zvar, "z");
        assert_eq!(map.default, Some(SetValue::Input));
        assert_eq!(map.cases[0].1, SetValue::Lit(Value::Bool(false)));
    }

    #[test]
    fn parses_weight_offsets() {
        let q = parse_query(
            "EVALUATE WEIGHT OF {
               FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
             } ASSIGNING EACH mapping $p($z) {
               CASE $p = m5 : SET $z + 2.5
               DEFAULT : SET $z
             }",
        )
        .unwrap();
        let map = q.evaluate.unwrap().map_assign.unwrap();
        assert_eq!(map.cases[0].1, SetValue::InputPlus(2.5));
    }

    #[test]
    fn parses_named_mapping_step() {
        let q = parse_query("FOR [O $x] <m5 [C $y] RETURN $x").unwrap();
        match &q.projection.for_paths[0].steps[0].0 {
            StepPattern::Single(d) => assert_eq!(d.mapping.as_deref(), Some("m5")),
            other => panic!("expected single step, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unbound_return_var() {
        assert!(parse_query("FOR [O $x] RETURN $zzz").is_err());
    }

    #[test]
    fn rejects_unknown_semiring() {
        assert!(parse_query("EVALUATE KARMA OF { FOR [O $x] RETURN $x }").is_err());
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse_query("FOR [O $x] RETURN $x garbage!").is_err());
    }

    #[test]
    fn where_in_relation_condition() {
        let q = parse_query("FOR [$x] <- [] WHERE $x in O RETURN $x").unwrap();
        match q.projection.where_cond.unwrap() {
            Condition::InRelation { var, relation } => {
                assert_eq!(var, "x");
                assert_eq!(relation, "O");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn security_level_set_values_parse() {
        let q = parse_query(
            "EVALUATE CONFIDENTIALITY OF {
               FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
             } ASSIGNING EACH leaf_node $y {
               CASE $y in A : SET secret
               DEFAULT : SET public
             }",
        )
        .unwrap();
        let leaf = q.evaluate.unwrap().leaf_assign.unwrap();
        assert_eq!(leaf.cases[0].1, SetValue::Lit(Value::str("secret")));
    }
}
