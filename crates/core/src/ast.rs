//! ProQL abstract syntax (paper §3.2).

use proql_common::Value;
use proql_semiring::SemiringKind;
use std::fmt;

/// A full ProQL query: an optional annotation-computation wrapper around a
/// graph projection.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `EXPLAIN` prefix: report the chosen plan (with the optimizer's
    /// estimated rows per operator) instead of executing the query.
    pub explain: bool,
    /// `EXPLAIN ANALYZE`: execute the query for real and annotate the
    /// plan with actual per-operator row counts and wall times next to
    /// the estimates. Only meaningful with `explain`.
    pub analyze: bool,
    /// `EVALUATE <semiring> OF { ... } ASSIGNING ...`, if present.
    pub evaluate: Option<Evaluate>,
    /// The graph-projection block.
    pub projection: Projection,
}

/// The graph-projection part: FOR / WHERE / INCLUDE PATH / RETURN.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    /// Path expressions binding variables (FOR clause).
    pub for_paths: Vec<PathExpr>,
    /// Filter over bound variables (WHERE clause).
    pub where_cond: Option<Condition>,
    /// Paths to copy into the output graph (INCLUDE PATH clause). When
    /// empty, the FOR paths are included (convenient shorthand; the paper's
    /// queries always repeat them).
    pub include_paths: Vec<PathExpr>,
    /// Distinguished variables (RETURN clause).
    pub return_vars: Vec<String>,
}

/// A path expression: a start node pattern and steps leading **from**
/// derived tuples **to** their sources (arrows point left in ProQL).
#[derive(Debug, Clone, PartialEq)]
pub struct PathExpr {
    /// Leftmost (most-derived) node pattern.
    pub start: NodePattern,
    /// Steps: each combines a derivation pattern and the next node pattern
    /// to the right (closer to base data).
    pub steps: Vec<(StepPattern, NodePattern)>,
}

/// A tuple-node pattern `[relation $var]`; both parts optional.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodePattern {
    /// Restrict to a relation.
    pub relation: Option<String>,
    /// Bind the node to a variable.
    pub var: Option<String>,
}

impl NodePattern {
    /// True iff completely unconstrained (`[]`).
    pub fn is_any(&self) -> bool {
        self.relation.is_none() && self.var.is_none()
    }
}

/// A derivation step.
#[derive(Debug, Clone, PartialEq)]
pub enum StepPattern {
    /// One derivation: `<-` (any mapping), `<m1` (named mapping), or
    /// `<$p` (bind the mapping to a variable).
    Single(DerivPattern),
    /// A path of one or more derivations: `<-+`.
    Plus,
}

/// What a single derivation step may match.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DerivPattern {
    /// Restrict to a mapping name.
    pub mapping: Option<String>,
    /// Bind the derivation's mapping to a variable.
    pub var: Option<String>,
}

/// WHERE / CASE conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Conjunction.
    And(Vec<Condition>),
    /// Disjunction.
    Or(Vec<Condition>),
    /// Negation.
    Not(Box<Condition>),
    /// `$x.attr op literal`.
    AttrCmp {
        /// Tuple variable.
        var: String,
        /// Attribute name.
        attr: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal to compare with.
        value: Value,
    },
    /// `$x in Rel` — node belongs to a relation.
    InRelation {
        /// Tuple variable.
        var: String,
        /// Relation name.
        relation: String,
    },
    /// `$p = m1` or `$p <> m1` — mapping-variable comparison.
    MappingIs {
        /// Derivation variable.
        var: String,
        /// Mapping name.
        mapping: String,
        /// False for `<>`.
        positive: bool,
    },
}

/// Comparison operators in conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The storage-engine operator.
    pub fn to_binop(self) -> proql_storage::BinOp {
        match self {
            CmpOp::Eq => proql_storage::BinOp::Eq,
            CmpOp::Ne => proql_storage::BinOp::Ne,
            CmpOp::Lt => proql_storage::BinOp::Lt,
            CmpOp::Le => proql_storage::BinOp::Le,
            CmpOp::Gt => proql_storage::BinOp::Gt,
            CmpOp::Ge => proql_storage::BinOp::Ge,
        }
    }
}

/// The annotation-computation wrapper.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluate {
    /// Which semiring.
    pub semiring: SemiringKind,
    /// `ASSIGNING EACH leaf_node $y { ... }`.
    pub leaf_assign: Option<LeafAssign>,
    /// `ASSIGNING EACH mapping $p($z) { ... }`.
    pub map_assign: Option<MapAssign>,
}

/// Leaf-node value assignment: a switch over CASE conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafAssign {
    /// The iteration variable (`$y`).
    pub var: String,
    /// Cases, tried in order; first match wins (paper footnote 3).
    pub cases: Vec<(Condition, SetValue)>,
    /// Optional DEFAULT; absent means the semiring's ⊗-identity.
    pub default: Option<SetValue>,
}

/// Mapping-function assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct MapAssign {
    /// The mapping variable (`$p`).
    pub pvar: String,
    /// The input-value variable (`$z`).
    pub zvar: String,
    /// Cases over the mapping name.
    pub cases: Vec<(Condition, SetValue)>,
    /// Optional DEFAULT; absent means the identity function.
    pub default: Option<SetValue>,
}

/// The value of a `SET` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum SetValue {
    /// `SET true` / `SET false` / `SET 3.5` / `SET secret` — a literal
    /// interpreted in the query's semiring.
    Lit(Value),
    /// `SET $z` — pass the input through (identity mapping function).
    Input,
    /// `SET $z + c` — add a constant (weight semiring).
    InputPlus(f64),
    /// `SET $z * k` — scale (counting semiring).
    InputTimes(f64),
}

impl fmt::Display for NodePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        if let Some(r) = &self.relation {
            write!(f, "{r}")?;
            if self.var.is_some() {
                write!(f, " ")?;
            }
        }
        if let Some(v) = &self.var {
            write!(f, "${v}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for StepPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepPattern::Plus => write!(f, "<-+"),
            StepPattern::Single(d) => {
                if let Some(m) = &d.mapping {
                    write!(f, "<{m}")
                } else if let Some(v) = &d.var {
                    write!(f, "<${v}")
                } else {
                    write!(f, "<-")
                }
            }
        }
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)?;
        for (s, n) in &self.steps {
            write!(f, " {s} {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip_shapes() {
        let p = PathExpr {
            start: NodePattern {
                relation: Some("O".into()),
                var: Some("x".into()),
            },
            steps: vec![
                (StepPattern::Plus, NodePattern::default()),
                (
                    StepPattern::Single(DerivPattern {
                        mapping: Some("m1".into()),
                        var: None,
                    }),
                    NodePattern {
                        relation: Some("A".into()),
                        var: Some("y".into()),
                    },
                ),
            ],
        };
        assert_eq!(p.to_string(), "[O $x] <-+ [] <m1 [A $y]");
    }

    #[test]
    fn node_pattern_any() {
        assert!(NodePattern::default().is_any());
        assert!(!NodePattern {
            relation: Some("A".into()),
            var: None
        }
        .is_any());
    }
}
