//! ProQL → conjunctive rules over provenance relations (paper §4.2).
//!
//! The pipeline: match the query's path expressions against the provenance
//! schema graph, then **unfold** (§4.2.4): every public-relation atom is
//! repeatedly replaced by the alternatives that derive it — the relation's
//! local-contribution table, or `P_m` + source atoms for each mapping `m`
//! deriving it — until only provenance-relation and local-contribution
//! atoms remain. Each complete alternative becomes one conjunctive
//! [`QueryRule`]; the union of all rules is the query.
//!
//! The number of unfolded rules grows exponentially with the number of
//! peers holding local data (paper Figures 7–8) — that is inherent to the
//! approach, not an implementation artifact.

use crate::ast::{CmpOp, Condition, NodePattern, PathExpr, Query, StepPattern};
use proql_common::{Error, Result, Value};
use proql_datalog::ast::{Atom, Term};
use proql_datalog::unfold::{apply_term, rename_apart, unify_atoms, Subst};
use proql_provgraph::{ProvenanceSystem, SchemaGraph};
use std::collections::HashMap;

/// One provenance-relation occurrence inside a rule: executing the rule and
/// resolving `terms` against a result row yields one `P_mapping` row — one
/// derivation node of the output subgraph.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvRecord {
    /// Mapping name.
    pub mapping: String,
    /// The provenance-relation columns as terms over the rule's variables.
    pub terms: Vec<Term>,
    /// True when this record belongs to an INCLUDE PATH expression (it is
    /// copied to the output graph).
    pub output: bool,
}

/// Where a pattern variable is bound inside a rule.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeBinding {
    /// The node's relation.
    pub relation: String,
    /// The full term vector of the node's tuple (positionally matching the
    /// relation's attributes).
    pub terms: Vec<Term>,
}

/// A runtime condition over rule variables (compiled to a plan filter).
#[derive(Debug, Clone, PartialEq)]
pub enum VarCond {
    /// Statically known truth value.
    Lit(bool),
    /// `var op value`.
    Cmp {
        /// Rule variable.
        var: String,
        /// Operator.
        op: CmpOp,
        /// Literal.
        value: Value,
    },
    /// Conjunction.
    And(Vec<VarCond>),
    /// Disjunction.
    Or(Vec<VarCond>),
    /// Negation.
    Not(Box<VarCond>),
}

impl VarCond {
    fn simplify(self) -> VarCond {
        match self {
            VarCond::And(parts) => {
                let mut out = Vec::new();
                for p in parts {
                    match p.simplify() {
                        VarCond::Lit(true) => {}
                        VarCond::Lit(false) => return VarCond::Lit(false),
                        other => out.push(other),
                    }
                }
                match out.len() {
                    0 => VarCond::Lit(true),
                    1 => out.pop().unwrap(),
                    _ => VarCond::And(out),
                }
            }
            VarCond::Or(parts) => {
                let mut out = Vec::new();
                for p in parts {
                    match p.simplify() {
                        VarCond::Lit(false) => {}
                        VarCond::Lit(true) => return VarCond::Lit(true),
                        other => out.push(other),
                    }
                }
                match out.len() {
                    0 => VarCond::Lit(false),
                    1 => out.pop().unwrap(),
                    _ => VarCond::Or(out),
                }
            }
            VarCond::Not(inner) => match inner.simplify() {
                VarCond::Lit(b) => VarCond::Lit(!b),
                other => VarCond::Not(Box::new(other)),
            },
            leaf => leaf,
        }
    }
}

/// One unfolded conjunctive rule.
#[derive(Debug, Clone)]
pub struct QueryRule {
    /// Body atoms: provenance relations, local-contribution tables, and
    /// (for single-step patterns) public relations.
    pub atoms: Vec<Atom>,
    /// Provenance occurrences (the derivation nodes this rule witnesses).
    pub prov_records: Vec<ProvRecord>,
    /// Pattern-variable bindings.
    pub node_bindings: HashMap<String, NodeBinding>,
    /// Derivation-variable bindings (`$p` → mapping name).
    pub mapping_bindings: HashMap<String, String>,
    /// Residual WHERE condition (statically undecidable parts).
    pub condition: Option<VarCond>,
}

/// Rewrites rule bodies before compilation — the hook ASR rewriting plugs
/// into (paper §5.2, `unfoldASRs`).
pub trait BodyRewriter {
    /// Rewrite a body; must preserve semantics and keep every variable that
    /// occurs in the input body occurring in the output.
    fn rewrite(&self, body: Vec<Atom>) -> Result<Vec<Atom>>;
}

/// Translation statistics (the paper's "number of unfolded rules" and the
/// inputs to its Figures 7–8).
#[derive(Debug, Clone, Default)]
pub struct TranslateStats {
    /// Unfolded conjunctive rules produced.
    pub rules: usize,
    /// Rules dropped by static WHERE evaluation.
    pub dropped: usize,
    /// Total body atoms across rules.
    pub total_atoms: usize,
}

/// The result of translation.
#[derive(Debug, Clone)]
pub struct Translation {
    /// The unfolded rules.
    pub rules: Vec<QueryRule>,
    /// Statistics.
    pub stats: TranslateStats,
    /// The query's RETURN variables.
    pub return_vars: Vec<String>,
}

/// Tuning knobs.
#[derive(Debug, Clone)]
pub struct TranslateOptions {
    /// Abort when more rules than this would be produced.
    pub max_rules: usize,
    /// Maximum unfolding depth along one branch.
    pub max_depth: usize,
    /// Maximum `<-+` linear-path length when the endpoint is constrained.
    pub max_plus_len: usize,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        TranslateOptions {
            max_rules: 200_000,
            max_depth: 64,
            max_plus_len: 24,
        }
    }
}

/// Translate a parsed query against a provenance system.
pub fn translate(
    sys: &ProvenanceSystem,
    query: &Query,
    rewriter: Option<&dyn BodyRewriter>,
    opts: &TranslateOptions,
) -> Result<Translation> {
    let mut tr = Translator {
        sys,
        graph: sys.schema_graph(),
        fresh: 0,
        opts,
        produced: 0,
    };
    tr.run(query, rewriter)
}

/// A rule under construction. Atoms use tombstones so indices stay stable
/// across unfolding steps.
#[derive(Debug, Clone, Default)]
struct Partial {
    atoms: Vec<Option<Atom>>,
    prov: Vec<ProvRecord>,
    nodes: HashMap<String, NodeBinding>,
    maps: HashMap<String, String>,
}

impl Partial {
    fn apply_subst(&mut self, s: &Subst) {
        for atom in self.atoms.iter_mut().flatten() {
            *atom = proql_datalog::unfold::substitute_atom(s, atom);
        }
        for rec in &mut self.prov {
            for t in &mut rec.terms {
                *t = apply_term(s, t);
            }
        }
        for nb in self.nodes.values_mut() {
            for t in &mut nb.terms {
                *t = apply_term(s, t);
            }
        }
    }

    fn push_atom(&mut self, atom: Atom) -> usize {
        self.atoms.push(Some(atom));
        self.atoms.len() - 1
    }

    fn atom(&self, idx: usize) -> &Atom {
        self.atoms[idx].as_ref().expect("atom index must be live")
    }
}

struct Translator<'a> {
    sys: &'a ProvenanceSystem,
    graph: SchemaGraph,
    fresh: usize,
    opts: &'a TranslateOptions,
    produced: usize,
}

impl<'a> Translator<'a> {
    fn fresh_suffix(&mut self) -> String {
        self.fresh += 1;
        format!("u{}", self.fresh)
    }

    fn fresh_var(&mut self) -> String {
        self.fresh += 1;
        format!("v{}", self.fresh)
    }

    fn budget(&mut self, n: usize) -> Result<()> {
        self.produced += n;
        if self.produced > self.opts.max_rules {
            return Err(Error::Query(format!(
                "query unfolds into more than {} rules; narrow the pattern \
                 or raise TranslateOptions::max_rules",
                self.opts.max_rules
            )));
        }
        Ok(())
    }

    fn run(&mut self, query: &Query, rewriter: Option<&dyn BodyRewriter>) -> Result<Translation> {
        let proj = &query.projection;
        // Pre-pass: relation constraints per variable, from node patterns
        // across all paths and from top-level `$x in R` conjuncts.
        let mut rel_constraints: HashMap<String, String> = HashMap::new();
        for p in proj.for_paths.iter().chain(&proj.include_paths) {
            collect_relation_constraints(p, &mut rel_constraints)?;
        }
        if let Some(cond) = &proj.where_cond {
            collect_where_constraints(cond, &mut rel_constraints)?;
        }

        // A single-node FOR path whose variable also occurs in an INCLUDE
        // path is subsumed by that path's expansion (its relation
        // constraint was already collected); expanding it separately would
        // only add a redundant join with the public relation.
        let include_vars: Vec<&str> = proj.include_paths.iter().flat_map(path_vars).collect();
        let all_paths: Vec<(&PathExpr, bool)> = proj
            .for_paths
            .iter()
            .filter(|p| {
                !(p.steps.is_empty()
                    && p.start
                        .var
                        .as_deref()
                        .is_some_and(|v| include_vars.contains(&v)))
            })
            .map(|p| (p, proj.include_paths.is_empty()))
            .chain(proj.include_paths.iter().map(|p| (p, true)))
            .collect();

        // Expand every path and merge on shared variables.
        let mut combined: Option<Vec<Partial>> = None;
        for (p, output) in &all_paths {
            let expansions = self.expand_path(p, *output, &rel_constraints)?;
            combined = Some(match combined {
                None => expansions,
                Some(done) => self.merge(done, expansions)?,
            });
        }
        let partials = combined.unwrap_or_default();

        // Apply WHERE and finalize.
        let mut rules = Vec::new();
        let mut stats = TranslateStats::default();
        for partial in partials {
            let cond = match &proj.where_cond {
                None => None,
                Some(c) => {
                    let vc = lower_condition(self.sys, c, &partial)?.simplify();
                    match vc {
                        VarCond::Lit(false) => {
                            stats.dropped += 1;
                            continue;
                        }
                        VarCond::Lit(true) => None,
                        other => Some(other),
                    }
                }
            };
            // Check RETURN vars are bound in this alternative.
            if !proj
                .return_vars
                .iter()
                .all(|v| partial.nodes.contains_key(v))
            {
                stats.dropped += 1;
                continue;
            }
            let mut atoms: Vec<Atom> = partial.atoms.iter().flatten().cloned().collect();
            if let Some(rw) = rewriter {
                atoms = rw.rewrite(atoms)?;
            }
            stats.total_atoms += atoms.len();
            rules.push(QueryRule {
                atoms,
                prov_records: partial.prov,
                node_bindings: partial.nodes,
                mapping_bindings: partial.maps,
                condition: cond,
            });
        }
        stats.rules = rules.len();
        Ok(Translation {
            rules,
            stats,
            return_vars: proj.return_vars.clone(),
        })
    }

    /// All public relations (not local contributions, not provenance).
    fn public_relations(&self) -> Vec<String> {
        self.graph
            .relations()
            .iter()
            .filter(|r| !self.sys.is_local_relation(r) && !r.starts_with("P_"))
            .cloned()
            .collect()
    }

    fn start_candidates(
        &self,
        pattern: &NodePattern,
        constraints: &HashMap<String, String>,
    ) -> Vec<String> {
        if let Some(r) = &pattern.relation {
            return vec![r.clone()];
        }
        if let Some(v) = &pattern.var {
            if let Some(r) = constraints.get(v) {
                return vec![r.clone()];
            }
        }
        self.public_relations()
    }

    fn expand_path(
        &mut self,
        path: &PathExpr,
        output: bool,
        constraints: &HashMap<String, String>,
    ) -> Result<Vec<Partial>> {
        // Seed: one partial per candidate start relation.
        let mut frontier_states: Vec<(Partial, usize)> = Vec::new();
        for rel in self.start_candidates(&path.start, constraints) {
            if !self.graph.has_relation(&rel) {
                continue;
            }
            let arity = match self.sys.db.schema_of(&rel) {
                Ok(s) => s.arity(),
                Err(_) => continue,
            };
            let mut partial = Partial::default();
            let terms: Vec<Term> = (0..arity).map(|_| Term::var(self.fresh_var())).collect();
            let idx = partial.push_atom(Atom::new(rel.clone(), terms.clone()));
            if let Some(v) = &path.start.var {
                partial.nodes.insert(
                    v.clone(),
                    NodeBinding {
                        relation: rel.clone(),
                        terms,
                    },
                );
            }
            frontier_states.push((partial, idx));
        }

        for (step_idx, (step, node)) in path.steps.iter().enumerate() {
            let is_last = step_idx + 1 == path.steps.len();
            let mut next: Vec<(Partial, usize)> = Vec::new();
            let mut finished: Vec<Partial> = Vec::new();
            match step {
                StepPattern::Single(dp) => {
                    for (partial, fidx) in frontier_states {
                        let rel = partial.atom(fidx).relation.clone();
                        let mappings: Vec<String> = self
                            .graph
                            .mappings_deriving(&rel)
                            .into_iter()
                            .map(str::to_string)
                            .collect();
                        for m in mappings {
                            if self.graph.is_local_mapping(&m) {
                                continue;
                            }
                            if let Some(want) = &dp.mapping {
                                if *want != m {
                                    continue;
                                }
                            }
                            if let Some((p2, srcs)) =
                                self.unfold_via(partial.clone(), fidx, &m, output)?
                            {
                                for sidx in srcs {
                                    let srel = p2.atom(sidx).relation.clone();
                                    if !node_matches(node, &srel, constraints) {
                                        continue;
                                    }
                                    let mut p3 = p2.clone();
                                    if let Some(dv) = &dp.var {
                                        if let Some(prev) = p3.maps.get(dv) {
                                            if *prev != m {
                                                continue;
                                            }
                                        }
                                        p3.maps.insert(dv.clone(), m.clone());
                                    }
                                    bind_node(&mut p3, node, sidx)?;
                                    next.push((p3, sidx));
                                }
                            }
                        }
                    }
                }
                StepPattern::Plus => {
                    if node.is_any() {
                        // Full derivation closure to the leaves.
                        if !is_last {
                            return Err(Error::Query(
                                "`<-+ []` must be the final step of a path expression".into(),
                            ));
                        }
                        for (partial, fidx) in frontier_states {
                            let closed =
                                self.close_fully(partial, fidx, &mut Vec::new(), 0, output)?;
                            finished.extend(closed);
                        }
                        return Ok(finished);
                    }
                    // Constrained endpoint: enumerate linear mapping paths.
                    for (partial, fidx) in frontier_states {
                        let mut layer: Vec<(Partial, usize, Vec<String>)> =
                            vec![(partial, fidx, Vec::new())];
                        for _depth in 0..self.opts.max_plus_len {
                            let mut next_layer = Vec::new();
                            for (p, fi, used) in layer {
                                let rel = p.atom(fi).relation.clone();
                                let mappings: Vec<String> = self
                                    .graph
                                    .mappings_deriving(&rel)
                                    .into_iter()
                                    .map(str::to_string)
                                    .collect();
                                for m in mappings {
                                    if self.graph.is_local_mapping(&m) || used.contains(&m) {
                                        continue;
                                    }
                                    if let Some((p2, srcs)) =
                                        self.unfold_via(p.clone(), fi, &m, output)?
                                    {
                                        for sidx in srcs {
                                            let srel = p2.atom(sidx).relation.clone();
                                            // Emit if the endpoint matches.
                                            if node_matches(node, &srel, constraints) {
                                                let mut done = p2.clone();
                                                bind_node(&mut done, node, sidx)?;
                                                self.budget(1)?;
                                                next.push((done, sidx));
                                            }
                                            // And keep walking deeper.
                                            let mut used2 = used.clone();
                                            used2.push(m.clone());
                                            next_layer.push((p2.clone(), sidx, used2));
                                        }
                                    }
                                }
                            }
                            layer = next_layer;
                            if layer.is_empty() {
                                break;
                            }
                        }
                    }
                }
            }
            frontier_states = next;
        }
        Ok(frontier_states.into_iter().map(|(p, _)| p).collect())
    }

    /// Replace `partial.atoms[fidx]` (a public-relation atom) by the
    /// translation body of mapping `m` (paper Example 4.2): the `P_m` atom
    /// plus `m`'s source atoms, under the unifier of `m`'s head with the
    /// replaced atom. Returns the new source-atom indices.
    fn unfold_via(
        &mut self,
        mut partial: Partial,
        fidx: usize,
        mapping: &str,
        output: bool,
    ) -> Result<Option<(Partial, Vec<usize>)>> {
        let rule = self
            .sys
            .rule_for(mapping)
            .ok_or_else(|| Error::NotFound(format!("mapping {mapping}")))?;
        let spec = self
            .sys
            .spec_for(mapping)
            .ok_or_else(|| Error::NotFound(format!("spec for {mapping}")))?;
        // Goal-directed pruning: a materialized but empty provenance table
        // cannot witness any derivation.
        if !spec.superfluous {
            if let Ok(t) = self.sys.db.table(&spec.prov_rel) {
                if t.is_empty() {
                    return Ok(None);
                }
            }
        }
        let suffix = self.fresh_suffix();
        let renamed = rename_apart(rule, &suffix);
        let target = partial.atom(fidx).clone();
        let Some(head) = renamed.heads.iter().find(|h| h.relation == target.relation) else {
            return Ok(None);
        };
        let Some(subst) = unify_atoms(&target, head) else {
            return Ok(None);
        };
        partial.apply_subst(&subst);
        partial.atoms[fidx] = None;

        let p_terms: Vec<Term> = spec
            .columns
            .iter()
            .map(|c| apply_term(&subst, &Term::var(format!("{c}#{suffix}"))))
            .collect();
        partial.push_atom(Atom::new(spec.prov_rel.clone(), p_terms.clone()));
        partial.prov.push(ProvRecord {
            mapping: mapping.to_string(),
            terms: p_terms,
            output,
        });
        let mut src_idxs = Vec::new();
        for b in &renamed.body {
            let b = proql_datalog::unfold::substitute_atom(&subst, b);
            src_idxs.push(partial.push_atom(b));
        }
        Ok(Some((partial, src_idxs)))
    }

    /// Fully unfold the atom at `fidx` down to local contributions,
    /// returning one partial per complete alternative.
    fn close_fully(
        &mut self,
        partial: Partial,
        fidx: usize,
        _branch: &mut Vec<String>,
        _depth: usize,
        output: bool,
    ) -> Result<Vec<Partial>> {
        let mut pending = std::collections::VecDeque::new();
        pending.push_back((fidx, std::rc::Rc::new(Vec::new())));
        self.close_worklist(partial, pending, 0, output)
    }

    /// Worklist closure: unfold every pending public atom until only
    /// provenance/local atoms remain. Each pending entry carries its
    /// ancestor-mapping set (prevents cycling along one derivation branch,
    /// as in the paper's pattern matching). Atoms coalesced away by the
    /// key-functional-dependency rule (see [`coalesce_atoms`]) are skipped
    /// — this is what keeps pair-unit (multi-head) mappings from unfolding
    /// their shared subtree twice.
    fn close_worklist(
        &mut self,
        partial: Partial,
        mut pending: std::collections::VecDeque<(usize, std::rc::Rc<Vec<String>>)>,
        depth: usize,
        output: bool,
    ) -> Result<Vec<Partial>> {
        if depth > self.opts.max_depth {
            return Err(Error::Query(format!(
                "unfolding exceeded depth {} (cyclic mappings?)",
                self.opts.max_depth
            )));
        }
        // Breadth-first: siblings are processed before their descendants so
        // that a second head of a pair mapping coalesces against the still
        // pending first subtree instead of re-expanding it. Skip tombstoned
        // (coalesced) atoms.
        let (fidx, ancestors) = loop {
            match pending.pop_front() {
                None => return Ok(vec![partial]),
                Some((i, anc)) => {
                    if partial.atoms[i].is_some() {
                        break (i, anc);
                    }
                }
            }
        };
        let rel = partial.atom(fidx).relation.clone();
        if rel.starts_with("P_") || self.sys.is_local_relation(&rel) {
            // Already a leaf (can happen after coalescing).
            return self.close_worklist(partial, pending, depth, output);
        }
        let mut alternatives: Vec<Partial> = Vec::new();

        // Alternative 1: the tuple is a local contribution (only when the
        // peer actually has local data — goal-directed, and the source of
        // the paper's "number of peers with data" scaling).
        if let Some(local) = self.sys.local_of(&rel) {
            let nonempty = self
                .sys
                .db
                .table(&local)
                .map(|t| !t.is_empty())
                .unwrap_or(false);
            if nonempty {
                let lname = format!("L_{rel}");
                if let Some((mut p2, srcs)) =
                    self.unfold_via(partial.clone(), fidx, &lname, output)?
                {
                    debug_assert_eq!(srcs.len(), 1);
                    if coalesce_atoms(self.sys, &mut p2) {
                        self.budget(1)?;
                        alternatives.extend(self.close_worklist(
                            p2,
                            pending.clone(),
                            depth + 1,
                            output,
                        )?);
                    }
                }
            }
        }

        // Alternative 2..k: unfold through each non-local mapping not yet
        // used on this branch.
        let mappings: Vec<String> = self
            .graph
            .mappings_deriving(&rel)
            .into_iter()
            .map(str::to_string)
            .filter(|m| !self.graph.is_local_mapping(m) && !ancestors.contains(m))
            .collect();
        for m in mappings {
            if let Some((mut p2, srcs)) = self.unfold_via(partial.clone(), fidx, &m, output)? {
                if !coalesce_atoms(self.sys, &mut p2) {
                    continue; // key conflict: alternative infeasible
                }
                let mut anc2 = (*ancestors).clone();
                anc2.push(m.clone());
                let anc2 = std::rc::Rc::new(anc2);
                let mut next_pending = pending.clone();
                for s in srcs {
                    next_pending.push_back((s, anc2.clone()));
                }
                alternatives.extend(self.close_worklist(p2, next_pending, depth + 1, output)?);
            }
        }
        Ok(alternatives)
    }

    /// Merge two expansion sets on shared variables (tuple variables unify
    /// their atoms' terms; derivation variables must agree on the mapping).
    fn merge(&mut self, left: Vec<Partial>, right: Vec<Partial>) -> Result<Vec<Partial>> {
        let mut out = Vec::new();
        for l in &left {
            for r in &right {
                if let Some(merged) = merge_pair(self.sys, l, r)? {
                    out.push(merged);
                }
            }
        }
        self.budget(out.len())?;
        Ok(out)
    }
}

fn merge_pair(sys: &ProvenanceSystem, l: &Partial, r: &Partial) -> Result<Option<Partial>> {
    // Derivation variables must agree.
    for (v, m) in &r.maps {
        if let Some(prev) = l.maps.get(v) {
            if prev != m {
                return Ok(None);
            }
        }
    }
    let mut merged = l.clone();
    let offset_prov = merged.prov.len();
    let _ = offset_prov;
    merged.atoms.extend(r.atoms.iter().cloned());
    merged.prov.extend(r.prov.iter().cloned());
    for (v, m) in &r.maps {
        merged.maps.insert(v.clone(), m.clone());
    }
    // Unify shared tuple variables.
    let shared: Vec<String> = r
        .nodes
        .keys()
        .filter(|v| l.nodes.contains_key(*v))
        .cloned()
        .collect();
    for v in &shared {
        let lb = merged.nodes.get(v).cloned().expect("left binding");
        let rb = r.nodes.get(v).expect("right binding");
        if lb.relation != rb.relation {
            return Ok(None);
        }
        // Bring the right binding's terms into merged space (they were
        // copied verbatim — variables are globally fresh, so no capture).
        let la = Atom::new(lb.relation.clone(), lb.terms.clone());
        let ra = Atom::new(rb.relation.clone(), rb.terms.clone());
        let Some(subst) = unify_atoms(&ra, &la) else {
            return Ok(None);
        };
        merged.apply_subst(&subst);
    }
    for (v, b) in &r.nodes {
        if !merged.nodes.contains_key(v) {
            merged.nodes.insert(v.clone(), b.clone());
        }
    }
    // Coalesce duplicate atoms introduced by unification (e.g. a bare FOR
    // single-node atom merged into an INCLUDE expansion of the same node).
    if !coalesce_atoms(sys, &mut merged) {
        return Ok(None);
    }
    Ok(Some(merged))
}

/// Coalesce atoms denoting the same tuple. Under set semantics a
/// relation's key functionally determines the tuple, so two atoms of the
/// same relation whose *key* terms are syntactically equal must match the
/// same row: their remaining terms are unified and one atom is dropped.
/// Returns `false` when the unification fails (two different constants in
/// a non-key position with the same key), which makes the whole rule
/// unsatisfiable.
///
/// Besides shrinking plans, this is what lets multi-head ("pair") mappings
/// unfold as a unit: the second head's unfolding re-creates the same
/// `P_m` atom and the same source atoms, and they all collapse here.
fn coalesce_atoms(sys: &ProvenanceSystem, p: &mut Partial) -> bool {
    loop {
        let live: Vec<usize> = (0..p.atoms.len())
            .filter(|&i| p.atoms[i].is_some())
            .collect();
        let mut action: Option<(usize, usize)> = None;
        'outer: for (pos, &i) in live.iter().enumerate() {
            for &j in &live[pos + 1..] {
                let a = p.atom(i);
                let b = p.atom(j);
                if a.relation != b.relation || a.arity() != b.arity() {
                    continue;
                }
                if a == b {
                    action = Some((i, j));
                    break 'outer;
                }
                let Ok(schema) = sys.db.schema_of(&a.relation) else {
                    continue;
                };
                if schema.arity() != a.arity() {
                    continue;
                }
                let key = schema.effective_key();
                if key.len() < a.arity() && key.iter().all(|&k| a.terms[k] == b.terms[k]) {
                    action = Some((i, j));
                    break 'outer;
                }
            }
        }
        match action {
            None => return true,
            Some((i, j)) => {
                let a = p.atom(i).clone();
                let b = p.atom(j).clone();
                if a == b {
                    p.atoms[j] = None;
                    continue;
                }
                match unify_atoms(&a, &b) {
                    Some(subst) => {
                        p.apply_subst(&subst);
                        p.atoms[j] = None;
                    }
                    None => return false,
                }
            }
        }
    }
}

fn node_matches(
    pattern: &NodePattern,
    relation: &str,
    constraints: &HashMap<String, String>,
) -> bool {
    if let Some(r) = &pattern.relation {
        if r != relation {
            return false;
        }
    }
    if let Some(v) = &pattern.var {
        if let Some(r) = constraints.get(v) {
            if r != relation {
                return false;
            }
        }
    }
    true
}

fn bind_node(partial: &mut Partial, pattern: &NodePattern, atom_idx: usize) -> Result<()> {
    if let Some(v) = &pattern.var {
        let atom = partial.atom(atom_idx).clone();
        if let Some(existing) = partial.nodes.get(v) {
            // Re-binding the same variable: unify (same node).
            if existing.relation != atom.relation {
                return Err(Error::Query(format!(
                    "variable ${v} bound to two different relations"
                )));
            }
            let ea = Atom::new(existing.relation.clone(), existing.terms.clone());
            if let Some(subst) = unify_atoms(&atom, &ea) {
                partial.apply_subst(&subst);
            }
        } else {
            partial.nodes.insert(
                v.clone(),
                NodeBinding {
                    relation: atom.relation,
                    terms: atom.terms,
                },
            );
        }
    }
    Ok(())
}

/// All variables a path expression binds.
fn path_vars(path: &PathExpr) -> Vec<&str> {
    let mut out: Vec<&str> = Vec::new();
    if let Some(v) = &path.start.var {
        out.push(v);
    }
    for (step, node) in &path.steps {
        if let StepPattern::Single(d) = step {
            if let Some(v) = &d.var {
                out.push(v);
            }
        }
        if let Some(v) = &node.var {
            out.push(v);
        }
    }
    out
}

fn collect_relation_constraints(path: &PathExpr, out: &mut HashMap<String, String>) -> Result<()> {
    let mut add = |var: &Option<String>, rel: &Option<String>| -> Result<()> {
        if let (Some(v), Some(r)) = (var, rel) {
            if let Some(prev) = out.get(v) {
                if prev != r {
                    return Err(Error::Query(format!(
                        "variable ${v} constrained to both {prev} and {r}"
                    )));
                }
            }
            out.insert(v.clone(), r.clone());
        }
        Ok(())
    };
    add(&path.start.var, &path.start.relation)?;
    for (_, node) in &path.steps {
        add(&node.var, &node.relation)?;
    }
    Ok(())
}

fn collect_where_constraints(cond: &Condition, out: &mut HashMap<String, String>) -> Result<()> {
    match cond {
        Condition::And(parts) => {
            for p in parts {
                collect_where_constraints(p, out)?;
            }
            Ok(())
        }
        Condition::InRelation { var, relation } => {
            if let Some(prev) = out.get(var) {
                if prev != relation {
                    return Err(Error::Query(format!(
                        "variable ${var} constrained to both {prev} and {relation}"
                    )));
                }
            }
            out.insert(var.clone(), relation.clone());
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Lower a WHERE condition into a [`VarCond`] for one rule alternative,
/// folding statically decidable parts.
fn lower_condition(sys: &ProvenanceSystem, cond: &Condition, partial: &Partial) -> Result<VarCond> {
    Ok(match cond {
        Condition::And(parts) => VarCond::And(
            parts
                .iter()
                .map(|p| lower_condition(sys, p, partial))
                .collect::<Result<_>>()?,
        ),
        Condition::Or(parts) => VarCond::Or(
            parts
                .iter()
                .map(|p| lower_condition(sys, p, partial))
                .collect::<Result<_>>()?,
        ),
        Condition::Not(inner) => VarCond::Not(Box::new(lower_condition(sys, inner, partial)?)),
        Condition::MappingIs {
            var,
            mapping,
            positive,
        } => {
            let bound = partial
                .maps
                .get(var)
                .ok_or_else(|| Error::Query(format!("derivation variable ${var} is not bound")))?;
            VarCond::Lit((bound == mapping) == *positive)
        }
        Condition::InRelation { var, relation } => {
            let b = partial
                .nodes
                .get(var)
                .ok_or_else(|| Error::Query(format!("tuple variable ${var} is not bound")))?;
            VarCond::Lit(&b.relation == relation)
        }
        Condition::AttrCmp {
            var,
            attr,
            op,
            value,
        } => {
            let b = partial
                .nodes
                .get(var)
                .ok_or_else(|| Error::Query(format!("tuple variable ${var} is not bound")))?;
            let schema = sys.db.schema_of(&b.relation)?;
            let pos = schema.position(attr).ok_or_else(|| {
                Error::Query(format!("relation {} has no attribute {attr}", b.relation))
            })?;
            match &b.terms[pos] {
                Term::Var(v) => VarCond::Cmp {
                    var: v.clone(),
                    op: *op,
                    value: value.clone(),
                },
                Term::Const(c) => VarCond::Lit(static_cmp(c, *op, value)),
                Term::Skolem(..) => {
                    return Err(Error::Query(
                        "cannot compare a Skolem-valued attribute".into(),
                    ))
                }
            }
        }
    })
}

fn static_cmp(a: &Value, op: CmpOp, b: &Value) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use proql_provgraph::system::example_2_1;

    fn translate_str(q: &str) -> Translation {
        let sys = example_2_1().unwrap();
        translate(
            &sys,
            &parse_query(q).unwrap(),
            None,
            &TranslateOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn q1_unfolds_all_derivations_of_o() {
        let t = translate_str("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x");
        assert!(t.stats.rules > 0);
        // Every rule bottoms out at provenance/local atoms only.
        for rule in &t.rules {
            for a in &rule.atoms {
                assert!(
                    a.relation.starts_with("P_") || a.relation.ends_with("_l"),
                    "unexpected public atom {} in {:?}",
                    a.relation,
                    rule.atoms
                );
            }
            assert!(rule.node_bindings.contains_key("x"));
            assert!(!rule.prov_records.is_empty());
        }
        // O has derivations via m4 (from A) and m5 (from A+C, with C itself
        // via local or m1): at least 3 alternatives.
        assert!(t.stats.rules >= 3, "got {} rules", t.stats.rules);
    }

    #[test]
    fn q2_restricts_to_paths_involving_a() {
        let t = translate_str("FOR [O $x] <-+ [A $y] INCLUDE PATH [$x] <-+ [$y] RETURN $x");
        assert!(t.stats.rules > 0);
        for rule in &t.rules {
            assert_eq!(rule.node_bindings["y"].relation, "A");
        }
    }

    #[test]
    fn named_step_unfolds_once() {
        let t = translate_str("FOR [O $x] <m5 [C $y] RETURN $x, $y");
        assert_eq!(t.stats.rules, 1);
        let rule = &t.rules[0];
        // P_m5 + A + C atoms; C stays public (single step only).
        let rels: Vec<&str> = rule.atoms.iter().map(|a| a.relation.as_str()).collect();
        assert!(rels.contains(&"P_m5"));
        assert!(rels.contains(&"C"));
        assert_eq!(rule.prov_records.len(), 1);
        assert_eq!(rule.prov_records[0].mapping, "m5");
    }

    #[test]
    fn where_mapping_condition_filters_alternatives() {
        // Q3-style: derivations via m1 or m2 only.
        let t = translate_str("FOR [$x] <$p [] WHERE $p = m1 OR $p = m2 RETURN $x");
        assert!(t.stats.rules > 0);
        for rule in &t.rules {
            let m = &rule.mapping_bindings["p"];
            assert!(m == "m1" || m == "m2", "unexpected mapping {m}");
        }
        assert!(t.stats.dropped > 0, "m3/m4/m5 alternatives must be dropped");
    }

    #[test]
    fn where_attr_condition_becomes_runtime_filter() {
        let t = translate_str("FOR [O $x] INCLUDE PATH [$x] <-+ [] WHERE $x.h >= 6 RETURN $x");
        for rule in &t.rules {
            match rule.condition.as_ref().expect("runtime condition") {
                VarCond::Cmp { op, value, .. } => {
                    assert_eq!(*op, CmpOp::Ge);
                    assert_eq!(value, &Value::Int(6));
                }
                other => panic!("expected Cmp, got {other:?}"),
            }
        }
    }

    #[test]
    fn where_attr_on_constant_column_is_static() {
        // O.animal is the constant true in m4/m5 heads: statically decided.
        let t =
            translate_str("FOR [O $x] INCLUDE PATH [$x] <-+ [] WHERE $x.animal = false RETURN $x");
        // All alternatives produce animal=true; condition false everywhere.
        assert_eq!(t.stats.rules, 0);
        assert!(t.stats.dropped > 0);
    }

    #[test]
    fn q4_common_provenance_joins_on_shared_var() {
        let t = translate_str("FOR [O $x] <-+ [$z], [C $y] <-+ [$z] RETURN $x, $y");
        assert!(t.stats.rules > 0);
        for rule in &t.rules {
            // $z bound to a single node shared by both paths.
            assert!(rule.node_bindings.contains_key("z"));
        }
    }

    #[test]
    fn plus_to_any_must_be_final() {
        let sys = example_2_1().unwrap();
        let q = parse_query("FOR [O $x] <-+ [] <- [A $y] RETURN $x").unwrap();
        assert!(translate(&sys, &q, None, &TranslateOptions::default()).is_err());
    }

    #[test]
    fn rule_budget_enforced() {
        let sys = example_2_1().unwrap();
        let q = parse_query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x").unwrap();
        let opts = TranslateOptions {
            max_rules: 1,
            ..Default::default()
        };
        assert!(translate(&sys, &q, None, &opts).is_err());
    }

    #[test]
    fn unknown_attr_in_where_is_error() {
        let sys = example_2_1().unwrap();
        let q = parse_query("FOR [O $x] WHERE $x.bogus = 1 RETURN $x").unwrap();
        assert!(translate(&sys, &q, None, &TranslateOptions::default()).is_err());
    }
}
