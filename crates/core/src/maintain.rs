//! Incremental view maintenance: patching a cached [`QueryOutput`]
//! forward across a `(snapshot, delta)` write instead of recomputing it.
//!
//! The maintainer runs each unfolded rule of the prepared query in
//! **semi-naive delta form**: for additions, one run per (rule, atom)
//! pair with that atom's scan redirected to a scratch table holding only
//! the delta's added rows (full new state everywhere else); for
//! removals, the DRed discipline — the same delta runs against the *old*
//! snapshot produce over-deletion candidates, which a re-derivation
//! check against the new state then rescues or confirms. For annotation
//! (`EVALUATE`) queries in scalar semirings, a per-entry
//! [`MaintainState`] carries the projected provenance graph and its
//! annotation values, patched per delta and re-evaluated only on the
//! dirty cone via [`proql_semiring::eval::evaluate_dirty`].
//!
//! Maintenance is never a correctness risk: any shape the maintainer
//! cannot localize — graph-strategy answers, set-valued semirings,
//! broken delta chains, oversized deltas, cyclic annotation graphs —
//! reports [`MaintainResult::Fallback`] and the caller evicts, exactly
//! as the pre-maintenance write path did. By construction (and by test)
//! a maintained output is digest-equal to a from-scratch recomputation
//! at the new version.

use crate::annotate::{leaf_value_for, map_fn_for, AnnotatedResult, AnnotatedRow};
use crate::engine::{Engine, PreparedQuery, QueryOutput, Strategy};
use crate::exec::{cond_to_expr, run_rule, PreparedRule, ProjectionResult};
use crate::translate::QueryRule;
use proql_common::{Parallelism, Result, Tuple, TupleId};
use proql_datalog::compile::{compile_body_with, CompileOptions};
use proql_provgraph::{DeltaOp, ProvGraph, ProvenanceSystem};
use proql_semiring::eval::{evaluate_dirty, leaf_label};
use proql_semiring::{evaluate_with, Annotation, Assignment, MapFn, SemiringKind};
use proql_storage::{optimize::optimize_with, Expr};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Scratch-table prefix for delta-seeded rule runs (created only on
/// copy-on-write database clones, never on a published snapshot).
const SCRATCH_PREFIX: &str = "__maint__";

/// Localization cap: a delta touching more stored rows than this falls
/// back to eviction — patching would not beat recomputation.
const MAX_DELTA_ROWS: usize = 4096;

/// Cap on over-deletion candidates fed to the re-derivation check (the
/// candidates become one OR-of-conjuncts filter per rule).
const MAX_CANDIDATES: usize = 1024;

/// Per-entry carry-over of annotation maintenance: the projected
/// provenance graph and its semiring values at the entry's version.
///
/// The graph is patched in place (derivation rows added/removed, tuple
/// values refreshed) and is **never compacted** — compaction renumbers
/// tuple ids, which would orphan the prior-value map that seeds the
/// dirty re-evaluation.
#[derive(Debug)]
pub struct MaintainState {
    graph: ProvGraph,
    values: HashMap<TupleId, Annotation>,
    leaf_values: HashMap<String, Annotation>,
}

/// What [`maintain_output`] decided.
#[derive(Debug)]
pub enum MaintainResult {
    /// The cached output was patched to the new version.
    Maintained {
        /// The patched output, digest-equal to a fresh recomputation.
        output: Box<QueryOutput>,
        /// Projection rows (derivations + bindings) added or removed.
        rows_patched: u64,
        /// Annotation carry-over for the next maintenance round (`None`
        /// for pure-projection queries).
        state: Option<Box<MaintainState>>,
    },
    /// The delta could not be localized; the caller must evict and
    /// recompute. The payload says why (surfaced in service stats and
    /// logs).
    Fallback(&'static str),
}

/// Signed net row changes per relation, split into adds and removes.
#[derive(Debug, Default)]
struct NetChanges {
    adds: HashMap<String, Vec<Tuple>>,
    removes: HashMap<String, Vec<Tuple>>,
    /// `(relation, key)` pairs whose stored values changed — the
    /// annotation maintainer refreshes matching graph nodes.
    set_values: BTreeSet<(String, Tuple)>,
    total_rows: usize,
}

/// Patch `previous` — a query output computed against `old`'s snapshot —
/// forward to `new`'s snapshot, using the delta chain `(old.version,
/// new.version]`. `prior_state` is the annotation carry-over returned by
/// the previous maintenance round for this entry, if any.
///
/// Returns [`MaintainResult::Fallback`] whenever the change cannot be
/// localized; errors also mean "evict and recompute". Both engines must
/// share history: `new` must be a descendant snapshot of `old`.
pub fn maintain_output(
    old: &Engine,
    new: &Engine,
    prepared: &PreparedQuery,
    previous: &QueryOutput,
    prior_state: Option<Box<MaintainState>>,
) -> Result<MaintainResult> {
    let mut sp = proql_common::trace::span("maintain");
    let result = maintain_output_inner(old, new, prepared, previous, prior_state);
    match &result {
        Ok(MaintainResult::Maintained { rows_patched, .. }) => {
            sp.field("outcome", "maintained");
            sp.field("rows_patched", rows_patched.to_string());
        }
        Ok(MaintainResult::Fallback(reason)) => {
            sp.field("outcome", "fallback");
            sp.field("reason", *reason);
        }
        Err(_) => sp.field("outcome", "error"),
    }
    result
}

fn maintain_output_inner(
    old: &Engine,
    new: &Engine,
    prepared: &PreparedQuery,
    previous: &QueryOutput,
    prior_state: Option<Box<MaintainState>>,
) -> Result<MaintainResult> {
    if previous.plan.is_some() {
        return Ok(MaintainResult::Fallback("explain output"));
    }
    if prepared.strategy != Strategy::Unfold {
        return Ok(MaintainResult::Fallback("graph-walk strategy"));
    }
    let Some(unfold) = &prepared.unfold else {
        return Ok(MaintainResult::Fallback("no unfolded rules"));
    };
    if let Some(spec) = &prepared.query.evaluate {
        match spec.semiring {
            SemiringKind::Derivability
            | SemiringKind::Trust
            | SemiringKind::Confidentiality
            | SemiringKind::Weight
            | SemiringKind::Counting => {}
            SemiringKind::Lineage | SemiringKind::Probability | SemiringKind::Polynomial => {
                return Ok(MaintainResult::Fallback("set-valued semiring"));
            }
        }
    }
    let (from, to) = (old.sys.version(), new.sys.version());
    let net = {
        let Some(entries) = new.sys.delta_entries(from, to) else {
            return Ok(MaintainResult::Fallback("delta chain unavailable"));
        };
        collect_net_changes(&new.sys, entries)
    };
    if net.total_rows > MAX_DELTA_ROWS {
        return Ok(MaintainResult::Fallback("delta too large"));
    }
    // Every rule atom must be a stored table or a known provenance view,
    // else we cannot decide whether its contents changed.
    for rule in &unfold.translation.rules {
        for atom in &rule.atoms {
            if !new.sys.db.has_table(&atom.relation)
                && !new
                    .sys
                    .specs()
                    .iter()
                    .any(|s| s.superfluous && s.prov_rel == atom.relation)
            {
                return Ok(MaintainResult::Fallback("non-localizable view atom"));
            }
        }
    }

    let rules = &unfold.translation.rules;
    let return_vars = &unfold.translation.return_vars;

    // Phase A: additions. Semi-naive delta runs against the NEW state —
    // every new firing involves at least one added row, so redirecting
    // each atom in turn to the added rows (full new state elsewhere)
    // enumerates exactly the new firings.
    let added = run_delta_rules(new, rules, return_vars, &net.adds)?;

    // Phase B: removals (DRed over-delete). The same delta runs against
    // the OLD state — where the removed rows still exist — enumerate
    // every old firing involving a removed row. Those are removal
    // *candidates*; alternative derivations rescue them below.
    let candidates = run_delta_rules(old, rules, return_vars, &net.removes)?;
    let n_candidates = candidates.derivation_count() + candidates.bindings.len();
    if n_candidates > MAX_CANDIDATES {
        return Ok(MaintainResult::Fallback("too many removal candidates"));
    }
    let rescued = if n_candidates > 0 {
        recheck_candidates(new, unfold, &candidates)?
    } else {
        ProjectionResult::default()
    };

    // Assemble the patched projection: (previous ∪ added) minus the
    // candidates that neither phase A nor the recheck re-derived.
    let mut projection = previous.projection.clone();
    let mut rows_patched = 0u64;
    for (mapping, rows) in &added.derivations {
        let target = projection.derivations.entry(mapping.clone()).or_default();
        for row in rows {
            if target.insert(row.clone()) {
                rows_patched += 1;
            }
        }
    }
    for (mapping, rows) in &candidates.derivations {
        let added_rows = added.derivations.get(mapping);
        let rescued_rows = rescued.derivations.get(mapping);
        if let Some(target) = projection.derivations.get_mut(mapping) {
            for row in rows {
                if added_rows.is_some_and(|s| s.contains(row))
                    || rescued_rows.is_some_and(|s| s.contains(row))
                {
                    continue;
                }
                if target.remove(row) {
                    rows_patched += 1;
                }
            }
        }
    }
    projection.derivations.retain(|_, rows| !rows.is_empty());
    for b in &added.bindings {
        if projection.bindings.insert(b.clone()) {
            rows_patched += 1;
        }
    }
    for b in &candidates.bindings {
        if added.bindings.contains(b) || rescued.bindings.contains(b) {
            continue;
        }
        if projection.bindings.remove(b) {
            rows_patched += 1;
        }
    }

    // Annotation maintenance: patch the carried graph per the projection
    // diff, refresh touched tuple values, re-evaluate the dirty cone.
    let (annotated, state) = match &prepared.query.evaluate {
        Some(spec) => {
            match maintain_annotation(
                old,
                new,
                spec,
                previous,
                &projection,
                &net.set_values,
                prior_state,
            )? {
                Some((ann, st)) => (Some(ann), Some(st)),
                None => return Ok(MaintainResult::Fallback("cyclic annotation graph")),
            }
        }
        None => (None, None),
    };

    Ok(MaintainResult::Maintained {
        output: Box::new(QueryOutput {
            projection,
            annotated,
            stats: previous.stats.clone(),
            touched: previous.touched.clone(),
            plan: None,
        }),
        rows_patched,
        state,
    })
}

/// Fold the delta chain into per-relation net row changes. A row whose
/// adds and removes cancel out over the span changed nothing observable.
fn collect_net_changes<'a>(
    sys: &ProvenanceSystem,
    entries: impl Iterator<Item = &'a proql_provgraph::GraphDelta>,
) -> NetChanges {
    let mut signed: HashMap<(String, Tuple), i64> = HashMap::new();
    let mut net = NetChanges::default();
    for entry in entries {
        for rc in &entry.rows {
            *signed
                .entry((rc.table.clone(), rc.row.clone()))
                .or_default() += if rc.added { 1 } else { -1 };
        }
        for op in &entry.ops {
            match op {
                // Superfluous provenance relations are views — their row
                // changes never hit stored-table tracking, but the graph
                // ops record them exactly. Materialized `P_m` tables are
                // covered by the raw row records; counting their ops too
                // would double-book.
                DeltaOp::AddDerivation { mapping, row }
                | DeltaOp::RemoveDerivation { mapping, row } => {
                    if let Some(spec) = sys.spec_for(mapping) {
                        if spec.superfluous {
                            let added = matches!(op, DeltaOp::AddDerivation { .. });
                            *signed
                                .entry((spec.prov_rel.clone(), row.clone()))
                                .or_default() += if added { 1 } else { -1 };
                        }
                    }
                }
                DeltaOp::SetValues { relation, key } => {
                    net.set_values.insert((relation.clone(), key.clone()));
                }
            }
        }
    }
    for ((table, row), n) in signed {
        if n > 0 {
            net.adds.entry(table).or_default().push(row);
            net.total_rows += 1;
        } else if n < 0 {
            net.removes.entry(table).or_default().push(row);
            net.total_rows += 1;
        }
    }
    net
}

/// Run every (rule, atom) delta variant: atom `j`'s scan redirected to a
/// scratch table holding `delta[atom.relation]`, all other atoms reading
/// `engine`'s snapshot in full. Merges all partial results.
fn run_delta_rules(
    engine: &Engine,
    rules: &[QueryRule],
    return_vars: &[String],
    delta: &HashMap<String, Vec<Tuple>>,
) -> Result<ProjectionResult> {
    let mut out = ProjectionResult::default();
    if delta.is_empty() {
        return Ok(out);
    }
    for (r, rule) in rules.iter().enumerate() {
        for (j, atom) in rule.atoms.iter().enumerate() {
            let Some(rows) = delta.get(&atom.relation) else {
                continue;
            };
            // Copy-on-write clone: the scratch table lives only in this
            // run's catalog, the snapshot's tables are shared untouched.
            let mut db = engine.sys.db.clone();
            let scratch = format!("{SCRATCH_PREFIX}{r}_{j}");
            db.create_table(db.schema_of(&atom.relation)?.renamed(&scratch))?;
            for row in rows {
                db.insert(&scratch, row.clone())?;
            }
            let mut opts = CompileOptions::default();
            opts.relation_overrides.insert(j, scratch);
            let bp = compile_body_with(&db, &rule.atoms, &opts)?;
            let mut plan = bp.plan;
            if let Some(cond) = &rule.condition {
                plan = plan.filter(cond_to_expr(cond, &bp.var_cols)?);
            }
            let prepared = PreparedRule {
                plan: optimize_with(&db, plan),
                var_cols: bp.var_cols,
            };
            run_rule(
                &db,
                rule,
                &prepared,
                return_vars,
                engine.options.exec_mode,
                Parallelism::Serial,
                &mut out,
            )?;
        }
    }
    Ok(out)
}

/// The DRed re-derivation check: run each rule against the NEW state
/// filtered down to rows that could produce one of the removal
/// candidates. Everything these runs emit is still derivable and must
/// not be removed.
fn recheck_candidates(
    new: &Engine,
    unfold: &crate::engine::PreparedUnfold,
    candidates: &ProjectionResult,
) -> Result<ProjectionResult> {
    let mut out = ProjectionResult::default();
    for (rule, prep) in unfold.translation.rules.iter().zip(&unfold.rules) {
        let mut or_parts: Vec<Expr> = Vec::new();
        // A candidate derivation row is re-derivable through this rule
        // iff some output provenance record of the same mapping can emit
        // it: constants must match statically, variables become
        // column-equality conjuncts.
        for (mapping, rows) in &candidates.derivations {
            for rec in &rule.prov_records {
                if !rec.output || &rec.mapping != mapping {
                    continue;
                }
                'row: for row in rows {
                    let mut conj: Vec<Expr> = Vec::new();
                    for (k, term) in rec.terms.iter().enumerate() {
                        match term {
                            proql_datalog::ast::Term::Const(v) => {
                                if v != row.get(k) {
                                    continue 'row;
                                }
                            }
                            proql_datalog::ast::Term::Var(name) => {
                                let Some(&col) = prep.var_cols.get(name) else {
                                    continue 'row;
                                };
                                conj.push(Expr::col(col).eq(Expr::Lit(row.get(k).clone())));
                            }
                            proql_datalog::ast::Term::Skolem(..) => continue 'row,
                        }
                    }
                    or_parts.push(Expr::and(conj));
                }
            }
        }
        // A candidate binding is re-derivable through this rule iff the
        // rule binds every RETURN variable to the same relation and the
        // key columns can equal the candidate's key.
        'binding: for b in &candidates.bindings {
            let mut conj: Vec<Expr> = Vec::new();
            for (var, (relation, key)) in b {
                let Some(nb) = rule.node_bindings.get(var) else {
                    continue 'binding;
                };
                if &nb.relation != relation {
                    continue 'binding;
                }
                let schema = new.sys.db.schema_of(&nb.relation)?;
                for (i, &pos) in schema.effective_key().iter().enumerate() {
                    match &nb.terms[pos] {
                        proql_datalog::ast::Term::Const(v) => {
                            if v != key.get(i) {
                                continue 'binding;
                            }
                        }
                        proql_datalog::ast::Term::Var(name) => {
                            let Some(&col) = prep.var_cols.get(name) else {
                                continue 'binding;
                            };
                            conj.push(Expr::col(col).eq(Expr::Lit(key.get(i).clone())));
                        }
                        proql_datalog::ast::Term::Skolem(..) => continue 'binding,
                    }
                }
            }
            or_parts.push(Expr::and(conj));
        }
        if or_parts.is_empty() {
            continue;
        }
        let plan = optimize_with(&new.sys.db, prep.plan.clone().filter(Expr::Or(or_parts)));
        let filtered = PreparedRule {
            plan,
            var_cols: prep.var_cols.clone(),
        };
        run_rule(
            &new.sys.db,
            rule,
            &filtered,
            &unfold.translation.return_vars,
            new.options.exec_mode,
            Parallelism::Serial,
            &mut out,
        )?;
    }
    Ok(out)
}

/// Patch the annotation side: bootstrap or reuse the [`MaintainState`],
/// apply the projection diff to its graph, refresh changed tuple values,
/// and re-evaluate only the dirty cone. Returns `None` when the graph is
/// cyclic (the dirty pass requires a topological order).
#[allow(clippy::too_many_arguments)]
fn maintain_annotation(
    old: &Engine,
    new: &Engine,
    spec: &crate::ast::Evaluate,
    previous: &QueryOutput,
    projection: &ProjectionResult,
    set_values: &BTreeSet<(String, Tuple)>,
    prior_state: Option<Box<MaintainState>>,
) -> Result<Option<(AnnotatedResult, Box<MaintainState>)>> {
    let kind = spec.semiring;
    let mut state = match prior_state {
        Some(s) => s,
        None => Box::new(bootstrap_state(old, spec, kind, previous)?),
    };

    // Graph patch, additions first: per-mapping set difference between
    // the previous and the patched projection.
    let mut dirty: HashSet<TupleId> = HashSet::new();
    let empty = BTreeSet::new();
    for (mapping, rows) in &projection.derivations {
        let before = previous
            .projection
            .derivations
            .get(mapping)
            .unwrap_or(&empty);
        let Some(pspec) = new.sys.spec_for(mapping) else {
            continue;
        };
        let is_base = new
            .sys
            .rule_for(mapping)
            .and_then(|r| r.body.first())
            .map(|a| new.sys.is_local_relation(&a.relation))
            .unwrap_or(false);
        for row in rows.difference(before) {
            let id = state
                .graph
                .add_derivation_from_row(&new.sys, pspec, row, is_base)?;
            let node = state.graph.derivation(id);
            let endpoints: Vec<TupleId> =
                node.sources.iter().chain(&node.targets).copied().collect();
            dirty.extend(node.targets.iter().copied());
            for t in endpoints {
                let tn = state.graph.tuple(t);
                let label = leaf_label(tn);
                let (value, _) = leaf_value_for(&new.sys, spec, kind, tn, &label)?;
                state.leaf_values.insert(label, value);
            }
        }
    }
    for (mapping, before) in &previous.projection.derivations {
        let after = projection.derivations.get(mapping).unwrap_or(&empty);
        for row in before.difference(after) {
            if let Some(id) = state.graph.find_derivation(mapping, row) {
                dirty.extend(state.graph.derivation(id).targets.iter().copied());
            }
            state.graph.remove_derivation_row(mapping, row);
        }
    }
    for (relation, key) in set_values {
        if let Some(id) = state.graph.refresh_values(&new.sys, relation, key) {
            let tn = state.graph.tuple(id);
            let label = leaf_label(tn);
            let (value, _) = leaf_value_for(&new.sys, spec, kind, tn, &label)?;
            state.leaf_values.insert(label, value);
            dirty.insert(id);
        }
    }

    let values = {
        let leaf = |_node: &proql_provgraph::TupleNode, label: &str| {
            state
                .leaf_values
                .get(label)
                .cloned()
                .unwrap_or_else(|| kind.default_leaf(label))
        };
        let map_fns: HashMap<String, MapFn> = new
            .sys
            .specs()
            .iter()
            .map(|s| map_fn_for(spec, kind, &s.mapping).map(|f| (s.mapping.clone(), f)))
            .collect::<Result<_>>()?;
        let map_fn = |m: &str| map_fns.get(m).cloned().unwrap_or(MapFn::Identity);
        let assignment = Assignment::default_for(kind)
            .with_leaf(leaf)
            .with_map_fn(map_fn);
        match evaluate_dirty(&state.graph, &assignment, &state.values, &dirty) {
            Ok(v) => v,
            Err(_) => return Ok(None),
        }
    };
    state.values = values;

    // Rebuild the annotated rows in the exact order a fresh evaluation
    // iterates (binding order, first-seen dedup), so maintained results
    // are indistinguishable row-for-row, not just digest-equal.
    let mut rows = Vec::new();
    let mut seen: BTreeMap<(String, String, Tuple), ()> = BTreeMap::new();
    for binding in &projection.bindings {
        for (var, (relation, key)) in binding {
            if seen
                .insert((var.clone(), relation.clone(), key.clone()), ())
                .is_some()
            {
                continue;
            }
            let annotation = state
                .graph
                .find_tuple(relation, key)
                .and_then(|t| state.values.get(&t).cloned())
                .unwrap_or_else(|| kind.zero());
            rows.push(AnnotatedRow {
                var: var.clone(),
                relation: relation.clone(),
                key: key.clone(),
                annotation,
            });
        }
    }
    let leaf_probs = previous
        .annotated
        .as_ref()
        .map(|a| a.leaf_probs.clone())
        .unwrap_or_default();
    Ok(Some((
        AnnotatedResult {
            semiring: kind,
            rows,
            leaf_probs,
        },
        state,
    )))
}

/// First maintenance of an entry: decode the previous projection into a
/// graph against the OLD snapshot and fully evaluate it — the baseline
/// the dirty passes patch from then on.
fn bootstrap_state(
    old: &Engine,
    spec: &crate::ast::Evaluate,
    kind: SemiringKind,
    previous: &QueryOutput,
) -> Result<MaintainState> {
    let graph = previous.projection.to_graph(&old.sys)?;
    let mut leaf_values: HashMap<String, Annotation> = HashMap::new();
    for t in graph.tuple_ids() {
        let node = graph.tuple(t);
        let label = leaf_label(node);
        let (value, _) = leaf_value_for(&old.sys, spec, kind, node, &label)?;
        leaf_values.insert(label, value);
    }
    let map_fns: HashMap<String, MapFn> = old
        .sys
        .specs()
        .iter()
        .map(|s| map_fn_for(spec, kind, &s.mapping).map(|f| (s.mapping.clone(), f)))
        .collect::<Result<_>>()?;
    let values = {
        let leaf = |_node: &proql_provgraph::TupleNode, label: &str| {
            leaf_values
                .get(label)
                .cloned()
                .unwrap_or_else(|| kind.default_leaf(label))
        };
        let map_fn = |m: &str| map_fns.get(m).cloned().unwrap_or(MapFn::Identity);
        let assignment = Assignment::default_for(kind)
            .with_leaf(leaf)
            .with_map_fn(map_fn);
        evaluate_with(&graph, &assignment, Parallelism::Serial)?
    };
    Ok(MaintainState {
        graph,
        values,
        leaf_values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineOptions};
    use proql_common::{tup, Schema, ValueType};

    /// Acyclic fixture: `X → Y` through the superfluous `my`, `X ⋈ Y → Z`
    /// through the materialized `P_mz`. `Strategy::Auto` resolves to
    /// `Unfold`, which is what maintenance requires.
    fn acyclic_system() -> ProvenanceSystem {
        let mut sys = ProvenanceSystem::new();
        for name in ["X", "Y"] {
            sys.add_relation_with_local(
                Schema::build(name, &[("id", ValueType::Int), ("w", ValueType::Int)], &[0])
                    .unwrap(),
            )
            .unwrap();
        }
        sys.add_relation(
            Schema::build(
                "Z",
                &[
                    ("id", ValueType::Int),
                    ("a", ValueType::Int),
                    ("b", ValueType::Int),
                ],
                &[0],
            )
            .unwrap(),
        )
        .unwrap();
        sys.add_mapping_text("my: Y(i, w) :- X(i, w)").unwrap();
        sys.add_mapping_text("mz: Z(i, a, b) :- X(i, a), Y(i, b)")
            .unwrap();
        for i in 0..4i64 {
            sys.insert_local("X", tup![i, i * 10]).unwrap();
        }
        sys.run_exchange().unwrap();
        sys
    }

    const PROJ_Q: &str = "FOR [Z $x] INCLUDE PATH [$x] <-+ [] RETURN $x";
    const WEIGHT_Q: &str = "EVALUATE WEIGHT OF {
           FOR [Z $x] INCLUDE PATH [$x] <-+ [] RETURN $x
         } ASSIGNING EACH leaf_node $y {
           CASE $y in X : SET 2
           DEFAULT : SET 1
         } ASSIGNING EACH mapping $p($z) {
           CASE $p = mz : SET $z + 5
           DEFAULT : SET $z
         }";

    /// Execute `q` at a base version, mutate a cloned system, maintain the
    /// cached output forward, and return it with a fresh recomputation.
    fn roundtrip(
        q: &str,
        mutate: impl FnOnce(&mut ProvenanceSystem),
    ) -> (QueryOutput, QueryOutput, u64) {
        let old = Engine::new(acyclic_system());
        let prepared = old.prepare(q).unwrap();
        let previous = old.execute(&prepared).unwrap();
        let mut sys2 = old.sys.clone();
        mutate(&mut sys2);
        let new = Engine::with_options(sys2, old.options.clone());
        match maintain_output(&old, &new, &prepared, &previous, None).unwrap() {
            MaintainResult::Maintained {
                output,
                rows_patched,
                ..
            } => {
                let fresh = new.execute(&prepared).unwrap();
                (*output, fresh, rows_patched)
            }
            MaintainResult::Fallback(reason) => panic!("unexpected fallback: {reason}"),
        }
    }

    fn assert_projection_eq(a: &QueryOutput, b: &QueryOutput) {
        assert_eq!(a.projection.derivations, b.projection.derivations);
        assert_eq!(a.projection.bindings, b.projection.bindings);
    }

    #[test]
    fn insert_is_maintained_to_match_recompute() {
        let (maintained, fresh, patched) = roundtrip(PROJ_Q, |sys| {
            sys.insert_local("X", tup![9, 90]).unwrap();
            sys.run_exchange().unwrap();
        });
        assert_projection_eq(&maintained, &fresh);
        assert!(patched > 0, "the insert must reach the cached answer");
        assert!(maintained
            .projection
            .bindings
            .iter()
            .any(|b| b["x"].1 == tup![9]));
    }

    #[test]
    fn tracked_delete_is_maintained_via_dred() {
        let (maintained, fresh, patched) = roundtrip(PROJ_Q, |sys| {
            sys.delete_row_tracked("X_l", &tup![1]).unwrap();
            assert!(sys.commit_tracked_mutation());
        });
        assert_projection_eq(&maintained, &fresh);
        assert!(patched > 0, "the delete must reach the cached answer");
    }

    #[test]
    fn mixed_write_is_maintained() {
        let (maintained, fresh, _) = roundtrip(PROJ_Q, |sys| {
            sys.delete_row_tracked("X_l", &tup![2]).unwrap();
            assert!(sys.commit_tracked_mutation());
            sys.insert_local("X", tup![7, 70]).unwrap();
            sys.insert_local("Y", tup![8, 80]).unwrap();
            sys.run_exchange().unwrap();
        });
        assert_projection_eq(&maintained, &fresh);
    }

    #[test]
    fn weight_annotation_is_maintained_across_two_rounds() {
        let old = Engine::new(acyclic_system());
        let prepared = old.prepare(WEIGHT_Q).unwrap();
        let previous = old.execute(&prepared).unwrap();

        // Round 1: an insert, bootstrapping the annotation state.
        let mut sys2 = old.sys.clone();
        sys2.insert_local("X", tup![9, 90]).unwrap();
        sys2.run_exchange().unwrap();
        let mid = Engine::with_options(sys2, old.options.clone());
        let MaintainResult::Maintained {
            output: out1,
            state: state1,
            ..
        } = maintain_output(&old, &mid, &prepared, &previous, None).unwrap()
        else {
            panic!("round 1 fell back");
        };
        let fresh1 = mid.execute(&prepared).unwrap();
        assert_projection_eq(&out1, &fresh1);
        assert_eq!(
            out1.annotated.as_ref().unwrap().rows,
            fresh1.annotated.as_ref().unwrap().rows
        );

        // Round 2: a delete, reusing the carried state (no re-bootstrap).
        let mut sys3 = mid.sys.clone();
        sys3.delete_row_tracked("X_l", &tup![1]).unwrap();
        assert!(sys3.commit_tracked_mutation());
        let new = Engine::with_options(sys3, mid.options.clone());
        let MaintainResult::Maintained { output: out2, .. } =
            maintain_output(&mid, &new, &prepared, &out1, state1).unwrap()
        else {
            panic!("round 2 fell back");
        };
        let fresh2 = new.execute(&prepared).unwrap();
        assert_projection_eq(&out2, &fresh2);
        assert_eq!(
            out2.annotated.as_ref().unwrap().rows,
            fresh2.annotated.as_ref().unwrap().rows
        );
    }

    #[test]
    fn broken_delta_chain_falls_back() {
        let old = Engine::new(acyclic_system());
        let prepared = old.prepare(PROJ_Q).unwrap();
        let previous = old.execute(&prepared).unwrap();
        let mut sys2 = old.sys.clone();
        sys2.db.insert("Y", tup![50, 50]).unwrap();
        sys2.bump_version();
        let new = Engine::with_options(sys2, old.options.clone());
        match maintain_output(&old, &new, &prepared, &previous, None).unwrap() {
            MaintainResult::Fallback(reason) => {
                assert_eq!(reason, "delta chain unavailable")
            }
            MaintainResult::Maintained { .. } => panic!("must not maintain across a broken chain"),
        }
    }

    #[test]
    fn graph_strategy_and_set_valued_semirings_fall_back() {
        let opts = EngineOptions {
            strategy: Strategy::Graph,
            ..EngineOptions::default()
        };
        let old = Engine::with_options(acyclic_system(), opts);
        let prepared = old.prepare(PROJ_Q).unwrap();
        let previous = old.execute(&prepared).unwrap();
        match maintain_output(&old, &old, &prepared, &previous, None).unwrap() {
            MaintainResult::Fallback(reason) => assert_eq!(reason, "graph-walk strategy"),
            MaintainResult::Maintained { .. } => panic!("graph strategy must fall back"),
        }

        let unfold = Engine::new(acyclic_system());
        let q = "EVALUATE LINEAGE OF { FOR [Z $x] INCLUDE PATH [$x] <-+ [] RETURN $x }";
        let prepared = unfold.prepare(q).unwrap();
        let previous = unfold.execute(&prepared).unwrap();
        match maintain_output(&unfold, &unfold, &prepared, &previous, None).unwrap() {
            MaintainResult::Fallback(reason) => assert_eq!(reason, "set-valued semiring"),
            MaintainResult::Maintained { .. } => panic!("set-valued semirings must fall back"),
        }
    }

    #[test]
    fn explain_outputs_fall_back() {
        let old = Engine::new(acyclic_system());
        let prepared = old
            .prepare("EXPLAIN FOR [Z $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap();
        let previous = old.execute(&prepared).unwrap();
        match maintain_output(&old, &old, &prepared, &previous, None).unwrap() {
            MaintainResult::Fallback(reason) => assert_eq!(reason, "explain output"),
            MaintainResult::Maintained { .. } => panic!("EXPLAIN output must fall back"),
        }
    }

    #[test]
    fn untouched_span_is_a_no_op_patch() {
        let (maintained, fresh, patched) = roundtrip(PROJ_Q, |sys| {
            // A duplicate insert is a set-semantics no-op: nothing is
            // staged, no version bump, an empty delta span.
            let inserted = sys.insert_local("X", tup![0, 0]).unwrap();
            assert!(!inserted);
        });
        assert_projection_eq(&maintained, &fresh);
        assert_eq!(patched, 0);
    }
}
