//! # proql
//!
//! **ProQL** — the provenance query language of *Karvounarakis, Ives,
//! Tannen: "Querying Data Provenance", SIGMOD 2010* — implemented over an
//! embedded relational engine.
//!
//! A ProQL query has two parts (paper §3):
//!
//! 1. **Graph projection** — path expressions over the provenance graph:
//!
//! ```text
//! FOR [O $x] <-+ [A $y]
//! WHERE $x.h >= 5
//! INCLUDE PATH [$x] <-+ [$y]
//! RETURN $x, $y
//! ```
//!
//! 2. **Annotation computation** — evaluating the projected subgraph in a
//!    semiring:
//!
//! ```text
//! EVALUATE TRUST OF {
//!   FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
//! } ASSIGNING EACH leaf_node $y {
//!   CASE $y in C : SET true
//!   CASE $y in A and $y.len >= 6 : SET false
//!   DEFAULT : SET true
//! } ASSIGNING EACH mapping $p($z) {
//!   CASE $p = m4 : SET false
//!   DEFAULT : SET $z
//! }
//! ```
//!
//! Queries are parsed ([`parser`]), matched against the provenance schema
//! graph and unfolded into conjunctive rules over provenance relations
//! ([`mod@translate`], paper §4.2), executed as relational plans ([`exec`]),
//! and optionally evaluated in a semiring ([`annotate`]). [`engine`] ties
//! it together behind [`Engine`].

pub mod agg_eval;
pub mod annotate;
pub mod ast;
pub mod engine;
pub mod exec;
pub mod lexer;
pub mod maintain;
pub mod parser;
pub mod translate;

pub use annotate::AnnotatedResult;
pub use ast::Query;
pub use engine::{Engine, EngineOptions, PreparedQuery, QueryOutput, Strategy};
pub use exec::{
    prepare_rule, prepare_rules, run_projection, run_projection_opts, run_projection_prepared,
    run_projection_with, PreparedRule, ProjectionResult,
};
pub use maintain::{maintain_output, MaintainResult, MaintainState};
pub use parser::parse_query;
pub use translate::{translate, BodyRewriter, QueryRule, TranslateStats, Translation};
