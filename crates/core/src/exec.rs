//! Executing graph-projection queries (paper §4.2.4).
//!
//! Each unfolded [`QueryRule`] compiles to a conjunctive plan over
//! provenance relations; plans are optimized (selection pushdown / index
//! lookups) and executed; every result row contributes (a) derivation rows
//! to the output subgraph and (b) a binding tuple for the RETURN variables.
//!
//! A second, bottom-up strategy walks the in-memory provenance graph
//! backwards from the matched tuples. It handles **cyclic** provenance
//! (where unfolding is cut off) and serves as the ablation baseline the
//! paper's §8 sketches ("execute the set of rules in bottom-up fashion").

use crate::ast::{CmpOp, Condition, Query, StepPattern};
use crate::translate::{QueryRule, Translation, VarCond};
use proql_common::par::par_map;
use proql_common::{trace, Error, Parallelism, Result, Tuple, Value};
use proql_datalog::ast::Term;
use proql_datalog::compile::compile_body;
use proql_provgraph::{ProvGraph, ProvenanceSystem};
use proql_storage::batch::{Column, RecordBatch};
use proql_storage::{
    execute_batch_opts, execute_batch_profiled, execute_with, explain, optimize::optimize_with,
    Database, ExecMode, Expr, OpStat,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The result of a graph-projection query: the output subgraph (encoded
/// relationally, one row-set per provenance relation) plus the binding
/// tuples of the distinguished variables.
#[derive(Debug, Clone, Default)]
pub struct ProjectionResult {
    /// Output subgraph: mapping name → set of `P_mapping` rows.
    pub derivations: BTreeMap<String, BTreeSet<Tuple>>,
    /// Distinguished-variable bindings: each row maps a RETURN variable to
    /// a `(relation, key)` node reference.
    pub bindings: BTreeSet<BTreeMap<String, (String, Tuple)>>,
    /// Execution metrics.
    pub metrics: ExecMetrics,
}

/// Execution metrics reported by the benchmarks.
#[derive(Debug, Clone, Default)]
pub struct ExecMetrics {
    /// Rules (conjunctive queries) executed.
    pub rules_executed: usize,
    /// Total join operators across all executed plans.
    pub total_joins: usize,
    /// Total bytes of the generated SQL (the paper's DB2-limit proxy).
    pub sql_bytes: usize,
    /// Result rows across all rules.
    pub rows: usize,
}

impl ProjectionResult {
    /// Total derivation rows in the output subgraph.
    pub fn derivation_count(&self) -> usize {
        self.derivations.values().map(BTreeSet::len).sum()
    }

    /// Decode the output subgraph into an in-memory [`ProvGraph`].
    pub fn to_graph(&self, sys: &ProvenanceSystem) -> Result<ProvGraph> {
        let mut g = ProvGraph::new();
        for (mapping, rows) in &self.derivations {
            let spec = sys
                .spec_for(mapping)
                .ok_or_else(|| Error::NotFound(format!("mapping {mapping}")))?;
            let rule = sys
                .rule_for(mapping)
                .ok_or_else(|| Error::NotFound(format!("mapping {mapping}")))?;
            let is_base = rule
                .body
                .first()
                .map(|a| sys.is_local_relation(&a.relation))
                .unwrap_or(false);
            for row in rows {
                g.add_derivation_from_row(sys, spec, row, is_base)?;
            }
        }
        Ok(g)
    }
}

/// A rule compiled and optimized **once**: the plan (after the full
/// cost-based pass pipeline) plus the variable → output-column map.
/// Executing a prepared rule skips compilation and optimization entirely;
/// [`crate::engine::PreparedQuery`] holds one per unfolded rule.
#[derive(Debug, Clone)]
pub struct PreparedRule {
    /// The optimized plan. Its output schema is identical to the
    /// unoptimized compilation, so `var_cols` stays valid.
    pub plan: proql_storage::Plan,
    /// First output column binding each rule variable.
    pub var_cols: HashMap<String, usize>,
}

/// Compile and optimize one unfolded rule.
pub fn prepare_rule(sys: &ProvenanceSystem, rule: &QueryRule) -> Result<PreparedRule> {
    let bp = compile_body(&sys.db, &rule.atoms)?;
    let mut plan = bp.plan;
    if let Some(cond) = &rule.condition {
        plan = plan.filter(cond_to_expr(cond, &bp.var_cols)?);
    }
    let plan = optimize_with(&sys.db, plan);
    Ok(PreparedRule {
        plan,
        var_cols: bp.var_cols,
    })
}

/// Compile and optimize every rule of a translation.
pub fn prepare_rules(
    sys: &ProvenanceSystem,
    translation: &Translation,
) -> Result<Vec<PreparedRule>> {
    translation
        .rules
        .iter()
        .map(|r| prepare_rule(sys, r))
        .collect()
}

/// Execute the unfolded rules of a translation with the default (batch)
/// executor.
pub fn run_projection(
    sys: &ProvenanceSystem,
    translation: &Translation,
) -> Result<ProjectionResult> {
    run_projection_with(sys, translation, ExecMode::Batch)
}

/// Execute the unfolded rules of a translation under a chosen executor.
pub fn run_projection_with(
    sys: &ProvenanceSystem,
    translation: &Translation,
    mode: ExecMode,
) -> Result<ProjectionResult> {
    run_projection_opts(sys, translation, mode, Parallelism::Serial)
}

/// [`run_projection_with`] plus a [`Parallelism`] knob. Compiles and
/// optimizes every rule, then runs them; callers that already hold
/// prepared rules use [`run_projection_prepared`] to skip that step.
pub fn run_projection_opts(
    sys: &ProvenanceSystem,
    translation: &Translation,
    mode: ExecMode,
    par: Parallelism,
) -> Result<ProjectionResult> {
    let prepared = prepare_rules(sys, translation)?;
    run_projection_prepared(sys, translation, &prepared, mode, par)
}

/// Execute already-prepared rules.
///
/// The unfolded rules of a translation are independent conjunctive
/// queries, so with parallelism enabled and more than one rule, rules
/// themselves fan out over worker threads (each executing its plan
/// serially); partial results merge into order-insensitive sets, making
/// the output identical to the serial pass. A single-rule translation
/// instead forwards the knob into the batch executor's morsel-parallel
/// operators. Errors resolve to the first failing rule in rule order.
pub fn run_projection_prepared(
    sys: &ProvenanceSystem,
    translation: &Translation,
    prepared: &[PreparedRule],
    mode: ExecMode,
    par: Parallelism,
) -> Result<ProjectionResult> {
    let par = par.resolved();
    let rules = &translation.rules;
    if rules.len() != prepared.len() {
        return Err(Error::Query(format!(
            "prepared {} rules for a {}-rule translation",
            prepared.len(),
            rules.len()
        )));
    }
    if par.is_parallel() && rules.len() > 1 {
        let partials = par_map(rules.len(), par.threads(), |i| {
            let mut partial = ProjectionResult::default();
            run_rule(
                &sys.db,
                &rules[i],
                &prepared[i],
                &translation.return_vars,
                mode,
                Parallelism::Serial,
                &mut partial,
            )
            .map(|()| partial)
        });
        let mut out = ProjectionResult::default();
        for partial in partials {
            let partial = partial?;
            for (mapping, rows) in partial.derivations {
                out.derivations.entry(mapping).or_default().extend(rows);
            }
            out.bindings.extend(partial.bindings);
            out.metrics.rules_executed += partial.metrics.rules_executed;
            out.metrics.total_joins += partial.metrics.total_joins;
            out.metrics.sql_bytes += partial.metrics.sql_bytes;
            out.metrics.rows += partial.metrics.rows;
        }
        Ok(out)
    } else {
        let mut out = ProjectionResult::default();
        for (rule, prep) in rules.iter().zip(prepared) {
            run_rule(
                &sys.db,
                rule,
                prep,
                &translation.return_vars,
                mode,
                par,
                &mut out,
            )?;
        }
        Ok(out)
    }
}

/// [`run_projection_prepared`] with per-operator actuals — the `EXPLAIN
/// ANALYZE` execution path. Rules run **serially** (this is a measurement
/// pass; rule fan-out would overlap their wall times), each under the
/// profiled batch executor; `par` still drives morsel parallelism inside
/// operators. Returns the projection result (identical to a plain run)
/// plus one stats vector per rule, aligned with `translation.rules`.
pub fn run_projection_prepared_profiled(
    sys: &ProvenanceSystem,
    translation: &Translation,
    prepared: &[PreparedRule],
    mode: ExecMode,
    par: Parallelism,
) -> Result<(ProjectionResult, Vec<Vec<OpStat>>)> {
    let par = par.resolved();
    let rules = &translation.rules;
    if rules.len() != prepared.len() {
        return Err(Error::Query(format!(
            "prepared {} rules for a {}-rule translation",
            prepared.len(),
            rules.len()
        )));
    }
    let mut out = ProjectionResult::default();
    let mut per_rule = Vec::with_capacity(rules.len());
    for (rule, prep) in rules.iter().zip(prepared) {
        per_rule.push(run_rule_profiled(
            &sys.db,
            rule,
            prep,
            &translation.return_vars,
            mode,
            par,
            &mut out,
        )?);
    }
    Ok((out, per_rule))
}

/// A resolved output term: either a constant or a reference into a batch
/// column. Resolving terms once per rule (instead of once per row × term)
/// is what lets the batch path materialize results column-at-a-time.
enum Resolved<'a> {
    Const(Value),
    Col(&'a Column),
}

impl Resolved<'_> {
    fn value(&self, row: usize) -> Value {
        match self {
            Resolved::Const(v) => v.clone(),
            Resolved::Col(c) => c.value(row),
        }
    }
}

fn resolve_term<'a>(
    term: &Term,
    batch: &'a RecordBatch,
    var_cols: &HashMap<String, usize>,
) -> Result<Resolved<'a>> {
    match term {
        Term::Const(v) => Ok(Resolved::Const(v.clone())),
        Term::Var(v) => {
            let col = var_cols
                .get(v)
                .ok_or_else(|| Error::Query(format!("variable {v} missing from compiled rule")))?;
            Ok(Resolved::Col(&batch.columns[*col]))
        }
        Term::Skolem(..) => Err(Error::Query(
            "Skolem terms cannot appear in projection output".into(),
        )),
    }
}

/// Execute one prepared rule against `db` and merge its derivation rows
/// and bindings into `out`. Takes the database rather than the system so
/// the incremental maintainer can run delta-seeded variants of a rule
/// against scratch-augmented database clones.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_rule(
    db: &Database,
    rule: &QueryRule,
    prepared: &PreparedRule,
    return_vars: &[String],
    mode: ExecMode,
    par: Parallelism,
    out: &mut ProjectionResult,
) -> Result<()> {
    let mut sp = trace::span("rule");
    let plan = &prepared.plan;
    out.metrics.rules_executed += 1;
    out.metrics.total_joins += plan.count_joins();
    out.metrics.sql_bytes += explain::sql_len(plan);

    // Materialize the rule's result as a columnar batch. The legacy row
    // executors produce rows that are transposed once here; the batch
    // executor is columnar end to end.
    let batch = match mode {
        ExecMode::Batch => execute_batch_opts(db, plan, par)?,
        row_mode => {
            let rel = execute_with(db, plan, row_mode)?;
            RecordBatch::from_rows(rel.names, rel.rows.iter())
        }
    };
    sp.field("rows", batch.len().to_string());
    merge_rule_batch(db, rule, prepared, return_vars, batch, out)
}

/// Profiled twin of [`run_rule`]: executes the rule's plan under
/// [`execute_batch_profiled`] (the `EXPLAIN ANALYZE` backend) and returns
/// the per-operator actuals alongside merging the result into `out`.
/// Non-batch executors report no operator breakdown (empty stats).
fn run_rule_profiled(
    db: &Database,
    rule: &QueryRule,
    prepared: &PreparedRule,
    return_vars: &[String],
    mode: ExecMode,
    par: Parallelism,
    out: &mut ProjectionResult,
) -> Result<Vec<OpStat>> {
    let mut sp = trace::span("rule");
    let plan = &prepared.plan;
    out.metrics.rules_executed += 1;
    out.metrics.total_joins += plan.count_joins();
    out.metrics.sql_bytes += explain::sql_len(plan);
    let (batch, stats) = match mode {
        ExecMode::Batch => execute_batch_profiled(db, plan, par)?,
        row_mode => {
            let rel = execute_with(db, plan, row_mode)?;
            (RecordBatch::from_rows(rel.names, rel.rows.iter()), vec![])
        }
    };
    sp.field("rows", batch.len().to_string());
    merge_rule_batch(db, rule, prepared, return_vars, batch, out)?;
    Ok(stats)
}

/// Merge one rule's materialized result batch into the projection output:
/// derivation rows per output provenance record, then RETURN-variable
/// binding tuples.
fn merge_rule_batch(
    db: &Database,
    rule: &QueryRule,
    prepared: &PreparedRule,
    return_vars: &[String],
    batch: RecordBatch,
    out: &mut ProjectionResult,
) -> Result<()> {
    out.metrics.rows += batch.len();
    if batch.is_empty() {
        return Ok(());
    }

    // Resolve every output recipe against batch columns once per rule.
    for rec in &rule.prov_records {
        if !rec.output {
            continue;
        }
        let cols: Vec<Resolved> = rec
            .terms
            .iter()
            .map(|t| resolve_term(t, &batch, &prepared.var_cols))
            .collect::<Result<_>>()?;
        let target = out.derivations.entry(rec.mapping.clone()).or_default();
        for row in 0..batch.len() {
            target.insert(Tuple::new(cols.iter().map(|c| c.value(row)).collect()));
        }
    }

    // Bindings: resolve each RETURN variable's key recipe column-wise.
    let mut binding_cols: Vec<(&String, &str, Vec<Resolved>)> = Vec::new();
    for v in return_vars {
        let nb = rule
            .node_bindings
            .get(v)
            .ok_or_else(|| Error::Query(format!("RETURN variable ${v} unbound in rule")))?;
        let schema = db.schema_of(&nb.relation)?;
        let cols: Vec<Resolved> = schema
            .effective_key()
            .iter()
            .map(|&pos| resolve_term(&nb.terms[pos], &batch, &prepared.var_cols))
            .collect::<Result<_>>()?;
        binding_cols.push((v, nb.relation.as_str(), cols));
    }
    for row in 0..batch.len() {
        let mut binding = BTreeMap::new();
        for (v, relation, cols) in &binding_cols {
            binding.insert(
                (*v).clone(),
                (
                    relation.to_string(),
                    Tuple::new(cols.iter().map(|c| c.value(row)).collect()),
                ),
            );
        }
        out.bindings.insert(binding);
    }
    Ok(())
}

/// Lower a rule's residual variable condition to a storage [`Expr`] over
/// the compiled body's output columns.
pub(crate) fn cond_to_expr(cond: &VarCond, var_cols: &HashMap<String, usize>) -> Result<Expr> {
    Ok(match cond {
        VarCond::Lit(b) => Expr::lit(*b),
        VarCond::Cmp { var, op, value } => {
            let col = var_cols.get(var).ok_or_else(|| {
                Error::Query(format!("condition variable {var} not in rule body"))
            })?;
            Expr::cmp(op.to_binop(), Expr::col(*col), Expr::Lit(value.clone()))
        }
        VarCond::And(parts) => Expr::And(
            parts
                .iter()
                .map(|p| cond_to_expr(p, var_cols))
                .collect::<Result<_>>()?,
        ),
        VarCond::Or(parts) => Expr::Or(
            parts
                .iter()
                .map(|p| cond_to_expr(p, var_cols))
                .collect::<Result<_>>()?,
        ),
        VarCond::Not(p) => Expr::Not(Box::new(cond_to_expr(p, var_cols)?)),
    })
}

/// Bottom-up (graph-walk) strategy: supports queries whose FOR/INCLUDE
/// paths are of the shape `[R $x]` or `[R $x] <-+ []`, which covers the
/// annotation use cases Q5–Q10 — including **cyclic** provenance graphs.
pub fn run_projection_graph(
    sys: &ProvenanceSystem,
    full: &ProvGraph,
    query: &Query,
) -> Result<ProjectionResult> {
    let proj = &query.projection;
    // Identify the single distinguished start pattern.
    let mut start_rel: Option<String> = None;
    let mut start_var: Option<String> = None;
    for p in proj.for_paths.iter().chain(&proj.include_paths) {
        if let Some(r) = &p.start.relation {
            start_rel = Some(r.clone());
        }
        if let Some(v) = &p.start.var {
            if let Some(prev) = &start_var {
                if prev != v {
                    return Err(Error::Query(
                        "graph strategy supports a single distinguished variable".into(),
                    ));
                }
            }
            start_var = Some(v.clone());
        }
        for (step, node) in &p.steps {
            if !matches!(step, StepPattern::Plus) || !node.is_any() {
                return Err(Error::Query(
                    "graph strategy supports only `[R $x] <-+ []` patterns".into(),
                ));
            }
        }
    }
    let start_rel =
        start_rel.ok_or_else(|| Error::Query("graph strategy needs a start relation".into()))?;
    let start_var =
        start_var.ok_or_else(|| Error::Query("graph strategy needs a start variable".into()))?;

    // Attribute conditions on the start variable filter the roots.
    let attr_conds = collect_attr_conds(proj.where_cond.as_ref(), &start_var)?;

    let mut out = ProjectionResult::default();
    let mut visited_t: BTreeSet<proql_common::TupleId> = BTreeSet::new();
    let mut queue: Vec<proql_common::TupleId> = Vec::new();
    for t in full.tuple_ids() {
        let node = full.tuple(t);
        if node.relation != start_rel {
            continue;
        }
        if !attr_conds_hold(sys, &attr_conds, node)? {
            continue;
        }
        let mut binding = BTreeMap::new();
        binding.insert(start_var.clone(), (node.relation.clone(), node.key.clone()));
        out.bindings.insert(binding);
        if visited_t.insert(t) {
            queue.push(t);
        }
    }
    while let Some(t) = queue.pop() {
        for &d in full.derivations_of(t) {
            let dn = full.derivation(d);
            out.derivations
                .entry(dn.mapping.clone())
                .or_default()
                .insert(dn.prov_row.clone());
            for &s in &dn.sources {
                if visited_t.insert(s) {
                    queue.push(s);
                }
            }
        }
    }
    out.metrics.rules_executed = 0;
    Ok(out)
}

fn collect_attr_conds(cond: Option<&Condition>, var: &str) -> Result<Vec<(String, CmpOp, Value)>> {
    let mut out = Vec::new();
    let Some(cond) = cond else {
        return Ok(out);
    };
    fn walk(c: &Condition, var: &str, out: &mut Vec<(String, CmpOp, Value)>) -> Result<()> {
        match c {
            Condition::And(parts) => {
                for p in parts {
                    walk(p, var, out)?;
                }
                Ok(())
            }
            Condition::AttrCmp {
                var: v,
                attr,
                op,
                value,
            } if v == var => {
                out.push((attr.clone(), *op, value.clone()));
                Ok(())
            }
            Condition::InRelation { .. } => Ok(()),
            other => Err(Error::Query(format!(
                "graph strategy supports only conjunctive attribute conditions, got {other:?}"
            ))),
        }
    }
    walk(cond, var, &mut out)?;
    Ok(out)
}

fn attr_conds_hold(
    sys: &ProvenanceSystem,
    conds: &[(String, CmpOp, Value)],
    node: &proql_provgraph::TupleNode,
) -> Result<bool> {
    if conds.is_empty() {
        return Ok(true);
    }
    let schema = sys.db.schema_of(&node.relation)?;
    let Some(values) = &node.values else {
        return Ok(false);
    };
    for (attr, op, lit) in conds {
        let pos = schema.position(attr).ok_or_else(|| {
            Error::Query(format!(
                "relation {} has no attribute {attr}",
                node.relation
            ))
        })?;
        let v = values.get(pos);
        let ok = match op {
            CmpOp::Eq => v == lit,
            CmpOp::Ne => v != lit,
            CmpOp::Lt => v < lit,
            CmpOp::Le => v <= lit,
            CmpOp::Gt => v > lit,
            CmpOp::Ge => v >= lit,
        };
        if !ok {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::translate::{translate, TranslateOptions};
    use proql_common::tup;
    use proql_provgraph::system::example_2_1;

    fn project(q: &str) -> (ProvenanceSystem, ProjectionResult) {
        let sys = example_2_1().unwrap();
        let t = translate(
            &sys,
            &parse_query(q).unwrap(),
            None,
            &TranslateOptions::default(),
        )
        .unwrap();
        let r = run_projection(&sys, &t).unwrap();
        (sys, r)
    }

    #[test]
    fn q1_returns_all_o_tuples_with_derivations() {
        let (_, r) = project("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x");
        // Four O tuples: sn1, sn2, cn1, cn2.
        let bound: BTreeSet<&Tuple> = r.bindings.iter().map(|b| &b.get("x").unwrap().1).collect();
        assert_eq!(bound.len(), 4);
        // Output subgraph includes m4, m5 and local derivations.
        assert!(r.derivations.contains_key("m4"));
        assert!(r.derivations.contains_key("m5"));
        assert!(r.derivations.keys().any(|k| k.starts_with("L_")));
        assert!(r.metrics.rules_executed > 0);
        assert!(r.metrics.sql_bytes > 0);
    }

    #[test]
    fn q2_only_includes_paths_touching_a() {
        let (_, r) = project("FOR [O $x] <-+ [A $y] INCLUDE PATH [$x] <-+ [$y] RETURN $x");
        assert!(!r.bindings.is_empty());
        // Derivations on A-involving paths: m4 and m5 qualify.
        assert!(r.derivations.contains_key("m4") || r.derivations.contains_key("m5"));
    }

    #[test]
    fn where_filters_bindings() {
        let (_, r) = project("FOR [O $x] INCLUDE PATH [$x] <-+ [] WHERE $x.h >= 6 RETURN $x");
        let bound: BTreeSet<&Tuple> = r.bindings.iter().map(|b| &b.get("x").unwrap().1).collect();
        // Only O tuples with h = 7 (sn1 and cn1).
        assert_eq!(
            bound,
            [tup!["sn1"], tup!["cn1"]].iter().collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn q4_common_provenance_pairs() {
        let (_, r) = project(
            "FOR [O $x] <-+ [$z], [C $y] <-+ [$z]
             INCLUDE PATH [$x] <-+ [], [$y] <-+ []
             RETURN $x, $y",
        );
        // O(cn2) and C(2,cn2) share provenance (A(2) / C(2,cn2) itself).
        assert!(!r.bindings.is_empty());
        let has_cn2_pair = r
            .bindings
            .iter()
            .any(|b| b["x"].1 == tup!["cn2"] && b["y"].0 == "C");
        assert!(has_cn2_pair, "bindings: {:?}", r.bindings);
    }

    #[test]
    fn projection_graph_matches_unfolded_projection() {
        let sys = example_2_1().unwrap();
        let q = parse_query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x").unwrap();
        let full = ProvGraph::from_system(&sys).unwrap();
        let via_graph = run_projection_graph(&sys, &full, &q).unwrap();
        let t = translate(&sys, &q, None, &TranslateOptions::default()).unwrap();
        let via_rules = run_projection(&sys, &t).unwrap();
        assert_eq!(via_graph.bindings, via_rules.bindings);
        // The graph walk reaches every derivation backward-reachable from O.
        // The unfolded route cuts cyclic re-derivations (paper: acyclic
        // focus), so it may see a subset of derivations.
        for (m, rows) in &via_rules.derivations {
            let graph_rows = via_graph
                .derivations
                .get(m)
                .unwrap_or_else(|| panic!("graph route missing mapping {m}"));
            assert!(rows.is_subset(graph_rows), "mapping {m}");
        }
    }

    #[test]
    fn graph_strategy_respects_where() {
        let sys = example_2_1().unwrap();
        let q =
            parse_query("FOR [O $x] INCLUDE PATH [$x] <-+ [] WHERE $x.h >= 6 RETURN $x").unwrap();
        let full = ProvGraph::from_system(&sys).unwrap();
        let r = run_projection_graph(&sys, &full, &q).unwrap();
        assert_eq!(r.bindings.len(), 2);
    }

    #[test]
    fn graph_strategy_rejects_complex_patterns() {
        let sys = example_2_1().unwrap();
        let full = ProvGraph::from_system(&sys).unwrap();
        let q = parse_query("FOR [O $x] <m5 [C $y] RETURN $x").unwrap();
        assert!(run_projection_graph(&sys, &full, &q).is_err());
    }

    #[test]
    fn to_graph_round_trips_subgraph() {
        let (sys, r) = project("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x");
        let g = r.to_graph(&sys).unwrap();
        assert!(g.derivation_count() > 0);
        assert!(g.find_tuple("O", &tup!["cn2"]).is_some());
        // Base derivations flagged.
        let a = g.find_tuple("A", &tup![2]).unwrap();
        assert!(g.is_base(a));
    }
}
