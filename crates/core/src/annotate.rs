//! Annotation computation (paper §3.2.2): evaluating the projected
//! subgraph in a semiring, driven by the query's `ASSIGNING EACH` clauses.

use crate::ast::{Condition, Evaluate, SetValue};
use crate::exec::ProjectionResult;
use proql_common::{Error, Parallelism, Result, Tuple, Value};
use proql_provgraph::{ProvenanceSystem, TupleNode};
use proql_semiring::{evaluate_with, Annotation, Assignment, MapFn, SecurityLevel, SemiringKind};
use std::collections::{BTreeMap, HashMap};

/// One annotated distinguished node.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedRow {
    /// The RETURN variable.
    pub var: String,
    /// The node's relation.
    pub relation: String,
    /// The node's key.
    pub key: Tuple,
    /// Its computed annotation.
    pub annotation: Annotation,
}

/// The result of `EVALUATE <semiring> OF { ... }`.
#[derive(Debug, Clone)]
pub struct AnnotatedResult {
    /// The semiring used.
    pub semiring: SemiringKind,
    /// Annotations of the distinguished nodes.
    pub rows: Vec<AnnotatedRow>,
    /// For the probability semiring: per-leaf probabilities collected from
    /// numeric `SET` clauses (feed these to
    /// [`proql_semiring::event_probability`]).
    pub leaf_probs: HashMap<String, f64>,
}

impl AnnotatedResult {
    /// Look up the annotation of a specific node.
    pub fn annotation_of(&self, relation: &str, key: &Tuple) -> Option<&Annotation> {
        self.rows
            .iter()
            .find(|r| r.relation == relation && &r.key == key)
            .map(|r| &r.annotation)
    }
}

/// Run the annotation computation over a projection result.
pub fn run_annotation(
    sys: &ProvenanceSystem,
    projection: &ProjectionResult,
    spec: &Evaluate,
) -> Result<AnnotatedResult> {
    run_annotation_opts(sys, projection, spec, Parallelism::Serial)
}

/// [`run_annotation`] with a [`Parallelism`] knob, forwarded to the
/// grouped-aggregation ⊕ path and to the level-parallel graph walk.
pub fn run_annotation_opts(
    sys: &ProvenanceSystem,
    projection: &ProjectionResult,
    spec: &Evaluate,
    par: Parallelism,
) -> Result<AnnotatedResult> {
    let graph = projection.to_graph(sys)?;
    let kind = spec.semiring;

    // Leaf probabilities are collected as a side effect of leaf CASE
    // evaluation, so compute them eagerly for all leaves.
    let mut leaf_probs: HashMap<String, f64> = HashMap::new();
    let mut leaf_values: HashMap<String, Annotation> = HashMap::new();
    for t in graph.tuple_ids() {
        let node = graph.tuple(t);
        let label = proql_semiring::eval::leaf_label(node);
        let (value, prob) = leaf_value_for(sys, spec, kind, node, &label)?;
        if let Some(p) = prob {
            leaf_probs.insert(label.clone(), p);
        }
        leaf_values.insert(label, value);
    }

    let map_fns: HashMap<String, MapFn> = sys
        .specs()
        .iter()
        .map(|s| map_fn_for(spec, kind, &s.mapping).map(|f| (s.mapping.clone(), f)))
        .collect::<Result<_>>()?;

    let leaf = |_node: &TupleNode, label: &str| {
        leaf_values
            .get(label)
            .cloned()
            .unwrap_or_else(|| kind.default_leaf(label))
    };
    let map_fn = |m: &str| map_fns.get(m).cloned().unwrap_or(MapFn::Identity);

    // Scalar semirings on acyclic projections evaluate their ⊕-sums through
    // the batch grouped-aggregation operator (the paper's GROUP BY step);
    // set-valued semirings and cyclic graphs use the direct graph walk.
    let values = match crate::agg_eval::evaluate_via_aggregation(&graph, kind, &leaf, &map_fn, par)?
    {
        Some(v) => v,
        None => {
            let assignment = Assignment::default_for(kind)
                .with_leaf(leaf)
                .with_map_fn(map_fn);
            evaluate_with(&graph, &assignment, par)?
        }
    };

    let mut rows = Vec::new();
    let mut seen: BTreeMap<(String, String, Tuple), ()> = BTreeMap::new();
    for binding in &projection.bindings {
        for (var, (relation, key)) in binding {
            if seen
                .insert((var.clone(), relation.clone(), key.clone()), ())
                .is_some()
            {
                continue;
            }
            let annotation = graph
                .find_tuple(relation, key)
                .and_then(|t| values.get(&t).cloned())
                .unwrap_or_else(|| kind.zero());
            rows.push(AnnotatedRow {
                var: var.clone(),
                relation: relation.clone(),
                key: key.clone(),
                annotation,
            });
        }
    }
    Ok(AnnotatedResult {
        semiring: kind,
        rows,
        leaf_probs,
    })
}

/// Evaluate the leaf CASE ladder for one node. Returns the annotation and,
/// for numeric SETs under the probability semiring, the leaf probability.
pub(crate) fn leaf_value_for(
    sys: &ProvenanceSystem,
    spec: &Evaluate,
    kind: SemiringKind,
    node: &TupleNode,
    label: &str,
) -> Result<(Annotation, Option<f64>)> {
    let Some(assign) = &spec.leaf_assign else {
        return Ok((kind.default_leaf(label), None));
    };
    for (cond, set) in &assign.cases {
        if leaf_cond_holds(sys, cond, &assign.var, node)? {
            return set_to_leaf(kind, set, label);
        }
    }
    match &assign.default {
        Some(set) => set_to_leaf(kind, set, label),
        // Paper: without DEFAULT, unmatched leaves get the ⊗-identity.
        None => Ok((kind.one(), None)),
    }
}

fn set_to_leaf(
    kind: SemiringKind,
    set: &SetValue,
    label: &str,
) -> Result<(Annotation, Option<f64>)> {
    match set {
        SetValue::Lit(Value::Bool(b)) => match kind {
            SemiringKind::Derivability | SemiringKind::Trust => Ok((Annotation::Bool(*b), None)),
            _ => Err(Error::Query(format!(
                "boolean SET value is invalid in the {kind} semiring"
            ))),
        },
        SetValue::Lit(v @ (Value::Int(_) | Value::Float(_))) => {
            let f = v.as_float().expect("numeric");
            match kind {
                SemiringKind::Weight => Ok((Annotation::Weight(f), None)),
                SemiringKind::Counting => Ok((Annotation::Count(f as u64), None)),
                // Probability: the leaf keeps its event variable; the
                // number is the base event's probability.
                SemiringKind::Probability => Ok((kind.default_leaf(label), Some(f))),
                _ => Err(Error::Query(format!(
                    "numeric SET value is invalid in the {kind} semiring"
                ))),
            }
        }
        SetValue::Lit(Value::Str(s)) => match kind {
            SemiringKind::Confidentiality => {
                let lvl = SecurityLevel::parse(s)
                    .ok_or_else(|| Error::Query(format!("unknown confidentiality level {s}")))?;
                Ok((Annotation::Level(lvl), None))
            }
            _ => Err(Error::Query(format!(
                "string SET value is invalid in the {kind} semiring"
            ))),
        },
        SetValue::Lit(Value::Null) => Ok((kind.zero(), None)),
        SetValue::Input | SetValue::InputPlus(_) | SetValue::InputTimes(_) => Err(Error::Query(
            "leaf SET values cannot reference the input variable".into(),
        )),
    }
}

fn leaf_cond_holds(
    sys: &ProvenanceSystem,
    cond: &Condition,
    leaf_var: &str,
    node: &TupleNode,
) -> Result<bool> {
    match cond {
        Condition::And(parts) => {
            for p in parts {
                if !leaf_cond_holds(sys, p, leaf_var, node)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Condition::Or(parts) => {
            for p in parts {
                if leaf_cond_holds(sys, p, leaf_var, node)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Condition::Not(inner) => Ok(!leaf_cond_holds(sys, inner, leaf_var, node)?),
        Condition::InRelation { var, relation } => {
            check_var(var, leaf_var)?;
            Ok(node.relation == *relation)
        }
        Condition::AttrCmp {
            var,
            attr,
            op,
            value,
        } => {
            check_var(var, leaf_var)?;
            let schema = sys.db.schema_of(&node.relation)?;
            let Some(pos) = schema.position(attr) else {
                // Attribute of a different relation: the case simply does
                // not apply (e.g. `$y.height >= 6` tested on a C tuple).
                return Ok(false);
            };
            let Some(values) = &node.values else {
                return Ok(false);
            };
            let v = values.get(pos);
            Ok(match op {
                crate::ast::CmpOp::Eq => v == value,
                crate::ast::CmpOp::Ne => v != value,
                crate::ast::CmpOp::Lt => v < value,
                crate::ast::CmpOp::Le => v <= value,
                crate::ast::CmpOp::Gt => v > value,
                crate::ast::CmpOp::Ge => v >= value,
            })
        }
        Condition::MappingIs { .. } => Err(Error::Query(
            "mapping conditions are invalid in leaf_node CASE clauses".into(),
        )),
    }
}

fn check_var(var: &str, leaf_var: &str) -> Result<()> {
    if var == leaf_var {
        Ok(())
    } else {
        Err(Error::Query(format!(
            "CASE condition references ${var}, expected ${leaf_var}"
        )))
    }
}

/// Build the mapping function for one mapping from the `ASSIGNING EACH
/// mapping` ladder.
pub(crate) fn map_fn_for(spec: &Evaluate, kind: SemiringKind, mapping: &str) -> Result<MapFn> {
    let Some(assign) = &spec.map_assign else {
        return Ok(MapFn::Identity);
    };
    for (cond, set) in &assign.cases {
        if map_cond_holds(cond, &assign.pvar, mapping)? {
            return set_to_map_fn(kind, set, &assign.zvar);
        }
    }
    match &assign.default {
        Some(set) => set_to_map_fn(kind, set, &assign.zvar),
        None => Ok(MapFn::Identity),
    }
}

fn map_cond_holds(cond: &Condition, pvar: &str, mapping: &str) -> Result<bool> {
    match cond {
        Condition::And(parts) => {
            for p in parts {
                if !map_cond_holds(p, pvar, mapping)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Condition::Or(parts) => {
            for p in parts {
                if map_cond_holds(p, pvar, mapping)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Condition::Not(inner) => Ok(!map_cond_holds(inner, pvar, mapping)?),
        Condition::MappingIs {
            var,
            mapping: m,
            positive,
        } => {
            check_var(var, pvar)?;
            Ok((m == mapping) == *positive)
        }
        other => Err(Error::Query(format!(
            "unsupported condition in mapping CASE clause: {other:?}"
        ))),
    }
}

fn set_to_map_fn(kind: SemiringKind, set: &SetValue, _zvar: &str) -> Result<MapFn> {
    match set {
        SetValue::Input => Ok(MapFn::Identity),
        SetValue::Lit(Value::Bool(false)) | SetValue::Lit(Value::Null) => Ok(MapFn::zero(kind)),
        SetValue::Lit(Value::Bool(true)) => match kind {
            // `SET true` would violate f(0)=0 unless read as the neutral
            // function; the paper's restriction forbids constant-nonzero.
            SemiringKind::Derivability | SemiringKind::Trust => Ok(MapFn::Identity),
            _ => Err(Error::Query(format!(
                "boolean mapping SET is invalid in the {kind} semiring"
            ))),
        },
        SetValue::InputPlus(c) => match kind {
            SemiringKind::Weight => Ok(MapFn::TimesConst(Annotation::Weight(*c))),
            _ => Err(Error::Query(format!(
                "`SET $z + c` is only meaningful in the WEIGHT semiring, not {kind}"
            ))),
        },
        SetValue::InputTimes(k) => match kind {
            SemiringKind::Counting => Ok(MapFn::TimesConst(Annotation::Count(*k as u64))),
            _ => Err(Error::Query(format!(
                "`SET $z * k` is only meaningful in the COUNT semiring, not {kind}"
            ))),
        },
        SetValue::Lit(v @ (Value::Int(_) | Value::Float(_))) => {
            let f = v.as_float().expect("numeric");
            match kind {
                SemiringKind::Weight => Ok(MapFn::TimesConst(Annotation::Weight(f))),
                SemiringKind::Counting => Ok(MapFn::TimesConst(Annotation::Count(f as u64))),
                _ => Err(Error::Query(format!(
                    "numeric mapping SET is invalid in the {kind} semiring"
                ))),
            }
        }
        SetValue::Lit(Value::Str(s)) => match kind {
            SemiringKind::Confidentiality => {
                let lvl = SecurityLevel::parse(s)
                    .ok_or_else(|| Error::Query(format!("unknown confidentiality level {s}")))?;
                Ok(MapFn::TimesConst(Annotation::Level(lvl)))
            }
            _ => Err(Error::Query(format!(
                "string mapping SET is invalid in the {kind} semiring"
            ))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::translate::{translate, TranslateOptions};
    use proql_common::tup;
    use proql_provgraph::system::example_2_1;

    fn annotate(q: &str) -> AnnotatedResult {
        let sys = example_2_1().unwrap();
        let query = parse_query(q).unwrap();
        let t = translate(&sys, &query, None, &TranslateOptions::default()).unwrap();
        let proj = crate::exec::run_projection(&sys, &t).unwrap();
        run_annotation(&sys, &proj, query.evaluate.as_ref().unwrap()).unwrap()
    }

    #[test]
    fn q5_derivability_default_assignment() {
        let r = annotate(
            "EVALUATE DERIVABILITY OF {
               FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
             }",
        );
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            assert_eq!(row.annotation, Annotation::Bool(true), "{:?}", row.key);
        }
    }

    #[test]
    fn q6_lineage() {
        let r = annotate(
            "EVALUATE LINEAGE OF {
               FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
             }",
        );
        let cn2 = r.annotation_of("O", &tup!["cn2"]).unwrap();
        let lineage = cn2.as_lineage().unwrap();
        assert!(lineage.contains("A(2)"));
        assert!(lineage.contains("C(2,cn2)"));
    }

    #[test]
    fn q7_trust_policy_from_paper() {
        // Paper Q7 adapted to our schema: distrust A tuples with len >= 6,
        // trust C, distrust m4.
        let r = annotate(
            "EVALUATE TRUST OF {
               FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
             } ASSIGNING EACH leaf_node $y {
               CASE $y in C : SET true
               CASE $y in A AND $y.len >= 6 : SET false
               DEFAULT : SET true
             } ASSIGNING EACH mapping $p($z) {
               CASE $p = m4 : SET false
               DEFAULT : SET $z
             }",
        );
        assert_eq!(
            r.annotation_of("O", &tup!["sn1"]),
            Some(&Annotation::Bool(false))
        );
        assert_eq!(
            r.annotation_of("O", &tup!["cn2"]),
            Some(&Annotation::Bool(true))
        );
        assert_eq!(
            r.annotation_of("O", &tup!["cn1"]),
            Some(&Annotation::Bool(false))
        );
        // O(sn2): only derivation is via the distrusted m4 from A(2):
        // untrusted even though A(2) is trusted.
        assert_eq!(
            r.annotation_of("O", &tup!["sn2"]),
            Some(&Annotation::Bool(false))
        );
    }

    #[test]
    fn q8_weight_with_mapping_cost() {
        let r = annotate(
            "EVALUATE WEIGHT OF {
               FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
             } ASSIGNING EACH leaf_node $y {
               CASE $y in A : SET 10
               DEFAULT : SET 1
             } ASSIGNING EACH mapping $p($z) {
               CASE $p = m5 : SET $z + 2
               DEFAULT : SET $z
             }",
        );
        // O(cn2) via m5: A(2)=10 ⊗ C(2,cn2)=1 plus m5 cost 2 → 13.
        assert_eq!(
            r.annotation_of("O", &tup!["cn2"]),
            Some(&Annotation::Weight(13.0))
        );
        // O(sn2) via m4 from A(2): 10.
        assert_eq!(
            r.annotation_of("O", &tup!["sn2"]),
            Some(&Annotation::Weight(10.0))
        );
    }

    #[test]
    fn q9_probability_collects_leaf_probs() {
        let r = annotate(
            "EVALUATE PROBABILITY OF {
               FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
             } ASSIGNING EACH leaf_node $y {
               CASE $y in A : SET 0.9
               DEFAULT : SET 0.5
             }",
        );
        assert_eq!(r.leaf_probs.get("A(2)"), Some(&0.9));
        assert_eq!(r.leaf_probs.get("C(2,cn2)"), Some(&0.5));
        let ev = r
            .annotation_of("O", &tup!["cn2"])
            .unwrap()
            .as_event()
            .unwrap();
        let p = proql_semiring::event_probability(ev, &|e| *r.leaf_probs.get(e).unwrap_or(&1.0))
            .unwrap();
        assert!((p - 0.45).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn q10_confidentiality() {
        let r = annotate(
            "EVALUATE CONFIDENTIALITY OF {
               FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
             } ASSIGNING EACH leaf_node $y {
               CASE $y in A : SET secret
               DEFAULT : SET public
             }",
        );
        // Every O tuple requires an A tuple: secret.
        for row in &r.rows {
            assert_eq!(
                row.annotation,
                Annotation::Level(SecurityLevel::Secret),
                "{:?}",
                row.key
            );
        }
    }

    #[test]
    fn missing_default_uses_one() {
        let r = annotate(
            "EVALUATE TRUST OF {
               FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
             } ASSIGNING EACH leaf_node $y {
               CASE $y in A AND $y.len >= 100 : SET false
             }",
        );
        // No case matches and no DEFAULT: everything gets `one` = true.
        for row in &r.rows {
            assert_eq!(row.annotation, Annotation::Bool(true));
        }
    }

    #[test]
    fn type_mismatched_set_is_error() {
        let sys = example_2_1().unwrap();
        let query = parse_query(
            "EVALUATE WEIGHT OF {
               FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
             } ASSIGNING EACH leaf_node $y {
               DEFAULT : SET true
             }",
        )
        .unwrap();
        let t = translate(&sys, &query, None, &TranslateOptions::default()).unwrap();
        let proj = crate::exec::run_projection(&sys, &t).unwrap();
        assert!(run_annotation(&sys, &proj, query.evaluate.as_ref().unwrap()).is_err());
    }
}
