//! The ProQL engine: parse → translate → execute → annotate.

use crate::annotate::{run_annotation_opts, AnnotatedResult};
use crate::ast::Query;
use crate::exec::{run_projection_graph, run_projection_opts, ProjectionResult};
use crate::parser::parse_query;
use crate::translate::{translate, BodyRewriter, TranslateOptions, TranslateStats};
use proql_common::{Parallelism, Result};
use proql_provgraph::{ProvGraph, ProvenanceSystem};
use proql_storage::ExecMode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which execution strategy to use for graph projections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Choose automatically: the paper's unfold-to-SQL strategy for acyclic
    /// mapping topologies, the bottom-up graph walk for cyclic ones.
    #[default]
    Auto,
    /// Always unfold into conjunctive queries (paper §4.2; acyclic focus).
    Unfold,
    /// Always walk the materialized provenance graph bottom-up (the
    /// alternative scheme sketched in the paper's §8; handles cycles).
    Graph,
}

/// Engine configuration.
#[derive(Clone)]
pub struct EngineOptions {
    /// Execution strategy.
    pub strategy: Strategy,
    /// Plan executor for the unfold strategy: the columnar batch pipeline
    /// (default), or the row-at-a-time hash-join / nested-loop baselines
    /// kept for equivalence testing and ablation benchmarks.
    pub exec_mode: ExecMode,
    /// Morsel-driven parallelism for plan execution and annotation
    /// evaluation. Defaults to the `PROQL_THREADS` environment variable
    /// (serial when unset), and is guaranteed result-identical to
    /// [`Parallelism::Serial`] at every setting.
    pub parallelism: Parallelism,
    /// Unfolding limits.
    pub translate: TranslateOptions,
    /// Optional rule rewriter (ASR optimization plugs in here).
    pub rewriter: Option<Arc<dyn BodyRewriter + Send + Sync>>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            strategy: Strategy::default(),
            exec_mode: ExecMode::default(),
            parallelism: Parallelism::from_env(),
            translate: TranslateOptions::default(),
            rewriter: None,
        }
    }
}

impl std::fmt::Debug for EngineOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineOptions")
            .field("strategy", &self.strategy)
            .field("exec_mode", &self.exec_mode)
            .field("parallelism", &self.parallelism)
            .field("translate", &self.translate)
            .field("rewriter", &self.rewriter.as_ref().map(|_| "<dyn>"))
            .finish()
    }
}

/// Timing and size statistics of one query execution — the quantities the
/// paper's experiments report (unfolding time, evaluation time, number of
/// unfolded rules).
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Time spent matching + unfolding (the paper's "unfolding time").
    pub unfold_time: Duration,
    /// Time spent executing plans (the paper's "evaluation time").
    pub eval_time: Duration,
    /// Unfolded-rule statistics.
    pub translate: TranslateStats,
    /// Join operators across all executed plans.
    pub total_joins: usize,
    /// Bytes of generated SQL.
    pub sql_bytes: usize,
}

/// The output of [`Engine::query`].
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The projected subgraph and bindings.
    pub projection: ProjectionResult,
    /// The annotation computation result, when the query had an
    /// `EVALUATE` wrapper.
    pub annotated: Option<AnnotatedResult>,
    /// Statistics.
    pub stats: QueryStats,
}

/// The ProQL query engine over a [`ProvenanceSystem`].
#[derive(Debug)]
pub struct Engine {
    /// The underlying system (database + mappings + provenance).
    pub sys: ProvenanceSystem,
    /// Configuration.
    pub options: EngineOptions,
    cached_graph: Option<ProvGraph>,
}

impl Engine {
    /// Wrap a provenance system with default options.
    pub fn new(sys: ProvenanceSystem) -> Self {
        Engine {
            sys,
            options: EngineOptions::default(),
            cached_graph: None,
        }
    }

    /// Wrap with options.
    pub fn with_options(sys: ProvenanceSystem, options: EngineOptions) -> Self {
        Engine {
            sys,
            options,
            cached_graph: None,
        }
    }

    /// Parse and run a ProQL query.
    pub fn query(&mut self, text: &str) -> Result<QueryOutput> {
        let q = parse_query(text)?;
        self.query_parsed(&q)
    }

    /// Run a parsed query.
    pub fn query_parsed(&mut self, q: &Query) -> Result<QueryOutput> {
        let strategy = match self.options.strategy {
            Strategy::Auto => {
                if self.sys.schema_graph().is_cyclic() {
                    Strategy::Graph
                } else {
                    Strategy::Unfold
                }
            }
            s => s,
        };
        let mut stats = QueryStats::default();
        let projection = match strategy {
            Strategy::Unfold => {
                let t0 = Instant::now();
                let translation = translate(
                    &self.sys,
                    q,
                    self.options
                        .rewriter
                        .as_deref()
                        .map(|r| r as &dyn BodyRewriter),
                    &self.options.translate,
                )?;
                stats.unfold_time = t0.elapsed();
                stats.translate = translation.stats.clone();
                let t1 = Instant::now();
                let proj = run_projection_opts(
                    &self.sys,
                    &translation,
                    self.options.exec_mode,
                    self.options.parallelism,
                )?;
                stats.eval_time = t1.elapsed();
                stats.total_joins = proj.metrics.total_joins;
                stats.sql_bytes = proj.metrics.sql_bytes;
                proj
            }
            Strategy::Graph | Strategy::Auto => {
                if self.cached_graph.is_none() {
                    self.cached_graph = Some(ProvGraph::from_system(&self.sys)?);
                }
                let t1 = Instant::now();
                let proj = run_projection_graph(
                    &self.sys,
                    self.cached_graph.as_ref().expect("cached above"),
                    q,
                )?;
                stats.eval_time = t1.elapsed();
                proj
            }
        };
        let annotated = match &q.evaluate {
            Some(spec) => Some(run_annotation_opts(
                &self.sys,
                &projection,
                spec,
                self.options.parallelism,
            )?),
            None => None,
        };
        Ok(QueryOutput {
            projection,
            annotated,
            stats,
        })
    }

    /// Invalidate the cached provenance graph (call after new exchanges).
    pub fn invalidate_cache(&mut self) {
        self.cached_graph = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::tup;
    use proql_provgraph::system::example_2_1;
    use proql_semiring::Annotation;

    fn engine(strategy: Strategy) -> Engine {
        let mut e = Engine::new(example_2_1().unwrap());
        e.options.strategy = strategy;
        e
    }

    #[test]
    fn auto_picks_graph_for_cyclic_example() {
        // Example 2.1's schema graph is cyclic (m1/m3).
        let mut e = engine(Strategy::Auto);
        let out = e
            .query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap();
        assert_eq!(out.projection.bindings.len(), 4);
        assert!(out.annotated.is_none());
    }

    #[test]
    fn unfold_strategy_reports_stats() {
        let mut e = engine(Strategy::Unfold);
        let out = e
            .query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap();
        assert!(out.stats.translate.rules > 0);
        assert!(out.stats.sql_bytes > 0);
        assert!(out.stats.total_joins > 0);
    }

    #[test]
    fn trust_query_end_to_end_both_strategies() {
        let q = "EVALUATE TRUST OF {
                   FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
                 } ASSIGNING EACH leaf_node $y {
                   CASE $y in A AND $y.len >= 6 : SET false
                   DEFAULT : SET true
                 } ASSIGNING EACH mapping $p($z) {
                   CASE $p = m4 : SET false
                   DEFAULT : SET $z
                 }";
        for strategy in [Strategy::Unfold, Strategy::Graph] {
            let mut e = engine(strategy);
            let out = e.query(q).unwrap();
            let ann = out.annotated.unwrap();
            assert_eq!(
                ann.annotation_of("O", &tup!["cn2"]),
                Some(&Annotation::Bool(true)),
                "{strategy:?}"
            );
            assert_eq!(
                ann.annotation_of("O", &tup!["sn1"]),
                Some(&Annotation::Bool(false)),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn parse_errors_surface() {
        let mut e = engine(Strategy::Auto);
        assert!(e.query("FOR [O $x RETURN $x").is_err());
    }

    #[test]
    fn cache_invalidation_sees_new_data() {
        let mut e = engine(Strategy::Graph);
        let before = e
            .query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap()
            .projection
            .bindings
            .len();
        e.sys.insert_local("A", tup![9, "sn9", 1]).unwrap();
        e.sys.run_exchange().unwrap();
        e.invalidate_cache();
        let after = e
            .query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap()
            .projection
            .bindings
            .len();
        assert!(after > before);
    }
}
