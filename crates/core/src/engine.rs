//! The ProQL engine: parse → **prepare** (translate + optimize) →
//! **execute** → annotate.
//!
//! Preparation and execution are split: [`Engine::prepare`] produces a
//! [`PreparedQuery`] — the parsed AST, every unfolded rule's optimized
//! plan, and the query's read set — and [`Engine::execute`] runs it.
//! A `PreparedQuery` is plain data (no references into the engine), so a
//! query service can cache it and execute it against later snapshots:
//! plans never affect correctness, only cost, which is why reuse across
//! data changes is always safe. The fingerprint stamps say when reuse
//! stops being cost-optimal.

use crate::annotate::{run_annotation_opts, AnnotatedResult};
use crate::ast::Query;
use crate::exec::{
    prepare_rules, run_projection_graph, run_projection_prepared, run_projection_prepared_profiled,
    PreparedRule, ProjectionResult,
};
use crate::parser::parse_query;
use crate::translate::{translate, BodyRewriter, TranslateOptions, TranslateStats, Translation};
use proql_common::{trace, Parallelism, Result};
use proql_provgraph::{ProvGraph, ProvenanceSystem};
use proql_storage::{
    explain::{explain_tree, explain_tree_analyzed},
    optimize::estimate_rows,
    ExecMode, OpStat,
};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// Read-lock with poison recovery: a thread that panicked while holding
/// the graph-cache lock leaves at worst a stale-or-absent cache entry,
/// which the version stamp already guards against — so the poison flag
/// carries no information and recovering keeps one crashed query from
/// wedging every other worker on the engine.
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-lock with poison recovery (see [`read_lock`]).
fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// Which execution strategy to use for graph projections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Choose automatically: the paper's unfold-to-SQL strategy for acyclic
    /// mapping topologies, the bottom-up graph walk for cyclic ones.
    #[default]
    Auto,
    /// Always unfold into conjunctive queries (paper §4.2; acyclic focus).
    Unfold,
    /// Always walk the materialized provenance graph bottom-up (the
    /// alternative scheme sketched in the paper's §8; handles cycles).
    Graph,
}

/// Engine configuration.
#[derive(Clone)]
pub struct EngineOptions {
    /// Execution strategy.
    pub strategy: Strategy,
    /// Plan executor for the unfold strategy: the columnar batch pipeline
    /// (default), or the row-at-a-time hash-join / nested-loop baselines
    /// kept for equivalence testing and ablation benchmarks.
    pub exec_mode: ExecMode,
    /// Morsel-driven parallelism for plan execution and annotation
    /// evaluation. Defaults to the `PROQL_THREADS` environment variable
    /// (serial when unset), and is guaranteed result-identical to
    /// [`Parallelism::Serial`] at every setting.
    pub parallelism: Parallelism,
    /// Unfolding limits.
    pub translate: TranslateOptions,
    /// Optional rule rewriter (ASR optimization plugs in here).
    pub rewriter: Option<Arc<dyn BodyRewriter + Send + Sync>>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            strategy: Strategy::default(),
            exec_mode: ExecMode::default(),
            parallelism: Parallelism::from_env(),
            translate: TranslateOptions::default(),
            rewriter: None,
        }
    }
}

impl std::fmt::Debug for EngineOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineOptions")
            .field("strategy", &self.strategy)
            .field("exec_mode", &self.exec_mode)
            .field("parallelism", &self.parallelism)
            .field("translate", &self.translate)
            .field("rewriter", &self.rewriter.as_ref().map(|_| "<dyn>"))
            .finish()
    }
}

/// Timing and size statistics of one query execution — the quantities the
/// paper's experiments report (unfolding time, evaluation time, number of
/// unfolded rules).
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Time spent matching + unfolding (the paper's "unfolding time").
    pub unfold_time: Duration,
    /// Time spent executing plans (the paper's "evaluation time").
    pub eval_time: Duration,
    /// Unfolded-rule statistics.
    pub translate: TranslateStats,
    /// Join operators across all executed plans.
    pub total_joins: usize,
    /// Bytes of generated SQL.
    pub sql_bytes: usize,
}

/// The output of [`Engine::query`].
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The projected subgraph and bindings.
    pub projection: ProjectionResult,
    /// The annotation computation result, when the query had an
    /// `EVALUATE` wrapper.
    pub annotated: Option<AnnotatedResult>,
    /// Statistics.
    pub stats: QueryStats,
    /// Every relation (base table or view, expanded down to the base
    /// tables views read) whose contents this query's answer depends on.
    /// The query service's result cache keeps a cached answer alive
    /// exactly until a write touches one of these.
    pub touched: BTreeSet<String>,
    /// `EXPLAIN` output: the chosen plans with estimated rows per
    /// operator. `Some` exactly when the query carried the `EXPLAIN`
    /// prefix (the projection is then empty).
    pub plan: Option<String>,
}

/// A query prepared once — parsed, translated, and optimized — and
/// executable many times via [`Engine::execute`].
///
/// Holds no references into the engine it was prepared on, so services
/// cache it across snapshots. Reusing a prepared plan is **always
/// correct** (optimizer choices never change results); the
/// `stats_version` / `stats_fingerprint` stamps only say when the plan
/// stops being cost-optimal and deserves re-preparation.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// The parsed query.
    pub query: Query,
    /// The resolved execution strategy (`Auto` is resolved at prepare
    /// time from the schema graph, which writes cannot change).
    pub(crate) strategy: Strategy,
    /// Unfold-strategy artifacts: the translation plus one optimized plan
    /// per unfolded rule. `None` under the graph strategy.
    pub(crate) unfold: Option<PreparedUnfold>,
    /// The read set: every relation the answer depends on.
    pub touched: BTreeSet<String>,
    /// [`ProvenanceSystem::version`] at prepare time.
    pub stats_version: u64,
    /// Bucketed statistics fingerprint over the read set (see
    /// [`proql_storage::stats`]): unchanged fingerprint ⇒ the cached plan
    /// is still the plan the optimizer would pick.
    pub stats_fingerprint: u64,
    /// Time spent translating + optimizing (the paper's "unfolding time").
    pub prepare_time: Duration,
}

#[derive(Debug, Clone)]
pub(crate) struct PreparedUnfold {
    pub(crate) translation: Translation,
    pub(crate) rules: Vec<PreparedRule>,
}

/// The ProQL query engine over a [`ProvenanceSystem`].
///
/// Read queries take `&self`: the lazily built provenance graph lives
/// behind interior mutability and is **version-stamped** — it is rebuilt
/// automatically whenever [`ProvenanceSystem::version`] no longer matches
/// the version it was built at, so callers that mutate `sys` between
/// queries never observe stale graph results. An `Engine` is therefore
/// `Send + Sync` and can serve many concurrent readers (see the
/// `proql-service` crate).
#[derive(Debug)]
pub struct Engine {
    /// The underlying system (database + mappings + provenance).
    pub sys: ProvenanceSystem,
    /// Configuration.
    pub options: EngineOptions,
    cached_graph: RwLock<Option<(u64, Arc<ProvGraph>)>>,
    graph_builds: AtomicU64,
    graph_patches: AtomicU64,
}

impl Engine {
    /// Wrap a provenance system with default options.
    pub fn new(sys: ProvenanceSystem) -> Self {
        Engine::with_options(sys, EngineOptions::default())
    }

    /// Wrap with options.
    pub fn with_options(sys: ProvenanceSystem, options: EngineOptions) -> Self {
        Engine {
            sys,
            options,
            cached_graph: RwLock::new(None),
            graph_builds: AtomicU64::new(0),
            graph_patches: AtomicU64::new(0),
        }
    }

    /// Parse and run a ProQL query.
    pub fn query(&self, text: &str) -> Result<QueryOutput> {
        let q = parse_query(text)?;
        self.query_parsed(&q)
    }

    /// The in-memory provenance graph for the **current** system version.
    ///
    /// Built on first use and shared via `Arc`. When the system's version
    /// counter shows mutations happened since the cached graph was built,
    /// the engine prefers **patching**: if the system's delta log covers
    /// the span, the cached graph absorbs the per-mutation
    /// [`proql_provgraph::GraphDelta`]s (copy-on-write when older readers
    /// still hold it, in place otherwise) instead of being rebuilt from
    /// the relational encoding. Only a broken or trimmed delta chain —
    /// out-of-band `db` writes, schema changes, long-idle caches — falls
    /// back to a full rebuild.
    ///
    /// Concurrent callers at the same version are **coalesced**: one
    /// builds/patches while holding the cache's write lock, the rest wait
    /// and share the published `Arc`.
    pub fn graph(&self) -> Result<Arc<ProvGraph>> {
        let version = self.sys.version();
        if let Some((built_at, g)) = read_lock(&self.cached_graph).as_ref() {
            if *built_at == version {
                return Ok(Arc::clone(g));
            }
        }
        let mut slot = write_lock(&self.cached_graph);
        // Re-check under the write lock: a racing caller may have already
        // built this version while we waited (rebuild coalescing).
        if let Some((built_at, g)) = slot.as_ref() {
            if *built_at == version {
                return Ok(Arc::clone(g));
            }
        }
        let next = match slot.take() {
            Some((built_at, arc)) if self.sys.delta_entries(built_at, version).is_some() => {
                match self.patch_graph(built_at, version, arc) {
                    Ok(patched) => {
                        self.graph_patches.fetch_add(1, Ordering::Relaxed);
                        patched
                    }
                    // A delta that no longer decodes (e.g. its mapping
                    // vanished) falls back to a full rebuild.
                    Err(_) => self.build_graph()?,
                }
            }
            _ => self.build_graph()?,
        };
        *slot = Some((version, Arc::clone(&next)));
        Ok(next)
    }

    fn build_graph(&self) -> Result<Arc<ProvGraph>> {
        let _sp = trace::span("graph.build");
        self.graph_builds.fetch_add(1, Ordering::Relaxed);
        Ok(Arc::new(ProvGraph::from_system(&self.sys)?))
    }

    /// Apply the delta chain `(built_at, version]` to `arc`. In-place when
    /// this engine is the only holder; copy-on-write when in-flight
    /// readers still share the graph at the old version.
    fn patch_graph(
        &self,
        built_at: u64,
        version: u64,
        mut arc: Arc<ProvGraph>,
    ) -> Result<Arc<ProvGraph>> {
        let _sp = trace::span("graph.patch");
        let g = Arc::make_mut(&mut arc);
        let entries = self
            .sys
            .delta_entries(built_at, version)
            .expect("caller checked the span");
        for entry in entries {
            g.apply_delta(&self.sys, entry)?;
        }
        g.maybe_compact();
        Ok(arc)
    }

    /// Full graph rebuilds performed (delta chain unavailable).
    pub fn graph_build_count(&self) -> u64 {
        self.graph_builds.load(Ordering::Relaxed)
    }

    /// Incremental graph patches performed (writes absorbed without a
    /// rebuild).
    pub fn graph_patch_count(&self) -> u64 {
        self.graph_patches.load(Ordering::Relaxed)
    }

    /// Steal `prev`'s cached provenance graph (with its version stamp)
    /// into this engine. The single-writer service calls this when
    /// publishing a new snapshot: the next graph query then pays a delta
    /// patch instead of a from-scratch rebuild. `prev` is left without a
    /// cached graph — if a straggling reader of the old snapshot still
    /// needs one, it rebuilds at its own version, which stays correct.
    pub fn adopt_graph_cache(&self, prev: &Engine) {
        if let Some(entry) = write_lock(&prev.cached_graph).take() {
            *write_lock(&self.cached_graph) = Some(entry);
        }
    }

    /// Run a parsed query: prepare then execute.
    pub fn query_parsed(&self, q: &Query) -> Result<QueryOutput> {
        let prepared = self.prepare_parsed(q)?;
        self.execute(&prepared)
    }

    /// Parse and prepare a query without executing it.
    pub fn prepare(&self, text: &str) -> Result<PreparedQuery> {
        self.prepare_parsed(&parse_query(text)?)
    }

    /// Prepare a parsed query: resolve the strategy, translate, and run
    /// the optimizer's full pass pipeline over every unfolded rule.
    pub fn prepare_parsed(&self, q: &Query) -> Result<PreparedQuery> {
        let mut sp = trace::span("prepare");
        let strategy = match self.options.strategy {
            Strategy::Auto => {
                if self.sys.schema_graph().is_cyclic() {
                    Strategy::Graph
                } else {
                    Strategy::Unfold
                }
            }
            s => s,
        };
        let t0 = Instant::now();
        let (unfold, touched) = match strategy {
            Strategy::Unfold => {
                let translation = translate(
                    &self.sys,
                    q,
                    self.options
                        .rewriter
                        .as_deref()
                        .map(|r| r as &dyn BodyRewriter),
                    &self.options.translate,
                )?;
                let touched = touched_relations_unfold(&self.sys, &translation);
                let rules = prepare_rules(&self.sys, &translation)?;
                (Some(PreparedUnfold { translation, rules }), touched)
            }
            Strategy::Graph | Strategy::Auto => {
                // The graph walk reads the whole materialized system, so
                // a graph-strategy answer depends on every relation.
                let mut touched = BTreeSet::new();
                touched.extend(self.sys.db.table_names().map(str::to_string));
                touched.extend(self.sys.db.view_names().map(str::to_string));
                (None, touched)
            }
        };
        sp.field("strategy", format!("{strategy:?}"));
        if let Some(u) = &unfold {
            sp.field("rules", u.rules.len().to_string());
        }
        Ok(PreparedQuery {
            query: q.clone(),
            strategy,
            unfold,
            stats_version: self.sys.version(),
            stats_fingerprint: self.stats_fingerprint(&touched),
            touched,
            prepare_time: t0.elapsed(),
        })
    }

    /// Bucketed statistics fingerprint of `relations` against the current
    /// system (see [`proql_storage::stats`]). Plan caches compare this to
    /// [`PreparedQuery::stats_fingerprint`] to decide whether a cached
    /// plan is still the one the optimizer would choose.
    pub fn stats_fingerprint(&self, relations: &BTreeSet<String>) -> u64 {
        self.sys
            .stats_fingerprint(relations.iter().map(String::as_str))
    }

    /// Execute a prepared query. `EXPLAIN` queries render the chosen
    /// plans instead of running them; `EXPLAIN ANALYZE` executes for real
    /// and annotates the plans with actual rows and timings.
    pub fn execute(&self, p: &PreparedQuery) -> Result<QueryOutput> {
        let mut stats = QueryStats {
            unfold_time: p.prepare_time,
            ..QueryStats::default()
        };
        if let Some(u) = &p.unfold {
            stats.translate = u.translation.stats.clone();
        }
        if p.query.explain {
            if p.query.analyze {
                return self.execute_analyze(p, stats);
            }
            return Ok(QueryOutput {
                projection: ProjectionResult::default(),
                annotated: None,
                stats,
                touched: p.touched.clone(),
                plan: Some(self.render_plan(p)),
            });
        }
        let mut sp = trace::span("execute");
        let projection = match (&p.unfold, p.strategy) {
            (Some(u), _) => {
                let t1 = Instant::now();
                let proj = run_projection_prepared(
                    &self.sys,
                    &u.translation,
                    &u.rules,
                    self.options.exec_mode,
                    self.options.parallelism,
                )?;
                stats.eval_time = t1.elapsed();
                stats.total_joins = proj.metrics.total_joins;
                stats.sql_bytes = proj.metrics.sql_bytes;
                proj
            }
            (None, _) => {
                let graph = self.graph()?;
                let t1 = Instant::now();
                let proj = run_projection_graph(&self.sys, &graph, &p.query)?;
                stats.eval_time = t1.elapsed();
                proj
            }
        };
        sp.field("strategy", format!("{:?}", p.strategy));
        sp.field("rows", projection.metrics.rows.to_string());
        sp.field("bindings", projection.bindings.len().to_string());
        let annotated = match &p.query.evaluate {
            Some(spec) => Some(run_annotation_opts(
                &self.sys,
                &projection,
                spec,
                self.options.parallelism,
            )?),
            None => None,
        };
        Ok(QueryOutput {
            projection,
            annotated,
            stats,
            touched: p.touched.clone(),
            plan: None,
        })
    }

    /// The `EXPLAIN ANALYZE` path: execute the query for real (rules run
    /// serially under the profiled batch executor), then render the plan
    /// trees annotated with actual per-operator rows and inclusive wall
    /// times next to the optimizer's estimates. The reported totals come
    /// from the very projection that was executed, so they match a plain
    /// run of the same query exactly; the projection itself is withheld
    /// from the output (like `EXPLAIN`, the plan text *is* the result).
    fn execute_analyze(&self, p: &PreparedQuery, mut stats: QueryStats) -> Result<QueryOutput> {
        let mut sp = trace::span("execute");
        sp.field("analyze", "true");
        let t1 = Instant::now();
        let (projection, per_rule) = match &p.unfold {
            Some(u) => {
                let (proj, per_rule) = run_projection_prepared_profiled(
                    &self.sys,
                    &u.translation,
                    &u.rules,
                    self.options.exec_mode,
                    self.options.parallelism,
                )?;
                (proj, Some(per_rule))
            }
            None => {
                let graph = self.graph()?;
                (run_projection_graph(&self.sys, &graph, &p.query)?, None)
            }
        };
        let exec_time = t1.elapsed();
        stats.eval_time = exec_time;
        stats.total_joins = projection.metrics.total_joins;
        stats.sql_bytes = projection.metrics.sql_bytes;
        sp.field("rows", projection.metrics.rows.to_string());
        sp.field("bindings", projection.bindings.len().to_string());
        let plan = self.render_plan_analyzed(p, per_rule.as_deref(), &projection, exec_time);
        Ok(QueryOutput {
            projection: ProjectionResult::default(),
            annotated: None,
            stats,
            touched: p.touched.clone(),
            plan: Some(plan),
        })
    }

    /// Render a prepared query's plans: the strategy, each unfolded
    /// rule's operator tree with the optimizer's estimated rows per
    /// operator, and the read set. Large unions show the first few rules.
    fn render_plan(&self, p: &PreparedQuery) -> String {
        const SHOWN_RULES: usize = 5;
        let mut out = String::new();
        match &p.unfold {
            Some(u) => {
                let _ = writeln!(
                    out,
                    "strategy: unfold ({} rules, {} dropped statically)",
                    u.translation.stats.rules, u.translation.stats.dropped
                );
                for (i, rule) in u.rules.iter().take(SHOWN_RULES).enumerate() {
                    let _ = writeln!(
                        out,
                        "rule {i}: ~{} rows",
                        estimate_rows(&self.sys.db, &rule.plan)
                    );
                    out.push_str(&explain_tree(&self.sys.db, &rule.plan));
                }
                if u.rules.len() > SHOWN_RULES {
                    let _ = writeln!(out, "… {} more rules", u.rules.len() - SHOWN_RULES);
                }
            }
            None => {
                let _ = writeln!(
                    out,
                    "strategy: graph-walk over the materialized provenance graph"
                );
            }
        }
        let _ = writeln!(out, "reads: {}", comma_join(&p.touched));
        // Row estimates above are recomputed from *current* statistics;
        // the stamps below describe when the plan itself was chosen.
        let _ = writeln!(
            out,
            "prepared at: version {} (stats fingerprint {:x})",
            p.stats_version, p.stats_fingerprint
        );
        out
    }

    /// Render plans annotated with the actuals of an analyze run: same
    /// shape as [`Engine::render_plan`], but every operator line carries
    /// `actual <rows> rows in <ms>` next to the estimate, and a final
    /// `actual:` footer reports the executed result sizes and wall time.
    fn render_plan_analyzed(
        &self,
        p: &PreparedQuery,
        per_rule: Option<&[Vec<OpStat>]>,
        projection: &ProjectionResult,
        exec_time: Duration,
    ) -> String {
        const SHOWN_RULES: usize = 5;
        let mut out = String::new();
        match (&p.unfold, per_rule) {
            (Some(u), Some(stats)) => {
                let _ = writeln!(
                    out,
                    "strategy: unfold ({} rules, {} dropped statically)",
                    u.translation.stats.rules, u.translation.stats.dropped
                );
                for (i, (rule, rstats)) in u.rules.iter().zip(stats).take(SHOWN_RULES).enumerate() {
                    let _ = writeln!(
                        out,
                        "rule {i}: ~{} rows",
                        estimate_rows(&self.sys.db, &rule.plan)
                    );
                    out.push_str(&explain_tree_analyzed(&self.sys.db, &rule.plan, rstats));
                }
                if u.rules.len() > SHOWN_RULES {
                    let _ = writeln!(out, "… {} more rules", u.rules.len() - SHOWN_RULES);
                }
            }
            _ => {
                let _ = writeln!(
                    out,
                    "strategy: graph-walk over the materialized provenance graph"
                );
            }
        }
        let _ = writeln!(out, "reads: {}", comma_join(&p.touched));
        let _ = writeln!(
            out,
            "prepared at: version {} (stats fingerprint {:x})",
            p.stats_version, p.stats_fingerprint
        );
        let _ = writeln!(
            out,
            "actual: {} binding rows, {} derivation rows in {:.3} ms",
            projection.bindings.len(),
            projection.derivation_count(),
            exec_time.as_secs_f64() * 1e3
        );
        out
    }

    /// Drop the cached provenance graph. Mutations through
    /// [`ProvenanceSystem`]'s API are detected automatically via its
    /// version counter, so calling this is only needed after mutating
    /// `sys.db` directly without [`ProvenanceSystem::bump_version`].
    pub fn invalidate_cache(&self) {
        *write_lock(&self.cached_graph) = None;
    }
}

/// Comma-join a read set for the EXPLAIN footer.
fn comma_join(set: &BTreeSet<String>) -> String {
    set.iter().cloned().collect::<Vec<_>>().join(", ")
}

/// The set of relations an unfold-strategy answer reads: every rule body
/// atom, every provenance relation the rule witnesses, and (for the
/// annotation phase, which reconstructs leaf tuples) the source/target
/// relations of each witnessed mapping — all expanded through view
/// definitions down to base tables, so that a write set of base tables
/// can be intersected against it.
fn touched_relations_unfold(
    sys: &ProvenanceSystem,
    translation: &crate::translate::Translation,
) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for rule in &translation.rules {
        for atom in &rule.atoms {
            insert_with_view_deps(sys, &atom.relation, &mut out);
        }
        for rec in &rule.prov_records {
            if let Some(spec) = sys.spec_for(&rec.mapping) {
                insert_with_view_deps(sys, &spec.prov_rel, &mut out);
                for recipe in &spec.atoms {
                    insert_with_view_deps(sys, &recipe.relation, &mut out);
                }
            }
        }
    }
    out
}

/// Insert `rel` and, when it is a view, every relation its definition
/// scans (recursively — views may read other views).
fn insert_with_view_deps(sys: &ProvenanceSystem, rel: &str, out: &mut BTreeSet<String>) {
    if !out.insert(rel.to_string()) {
        return;
    }
    if let Some(v) = sys.db.view(rel) {
        let mut scanned = BTreeSet::new();
        v.plan.collect_scanned(&mut scanned);
        for r in scanned {
            insert_with_view_deps(sys, &r, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::tup;
    use proql_provgraph::system::example_2_1;
    use proql_semiring::Annotation;

    fn engine(strategy: Strategy) -> Engine {
        let mut e = Engine::new(example_2_1().unwrap());
        e.options.strategy = strategy;
        e
    }

    #[test]
    fn auto_picks_graph_for_cyclic_example() {
        // Example 2.1's schema graph is cyclic (m1/m3).
        let e = engine(Strategy::Auto);
        let out = e
            .query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap();
        assert_eq!(out.projection.bindings.len(), 4);
        assert!(out.annotated.is_none());
    }

    #[test]
    fn unfold_strategy_reports_stats() {
        let e = engine(Strategy::Unfold);
        let out = e
            .query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap();
        assert!(out.stats.translate.rules > 0);
        assert!(out.stats.sql_bytes > 0);
        assert!(out.stats.total_joins > 0);
    }

    #[test]
    fn trust_query_end_to_end_both_strategies() {
        let q = "EVALUATE TRUST OF {
                   FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
                 } ASSIGNING EACH leaf_node $y {
                   CASE $y in A AND $y.len >= 6 : SET false
                   DEFAULT : SET true
                 } ASSIGNING EACH mapping $p($z) {
                   CASE $p = m4 : SET false
                   DEFAULT : SET $z
                 }";
        for strategy in [Strategy::Unfold, Strategy::Graph] {
            let e = engine(strategy);
            let out = e.query(q).unwrap();
            let ann = out.annotated.unwrap();
            assert_eq!(
                ann.annotation_of("O", &tup!["cn2"]),
                Some(&Annotation::Bool(true)),
                "{strategy:?}"
            );
            assert_eq!(
                ann.annotation_of("O", &tup!["sn1"]),
                Some(&Annotation::Bool(false)),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn parse_errors_surface() {
        let e = engine(Strategy::Auto);
        assert!(e.query("FOR [O $x RETURN $x").is_err());
    }

    #[test]
    fn stale_graph_auto_invalidates_on_mutation() {
        // Regression for the stale-graph footgun: mutate the system after
        // a Graph-strategy query and re-query WITHOUT calling
        // invalidate_cache — the version stamp must force a rebuild.
        let mut e = engine(Strategy::Graph);
        let q = "FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x";
        let before = e.query(q).unwrap().projection.bindings.len();
        e.sys.insert_local("A", tup![8, "sn8", 2]).unwrap();
        e.sys.run_exchange().unwrap();
        let after = e.query(q).unwrap().projection.bindings.len();
        assert!(
            after > before,
            "stale cached graph served: {after} <= {before}"
        );
    }

    #[test]
    fn graph_patches_forward_through_deltas() {
        let mut e = engine(Strategy::Graph);
        let g0 = e.graph().unwrap();
        let builds = e.graph_build_count();
        e.sys.insert_local("A", tup![8, "sn8", 2]).unwrap();
        e.sys.run_exchange().unwrap();
        let g1 = e.graph().unwrap();
        assert_eq!(
            e.graph_build_count(),
            builds,
            "a covered delta span must patch, not rebuild"
        );
        assert!(e.graph_patch_count() >= 1);
        assert!(g1.find_tuple("O", &tup!["sn8"]).is_some());
        // The patched graph is content-identical to a from-scratch rebuild.
        let rebuilt = ProvGraph::from_system(&e.sys).unwrap();
        assert_eq!(g1.digest(), rebuilt.digest());
        // The still-held old Arc was copy-on-write protected.
        assert!(g0.find_tuple("O", &tup!["sn8"]).is_none());
    }

    #[test]
    fn broken_delta_chain_falls_back_to_rebuild() {
        let mut e = engine(Strategy::Graph);
        e.graph().unwrap();
        let builds = e.graph_build_count();
        e.sys.db.insert("A", tup![42, "oob", 1]).unwrap();
        e.sys.bump_version();
        e.graph().unwrap();
        assert_eq!(e.graph_build_count(), builds + 1);
    }

    #[test]
    fn concurrent_same_version_builds_coalesce() {
        let e = engine(Strategy::Graph);
        let mut graphs: Vec<Arc<ProvGraph>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8).map(|_| s.spawn(|| e.graph().unwrap())).collect();
            for h in handles {
                graphs.push(h.join().unwrap());
            }
        });
        assert_eq!(
            e.graph_build_count(),
            1,
            "racing readers at one version must share a single build"
        );
        for g in &graphs[1..] {
            assert!(Arc::ptr_eq(&graphs[0], g));
        }
    }

    #[test]
    fn adopted_graph_cache_patches_across_engines() {
        // The service write path: clone the system copy-on-write, mutate,
        // wrap in a fresh engine, adopt the previous engine's graph.
        let e = engine(Strategy::Graph);
        e.graph().unwrap();
        let mut sys2 = e.sys.clone();
        sys2.insert_local("A", tup![8, "sn8", 2]).unwrap();
        sys2.run_exchange().unwrap();
        let e2 = Engine::with_options(sys2, e.options.clone());
        e2.adopt_graph_cache(&e);
        let g2 = e2.graph().unwrap();
        assert_eq!(e2.graph_build_count(), 0, "adoption must avoid a rebuild");
        assert_eq!(e2.graph_patch_count(), 1);
        assert_eq!(
            g2.digest(),
            ProvGraph::from_system(&e2.sys).unwrap().digest()
        );
        // The previous engine gave its cache up; querying it again rebuilds
        // at its own (older) version and stays correct.
        let old = e.graph().unwrap();
        assert!(old.find_tuple("O", &tup!["sn8"]).is_none());
    }

    #[test]
    fn graph_is_shared_until_version_changes() {
        let mut e = engine(Strategy::Graph);
        let g1 = e.graph().unwrap();
        let g2 = e.graph().unwrap();
        assert!(Arc::ptr_eq(&g1, &g2), "same version must share the graph");
        e.sys.bump_version();
        let g3 = e.graph().unwrap();
        assert!(!Arc::ptr_eq(&g1, &g3), "version bump must rebuild");
    }

    #[test]
    fn touched_relations_cover_unfold_dependencies() {
        let e = engine(Strategy::Unfold);
        let out = e
            .query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap();
        // The unfolded rules bottom out in local tables and provenance
        // relations; view-expansion pulls in the base tables views read.
        assert!(out.touched.contains("A_l"), "touched: {:?}", out.touched);
        assert!(out.touched.contains("P_m1"), "touched: {:?}", out.touched);
        // P_m4 is superfluous (a view over A_l): its base must appear too.
        assert!(out.touched.contains("P_m4"), "touched: {:?}", out.touched);
        // Spec atom relations (annotation leaf values) are included.
        assert!(out.touched.contains("O"), "touched: {:?}", out.touched);
    }

    #[test]
    fn touched_relations_graph_strategy_is_everything() {
        let e = engine(Strategy::Graph);
        let out = e
            .query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap();
        for rel in ["A", "A_l", "O", "P_m1", "P_m5"] {
            assert!(out.touched.contains(rel), "missing {rel}");
        }
    }

    #[test]
    fn prepared_query_executes_identically_to_direct_query() {
        let e = engine(Strategy::Unfold);
        let q = "FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x";
        let direct = e.query(q).unwrap();
        let prepared = e.prepare(q).unwrap();
        let first = e.execute(&prepared).unwrap();
        let second = e.execute(&prepared).unwrap();
        assert_eq!(direct.projection.bindings, first.projection.bindings);
        assert_eq!(direct.projection.derivations, first.projection.derivations);
        assert_eq!(first.projection.bindings, second.projection.bindings);
        assert_eq!(prepared.touched, direct.touched);
        assert_eq!(prepared.stats_version, e.sys.version());
    }

    #[test]
    fn stale_prepared_plan_still_returns_correct_results() {
        // Reusing a plan prepared before a write is always correct —
        // optimizer choices never affect results, only cost.
        let mut e = engine(Strategy::Unfold);
        let q = "FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x";
        let prepared = e.prepare(q).unwrap();
        let before = e.execute(&prepared).unwrap().projection.bindings.len();
        e.sys.insert_local("A", tup![8, "sn8", 2]).unwrap();
        e.sys.run_exchange().unwrap();
        let stale = e.execute(&prepared).unwrap().projection.bindings.len();
        let fresh = e.query(q).unwrap().projection.bindings.len();
        assert!(stale > before);
        assert_eq!(stale, fresh, "stale plan must still see current data");
    }

    #[test]
    fn explain_surfaces_plan_with_estimates() {
        let e = engine(Strategy::Unfold);
        let out = e
            .query("EXPLAIN FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap();
        let plan = out.plan.expect("EXPLAIN returns a plan");
        assert!(plan.contains("strategy: unfold"), "{plan}");
        assert!(plan.contains("rows"), "{plan}");
        assert!(plan.contains("reads:"), "{plan}");
        assert!(out.projection.bindings.is_empty());
        assert!(
            !out.touched.is_empty(),
            "EXPLAIN still reports its read set"
        );
        // Non-EXPLAIN queries carry no plan text.
        assert!(e
            .query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap()
            .plan
            .is_none());
    }

    #[test]
    fn explain_graph_strategy_reports_walk() {
        let e = engine(Strategy::Graph);
        let out = e
            .query("EXPLAIN FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap();
        assert!(out.plan.unwrap().contains("graph-walk"));
    }

    #[test]
    fn stats_fingerprint_survives_point_writes_but_not_growth() {
        let mut e = engine(Strategy::Unfold);
        let q = "FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x";
        let prepared = e.prepare(q).unwrap();
        // A single insert stays within the log2 stats buckets.
        e.sys.insert_local("A", tup![8, "sn8", 2]).unwrap();
        e.sys.run_exchange().unwrap();
        assert_eq!(
            e.stats_fingerprint(&prepared.touched),
            prepared.stats_fingerprint,
            "point write must not drift the fingerprint"
        );
        // Growing the read-set tables by an order of magnitude drifts it.
        for i in 100..300 {
            e.sys.insert_local("A", tup![i, "snX", 1]).unwrap();
        }
        e.sys.run_exchange().unwrap();
        assert_ne!(
            e.stats_fingerprint(&prepared.touched),
            prepared.stats_fingerprint
        );
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
    }

    #[test]
    fn cache_invalidation_sees_new_data() {
        let mut e = engine(Strategy::Graph);
        let before = e
            .query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap()
            .projection
            .bindings
            .len();
        e.sys.insert_local("A", tup![9, "sn9", 1]).unwrap();
        e.sys.run_exchange().unwrap();
        e.invalidate_cache();
        let after = e
            .query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap()
            .projection
            .bindings
            .len();
        assert!(after > before);
    }
}
