//! Semiring evaluation through the batch grouped-aggregation operator.
//!
//! The paper evaluates annotation computations in SQL: each tuple's
//! annotation is the semiring sum (⊕) of its alternative derivations'
//! values, computed with `GROUP BY target ... SUM/MIN/BOOL_OR` (§4.2.4).
//! This module reproduces that shape over the in-memory engine: the
//! projected provenance graph is processed level by level (sources before
//! targets), and every level's ⊕ runs through
//! [`proql_storage::batch_exec::batch_aggregate`] — the same columnar
//! grouped-aggregation operator the relational plans use.
//!
//! Supported for the semirings whose ⊕ is a SQL aggregate over a scalar
//! encoding (derivability/trust → `BOOL_OR`, weight and confidentiality →
//! `MIN`, counting → `SUM`) on acyclic graphs; other semirings (lineage,
//! probability, polynomials) and cyclic graphs fall back to the direct
//! graph walk in `proql-semiring`.

use proql_common::{Error, Parallelism, Result, TupleId, Value};
use proql_provgraph::{ProvGraph, TupleNode};
use proql_semiring::eval::leaf_label;
use proql_semiring::{Annotation, MapFn, SecurityLevel, SemiringKind};
use proql_storage::batch::{Column, RecordBatch};
use proql_storage::batch_exec::batch_aggregate_opts;
use proql_storage::{AggFunc, Aggregate};
use std::collections::HashMap;

/// Scalar encoding of one semiring into batch columns.
struct Encoding {
    agg: fn(usize) -> AggFunc,
    encode: fn(&Annotation) -> Option<Value>,
    decode: fn(&Value) -> Option<Annotation>,
    /// False when a value is too large for the operator's fixed-width
    /// arithmetic — the whole evaluation then falls back to the direct
    /// walk, whose checked arithmetic reports overflow as an error.
    safe: fn(&Annotation) -> bool,
}

fn always_safe(_: &Annotation) -> bool {
    true
}

fn encoding_for(kind: SemiringKind) -> Option<Encoding> {
    match kind {
        SemiringKind::Derivability | SemiringKind::Trust => Some(Encoding {
            agg: AggFunc::BoolOr,
            encode: |a| a.as_bool().map(Value::Bool),
            decode: |v| v.as_bool().map(Annotation::Bool),
            safe: always_safe,
        }),
        // ⊕ = min over weights.
        SemiringKind::Weight => Some(Encoding {
            agg: AggFunc::Min,
            encode: |a| match a {
                Annotation::Weight(w) => Some(Value::Float(*w)),
                _ => None,
            },
            decode: |v| v.as_float().map(Annotation::Weight),
            safe: always_safe,
        }),
        // ⊕ = less_secure = min of the ordinal.
        SemiringKind::Confidentiality => Some(Encoding {
            agg: AggFunc::Min,
            encode: |a| match a {
                Annotation::Level(l) => Some(Value::Int(*l as i64)),
                _ => None,
            },
            decode: |v| {
                Some(Annotation::Level(match v.as_int()? {
                    0 => SecurityLevel::Public,
                    1 => SecurityLevel::Confidential,
                    2 => SecurityLevel::Secret,
                    _ => SecurityLevel::TopSecret,
                }))
            },
            safe: always_safe,
        }),
        // ⊕ = + over derivation counts.
        SemiringKind::Counting => Some(Encoding {
            agg: AggFunc::Sum,
            encode: |a| match a {
                Annotation::Count(c) => Some(Value::Int(*c as i64)),
                _ => None,
            },
            decode: |v| Some(Annotation::Count(v.as_int()?.max(0) as u64)),
            // The operator sums counts with i64 arithmetic; keep per-value
            // magnitude small enough (< 2^32) that no realistic row count
            // (< 2^31 per level) can wrap the i64 sum.
            safe: |a| matches!(a, Annotation::Count(c) if *c <= u32::MAX as u64),
        }),
        SemiringKind::Lineage | SemiringKind::Probability | SemiringKind::Polynomial => None,
    }
}

/// Evaluate annotations for every tuple node of `graph`, computing each
/// level's semiring sums via the batch grouped-aggregation operator.
///
/// Returns `Ok(None)` when this strategy does not apply (cyclic graph, or
/// a semiring without a scalar aggregate encoding); callers fall back to
/// [`proql_semiring::evaluate`]. When it applies, results are identical to
/// the direct walk — asserted by property tests. `par` is forwarded to the
/// grouped-aggregation operator, whose morsel-parallel path is itself
/// bit-identical to its serial path.
pub fn evaluate_via_aggregation(
    graph: &ProvGraph,
    kind: SemiringKind,
    leaf: &dyn Fn(&TupleNode, &str) -> Annotation,
    map_fn: &dyn Fn(&str) -> MapFn,
    par: Parallelism,
) -> Result<Option<HashMap<TupleId, Annotation>>> {
    let Some(enc) = encoding_for(kind) else {
        return Ok(None);
    };
    let Some(order) = graph.topo_order() else {
        return Ok(None);
    };

    let by_level = proql_semiring::eval::level_order(graph, &order);

    let checked_leaf = |tn: &TupleNode| -> Result<Annotation> {
        let v = leaf(tn, &leaf_label(tn));
        kind.check_value(&v)?;
        Ok(v)
    };

    let mut vals: Vec<Option<Annotation>> = vec![None; graph.tuple_id_bound()];
    for tuples in &by_level {
        // One (target, derivation value) row per alternative derivation of
        // this level's tuples; the grouped aggregation computes every ⊕ of
        // the level in one operator call.
        let mut targets: Vec<i64> = Vec::new();
        let mut deriv_vals: Vec<Value> = Vec::new();
        for &t in tuples {
            let derivs = graph.derivations_of(t);
            if derivs.is_empty() {
                // Dangling leaf of the projected subgraph.
                vals[t.index()] = Some(checked_leaf(graph.tuple(t))?);
                continue;
            }
            for &d in derivs {
                let node = graph.derivation(d);
                let inner = if node.is_base {
                    let target = node
                        .targets
                        .first()
                        .ok_or_else(|| Error::Semiring("base derivation without target".into()))?;
                    checked_leaf(graph.tuple(*target))?
                } else {
                    let mut acc = kind.one();
                    for s in &node.sources {
                        let sv = vals[s.index()].clone().unwrap_or_else(|| kind.zero());
                        acc = kind.times(&acc, &sv)?;
                    }
                    acc
                };
                let mapped = map_fn(&node.mapping).apply(kind, &inner)?;
                if !(enc.safe)(&mapped) {
                    // Value too large for the operator's fixed-width sum:
                    // let the direct walk (checked arithmetic) handle it.
                    return Ok(None);
                }
                let encoded = (enc.encode)(&mapped).ok_or_else(|| {
                    Error::Semiring(format!(
                        "annotation {mapped:?} has no scalar encoding in {kind}"
                    ))
                })?;
                targets.push(t.index() as i64);
                deriv_vals.push(encoded);
            }
        }
        if targets.is_empty() {
            continue;
        }
        let rows = targets.len();
        let batch = RecordBatch::new(
            vec!["t".into(), "v".into()],
            vec![Column::Int(targets), Column::from_value_vec(deriv_vals)],
            rows,
        );
        let summed = batch_aggregate_opts(
            &batch,
            &[0],
            &[Aggregate::new((enc.agg)(1), "sum")],
            None,
            par,
        )?;
        for row in 0..summed.len() {
            let t = summed.columns[0]
                .value(row)
                .as_int()
                .expect("group key is the tuple id") as usize;
            let v = summed.columns[1].value(row);
            let ann = (enc.decode)(&v)
                .ok_or_else(|| Error::Semiring(format!("cannot decode aggregate {v} in {kind}")))?;
            vals[t] = Some(ann);
        }
    }
    Ok(Some(
        vals.into_iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|v| (TupleId(i as u32), v)))
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_provgraph::system::example_2_1;
    use proql_semiring::{evaluate, Assignment};

    /// Acyclic projection of the running example (base + m4 + m5).
    fn acyclic_graph() -> ProvGraph {
        let g = ProvGraph::from_system(&example_2_1().unwrap()).unwrap();
        let derivs: Vec<_> = g
            .derivation_ids()
            .filter(|&d| {
                let n = g.derivation(d);
                n.is_base || n.mapping == "m4" || n.mapping == "m5"
            })
            .collect();
        g.project(derivs)
    }

    fn assert_matches_direct_walk(
        g: &ProvGraph,
        kind: SemiringKind,
        leaf: impl Fn(&TupleNode, &str) -> Annotation + Clone + Send + Sync + 'static,
        map_fn: impl Fn(&str) -> MapFn + Clone + Send + Sync + 'static,
    ) {
        for par in [Parallelism::Serial, Parallelism::Threads(4)] {
            let via_agg = evaluate_via_aggregation(g, kind, &leaf.clone(), &map_fn.clone(), par)
                .unwrap()
                .expect("aggregation path applies");
            let assign = Assignment::default_for(kind)
                .with_leaf(leaf.clone())
                .with_map_fn(map_fn.clone());
            let direct = evaluate(g, &assign).unwrap();
            assert_eq!(via_agg.len(), direct.len(), "{kind}");
            for (t, v) in &direct {
                assert_eq!(
                    via_agg.get(t),
                    Some(v),
                    "{kind} ({par:?}): {}",
                    leaf_label(g.tuple(*t))
                );
            }
        }
    }

    #[test]
    fn aggregation_matches_walk_for_all_scalar_semirings() {
        let g = acyclic_graph();
        for kind in [
            SemiringKind::Derivability,
            SemiringKind::Trust,
            SemiringKind::Weight,
            SemiringKind::Confidentiality,
            SemiringKind::Counting,
        ] {
            let leaf = move |_: &TupleNode, label: &str| kind.default_leaf(label);
            assert_matches_direct_walk(&g, kind, leaf, |_| MapFn::Identity);
        }
    }

    #[test]
    fn aggregation_respects_leaf_and_mapping_assignments() {
        let g = acyclic_graph();
        // Trust: distrust long A tuples and mapping m4 (paper Q7 shape).
        let leaf = |node: &TupleNode, _: &str| {
            if node.relation == "A" {
                let len = node
                    .values
                    .as_ref()
                    .and_then(|v| v.get(2).as_int())
                    .unwrap_or(0);
                Annotation::Bool(len < 6)
            } else {
                Annotation::Bool(true)
            }
        };
        let map_fn = |m: &str| {
            if m == "m4" {
                MapFn::zero(SemiringKind::Trust)
            } else {
                MapFn::Identity
            }
        };
        assert_matches_direct_walk(&g, SemiringKind::Trust, leaf, map_fn);
        // Weight: leaves cost 10/1, m5 adds 2.
        let leaf = |node: &TupleNode, _: &str| {
            Annotation::Weight(if node.relation == "A" { 10.0 } else { 1.0 })
        };
        let map_fn = |m: &str| {
            if m == "m5" {
                MapFn::TimesConst(Annotation::Weight(2.0))
            } else {
                MapFn::Identity
            }
        };
        assert_matches_direct_walk(&g, SemiringKind::Weight, leaf, map_fn);
    }

    #[test]
    fn cyclic_graphs_are_declined() {
        let g = ProvGraph::from_system(&example_2_1().unwrap()).unwrap();
        assert!(g.is_cyclic());
        let leaf = |_: &TupleNode, l: &str| SemiringKind::Derivability.default_leaf(l);
        let out = evaluate_via_aggregation(
            &g,
            SemiringKind::Derivability,
            &leaf,
            &|_| MapFn::Identity,
            Parallelism::Serial,
        )
        .unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn set_semirings_are_declined() {
        let g = acyclic_graph();
        let leaf = |_: &TupleNode, l: &str| SemiringKind::Lineage.default_leaf(l);
        let out = evaluate_via_aggregation(
            &g,
            SemiringKind::Lineage,
            &leaf,
            &|_| MapFn::Identity,
            Parallelism::Serial,
        )
        .unwrap();
        assert!(out.is_none());
    }
}
