//! Concurrency stress test for the query service: N reader threads issue
//! a mix of cached (hot) and uncached (per-iteration) queries against a
//! shared [`ServiceCore`] while a writer thread applies CDSS deletions.
//! Every response carries the system version it is valid at; afterwards
//! each response is checked **bit-identical** (via the canonical result
//! digest) against a serial [`Engine`] replay of the same deletion
//! sequence at the corresponding version.

use proql::engine::{Engine, EngineOptions};
use proql_cdss::topology::{build_system_with_island, CdssConfig, Topology};
use proql_cdss::update::delete_local;
use proql_common::{tup, Tuple};
use proql_service::frame::verb;
use proql_service::proto::{json_str_field, json_u64_field};
use proql_service::{result_digest, serve, BinClient, ServiceCore};
use std::collections::HashMap;
use std::sync::Arc;

const READERS: usize = 4;
const ITERATIONS: usize = 30;

/// The fixed query pool: the first half are "hot" (every reader repeats
/// them, so they hit the cache), the rest are window variants that
/// different readers interleave.
fn query_pool() -> Vec<String> {
    let mut pool = vec![
        "FOR [R0a $x] INCLUDE PATH [$x] <-+ [] RETURN $x".to_string(),
        "EVALUATE DERIVABILITY OF { FOR [R0a $x] INCLUDE PATH [$x] <-+ [] RETURN $x }".to_string(),
    ];
    for lo in [4, 8, 12, 16] {
        pool.push(format!(
            "FOR [R0a $x] INCLUDE PATH [$x] <-+ [] WHERE $x.k >= {lo} RETURN $x"
        ));
    }
    pool
}

#[test]
fn concurrent_responses_match_serial_replay_at_their_version() {
    let sys =
        build_system_with_island(Topology::Chain, &CdssConfig::new(4, vec![3], 24), 8).unwrap();
    let v0 = sys.version();
    let pool = query_pool();

    // The writer's deterministic deletion sequence: chain deletions (which
    // invalidate every hot entry) interleaved with island deletions (which
    // must invalidate nothing).
    let deletes: Vec<(&str, Tuple)> = vec![
        ("Island", tup![0]),
        ("R3a", tup![23]),
        ("Island", tup![1]),
        ("R3a", tup![22]),
        ("Island", tup![2]),
        ("R3a", tup![21]),
    ];

    let core = Arc::new(ServiceCore::new(sys.clone(), EngineOptions::default()));
    let responses: Vec<(String, u64, u64)> = std::thread::scope(|s| {
        let mut readers = Vec::new();
        for r in 0..READERS {
            let core = Arc::clone(&core);
            let pool = pool.clone();
            readers.push(s.spawn(move || {
                let mut seen = Vec::with_capacity(ITERATIONS);
                for i in 0..ITERATIONS {
                    // Hot queries dominate; the offset walks each reader
                    // through the whole pool so cold entries get built
                    // under contention too.
                    let q = &pool[(r + i) % pool.len()];
                    let resp = core.query(q).unwrap();
                    seen.push((q.clone(), resp.version, result_digest(&resp.output)));
                }
                seen
            }));
        }
        let writer_core = Arc::clone(&core);
        let writer_deletes = deletes.clone();
        let writer = s.spawn(move || {
            for (relation, key) in &writer_deletes {
                let (v, _) = writer_core.delete(relation, key).unwrap();
                assert!(v > v0);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        writer.join().unwrap();
        readers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    // Serial replay: state k = the system after the first k deletions.
    // Each deletion bumps the version exactly once, so state k lives at
    // version v0 + k.
    let mut expected: HashMap<(u64, String), u64> = HashMap::new();
    let mut state = sys;
    for k in 0..=deletes.len() {
        if k > 0 {
            let (relation, key) = &deletes[k - 1];
            delete_local(&mut state, relation, key).unwrap();
        }
        assert_eq!(state.version(), v0 + k as u64, "replay version drift");
        let engine = Engine::new(state.clone());
        for q in &pool {
            let out = engine.query(q).unwrap();
            expected.insert((state.version(), q.clone()), result_digest(&out));
        }
    }

    assert_eq!(responses.len(), READERS * ITERATIONS);
    for (q, version, digest) in &responses {
        let want = expected
            .get(&(*version, q.clone()))
            .unwrap_or_else(|| panic!("response at unknown version {version}"));
        assert_eq!(
            digest, want,
            "response for {q:?} at version {version} diverged from serial replay"
        );
    }

    // The workload must actually have exercised the cache: with 4 readers
    // replaying a 6-query pool 30 times, most lookups are repeats.
    let stats = core.stats();
    assert_eq!(stats.queries, (READERS * ITERATIONS) as u64);
    assert!(
        stats.cache.hits > 0,
        "stress run never hit the cache: {stats:?}"
    );
    assert_eq!(stats.writes, deletes.len() as u64);
    assert_eq!(stats.version, v0 + deletes.len() as u64);
}

/// The concurrency check again, but end to end over the wire in binary
/// mode: reader threads pipeline whole query batches through
/// [`BinClient`]s while a writer applies deletions over its own binary
/// connection. Every `OK` payload carries the version it was answered
/// at; afterwards each (query, version) digest must be bit-identical to
/// a serial [`Engine`] replay — pipelining and out-of-order worker
/// completion must never leak a torn or misordered answer.
#[test]
fn pipelined_binary_responses_match_serial_replay() {
    let sys =
        build_system_with_island(Topology::Chain, &CdssConfig::new(4, vec![3], 24), 8).unwrap();
    let v0 = sys.version();
    let pool = query_pool();
    // Single-column integer keys so the wire payload is just the digits.
    let deletes: Vec<(&str, i64)> = vec![("Island", 0), ("R3a", 23), ("Island", 1), ("R3a", 22)];

    let core = Arc::new(ServiceCore::new(sys.clone(), EngineOptions::default()));
    let handle = serve(Arc::clone(&core), "127.0.0.1:0", 4).unwrap();
    let addr = handle.addr();

    let responses: Vec<(String, u64, u64)> = std::thread::scope(|s| {
        let mut readers = Vec::new();
        for _ in 0..READERS {
            let pool = pool.clone();
            readers.push(s.spawn(move || {
                let mut c = BinClient::connect(addr).unwrap();
                let mut seen = Vec::new();
                for _ in 0..8 {
                    // One pipelined batch per round: the whole pool in a
                    // single write, responses collected in order.
                    let refs: Vec<&str> = pool.iter().map(String::as_str).collect();
                    let payloads = c.pipeline_queries(&refs).unwrap();
                    for (q, json) in pool.iter().zip(payloads) {
                        let version = json_u64_field(&json, "version").unwrap();
                        let digest: u64 = json_str_field(&json, "digest").unwrap().parse().unwrap();
                        seen.push((q.clone(), version, digest));
                    }
                }
                seen
            }));
        }
        let writer_deletes = deletes.clone();
        let writer = s.spawn(move || {
            let mut w = BinClient::connect(addr).unwrap();
            for (relation, key) in &writer_deletes {
                let payload = format!("{relation} {key}");
                let f = w.request(verb::DELETE, payload.as_bytes()).unwrap();
                assert_eq!(f.verb, verb::OK, "{:?}", f.text());
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        writer.join().unwrap();
        readers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    handle.shutdown();

    let mut expected: HashMap<(u64, String), u64> = HashMap::new();
    let mut state = sys;
    for k in 0..=deletes.len() {
        if k > 0 {
            let (relation, key) = &deletes[k - 1];
            delete_local(&mut state, relation, &tup![*key]).unwrap();
        }
        assert_eq!(state.version(), v0 + k as u64, "replay version drift");
        let engine = Engine::new(state.clone());
        for q in &pool {
            let out = engine.query(q).unwrap();
            expected.insert((state.version(), q.clone()), result_digest(&out));
        }
    }

    assert_eq!(responses.len(), READERS * 8 * pool.len());
    for (q, version, digest) in &responses {
        let want = expected
            .get(&(*version, q.clone()))
            .unwrap_or_else(|| panic!("response at unknown version {version}"));
        assert_eq!(
            digest, want,
            "binary response for {q:?} at version {version} diverged from serial replay"
        );
    }
}

/// The same service used synchronously: interleaved reads and writes see
/// exact version progression; a touching write now *patches* the cached
/// entry forward (incremental view maintenance) instead of evicting it.
#[test]
fn serial_session_versions_progress_exactly() {
    let sys =
        build_system_with_island(Topology::Chain, &CdssConfig::new(3, vec![2], 8), 4).unwrap();
    let v0 = sys.version();
    let core = ServiceCore::new(sys, EngineOptions::default());
    let q = "FOR [R0a $x] INCLUDE PATH [$x] <-+ [] RETURN $x";

    let r1 = core.query(q).unwrap();
    assert_eq!(r1.version, v0);
    assert!(!r1.cache_hit);

    // Island delete: version moves, cached entry survives untouched.
    let (v1, _) = core.delete("Island", &tup![0]).unwrap();
    assert_eq!(v1, v0 + 1);
    let r2 = core.query(q).unwrap();
    assert!(r2.cache_hit);
    assert_eq!(r2.version, v1);
    assert_eq!(result_digest(&r1.output), result_digest(&r2.output));

    // Chain delete: the entry is maintained — still a cache hit, now at
    // the new version, bit-identical to a fresh recomputation.
    let (v2, _) = core.delete("R2a", &tup![7]).unwrap();
    let r3 = core.query(q).unwrap();
    assert!(
        r3.cache_hit,
        "a localizable chain delete must be maintained"
    );
    assert_eq!(r3.version, v2);
    assert_ne!(result_digest(&r1.output), result_digest(&r3.output));
    assert_eq!(
        r3.output.projection.bindings.len(),
        r1.output.projection.bindings.len() - 1
    );
    let fresh = Engine::new(core.snapshot().engine.sys.clone());
    assert_eq!(
        result_digest(&r3.output),
        result_digest(&fresh.query(q).unwrap()),
        "maintained answer must match a fresh serial evaluation"
    );
    let stats = core.stats();
    assert_eq!(stats.cache.maint_hits, 1);
    assert_eq!(stats.cache.maint_fallbacks, 0);
}

/// The ablation baseline: with maintenance disabled, a touching write
/// evicts the entry exactly as the pre-maintenance service did.
#[test]
fn maintenance_disabled_service_evicts_on_touching_write() {
    let sys =
        build_system_with_island(Topology::Chain, &CdssConfig::new(3, vec![2], 8), 4).unwrap();
    let core = ServiceCore::new(sys, EngineOptions::default()).with_maintenance(false);
    let q = "FOR [R0a $x] INCLUDE PATH [$x] <-+ [] RETURN $x";
    let r1 = core.query(q).unwrap();
    let (v2, _) = core.delete("R2a", &tup![7]).unwrap();
    let r3 = core.query(q).unwrap();
    assert!(!r3.cache_hit, "maintenance off ⇒ touching write evicts");
    assert_eq!(r3.version, v2);
    assert_eq!(
        r3.output.projection.bindings.len(),
        r1.output.projection.bindings.len() - 1
    );
    let stats = core.stats();
    assert_eq!(stats.cache.maint_hits, 0);
    assert_eq!(stats.cache.stale_evictions, 1);
}

/// Chain-break property test: interleave maintained writes with
/// out-of-band mutations (direct db write + bare `bump_version`, which
/// breaks the delta chain) and INVALIDATE storms. After every step the
/// served answer — maintained or recomputed after the forced fallback —
/// must be digest-equal to a fresh serial [`Engine`] evaluation of the
/// current snapshot, and chain-breaking steps must show up as
/// maintenance fallbacks, never as wrong answers.
#[test]
fn chain_breaks_fall_back_to_eviction_never_to_wrong_answers() {
    use proql_cdss::SwissProtLike;
    use proql_common::rng::SplitMix64;
    let config = CdssConfig::new(3, vec![2], 16);
    let sys = build_system_with_island(Topology::Chain, &config, 8).unwrap();
    let core = ServiceCore::new(sys, EngineOptions::default());
    let queries = query_pool();
    let mut rng = SplitMix64::seed_from_u64(0x5EED);
    let mut gen = SwissProtLike::new(config.seed ^ 1, config.attrs);
    let mut live: Vec<i64> = (0..16).collect();
    let mut next_key = 500i64;

    for step in 0..24 {
        // Keep every pool entry warm so each write exercises maintenance.
        for q in &queries {
            core.query(q).unwrap();
        }
        match rng.gen_range_usize(0, 5) {
            // Maintained chain delete.
            0 | 1 if !live.is_empty() => {
                let at = rng.gen_range_usize(0, live.len());
                let k = live.swap_remove(at);
                core.delete("R2a", &tup![k]).unwrap();
            }
            // Maintained insert + exchange: the pair-unit mapping needs
            // both halves, so the second insert fires the cascade.
            0..=2 => {
                let k = next_key;
                next_key += 1;
                let (ta, tb) = gen.entry(k);
                core.insert_and_exchange("R2a", ta).unwrap();
                core.insert_and_exchange("R2b", tb).unwrap();
                live.push(k);
            }
            // Out-of-band schema-level churn through INVALIDATE: every
            // entry dies; the next round rebuilds from scratch.
            3 => {
                core.invalidate();
            }
            // Island delete: must not disturb the chain entries at all.
            _ => {
                let k = step as i64 % 8;
                let _ = core.delete("Island", &tup![k]);
            }
        }
        // Every answer the service gives after the write must equal a
        // fresh serial evaluation at the published snapshot.
        let fresh = Engine::new(core.snapshot().engine.sys.clone());
        for q in &queries {
            let served = core.query(q).unwrap();
            assert_eq!(
                result_digest(&served.output),
                result_digest(&fresh.query(q).unwrap()),
                "step {step}: served answer for {q:?} diverged from fresh evaluation"
            );
        }
    }
    let stats = core.stats();
    assert!(
        stats.cache.maint_hits > 0,
        "the interleaving must actually exercise maintenance: {stats:?}"
    );
}
