//! Dictionary-encoding equivalence properties: execution over
//! dictionary-encoded string columns (code-keyed filters, joins, grouping,
//! zone-map skipping, selection vectors) must be **bit-identical** to the
//! plain decoded path — same rows in the same order, same optimizer
//! estimates — across every executor and parallelism setting. Dictionaries
//! are maintained incrementally under inserts/deletes/truncates, and the
//! dictionary-encoded snapshot wire format round-trips and never panics on
//! corrupt bytes.

use proql_common::rng::SplitMix64;
use proql_common::{Parallelism, Schema, Tuple, Value, ValueType};
use proql_provgraph::encode::wire::{decode_snapshot_frame, encode_snapshot_frame, SnapshotFrame};
use proql_storage::explain::explain_tree;
use proql_storage::optimize::optimize_with;
use proql_storage::{execute_with_opts, AggFunc, Aggregate, Database, ExecMode, Expr, Plan};

const PAR_SWEEP: [Parallelism; 3] = [
    Parallelism::Serial,
    Parallelism::Threads(2),
    Parallelism::Threads(8),
];

const MODES: [ExecMode; 3] = [ExecMode::Batch, ExecMode::Row, ExecMode::NestedLoop];

/// A small pool of strings with heavy repetition — the regime dictionary
/// encoding targets.
fn word(rng: &mut SplitMix64) -> String {
    const POOL: [&str; 7] = [
        "alpha",
        "beta",
        "gamma",
        "delta-very-long-shared-suffix",
        "epsilon",
        "zeta",
        "eta",
    ];
    POOL[rng.gen_range_usize(0, POOL.len())].to_string()
}

/// Build a pair of databases with identical contents: one with dictionary
/// encoding enabled, one with it disabled. Tables: `S(id, name, w)` and
/// `T(id, name, grp)` — string-keyed, with enough rows to span several
/// zone-map morsels in the larger cases.
fn twin_dbs(rng: &mut SplitMix64, rows_s: usize, rows_t: usize) -> (Database, Database) {
    let mut on = Database::new();
    on.set_dict_encoding(true);
    let mut off = Database::new();
    off.set_dict_encoding(false);
    for db in [&mut on, &mut off] {
        db.create_table(
            Schema::build(
                "S",
                &[
                    ("id", ValueType::Int),
                    ("name", ValueType::Str),
                    ("w", ValueType::Int),
                ],
                &[0],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::build(
                "T",
                &[
                    ("id", ValueType::Int),
                    ("name", ValueType::Str),
                    ("grp", ValueType::Int),
                ],
                &[0],
            )
            .unwrap(),
        )
        .unwrap();
    }
    for i in 0..rows_s {
        let t = proql_common::tup![i as i64, word(rng), rng.gen_range_i64(0, 50)];
        on.insert("S", t.clone()).unwrap();
        off.insert("S", t).unwrap();
    }
    for i in 0..rows_t {
        let t = proql_common::tup![i as i64, word(rng), rng.gen_range_i64(0, 5)];
        on.insert("T", t.clone()).unwrap();
        off.insert("T", t).unwrap();
    }
    (on, off)
}

/// The plan shapes the sweep covers: string-equality filter (zone-prunable
/// fused scan), string-keyed join between two dictionary tables,
/// aggregation grouped by a string column, distinct, and sort+limit.
fn plan_sweep(rng: &mut SplitMix64) -> Vec<Plan> {
    let needle = word(rng);
    let lt = rng.gen_range_i64(1, 40);
    vec![
        Plan::scan("S").filter(Expr::col(1).eq(Expr::lit(needle.clone()))),
        Plan::scan("S").filter(Expr::and(vec![
            Expr::col(1).eq(Expr::lit(needle.clone())),
            Expr::cmp(proql_storage::BinOp::Lt, Expr::col(2), Expr::lit(lt)),
        ])),
        Plan::scan("S").join(Plan::scan("T"), vec![1], vec![1]),
        Plan::Aggregate {
            input: Box::new(Plan::scan("S")),
            group_by: vec![1],
            aggs: vec![
                Aggregate::new(AggFunc::Count, "n"),
                Aggregate::new(AggFunc::Sum(2), "sw"),
            ],
            having: None,
        },
        Plan::scan("S").project(vec![Expr::col(1)]).distinct(),
        Plan::Limit {
            input: Box::new(Plan::Sort {
                input: Box::new(Plan::scan("S").join(Plan::scan("T"), vec![1], vec![1])),
                by: vec![1, 0],
            }),
            n: 17,
        },
        Plan::Union {
            inputs: vec![
                Plan::scan("S").filter(Expr::col(1).eq(Expr::lit(needle))),
                Plan::scan("S").filter(Expr::cmp(
                    proql_storage::BinOp::Ge,
                    Expr::col(2),
                    Expr::lit(45i64),
                )),
            ],
            distinct: true,
        },
    ]
}

/// Order-preserving digest of a result, so divergence in row *order* (not
/// just content) is caught.
fn digest(names: &[String], rows: &[Tuple]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    names.hash(&mut h);
    for r in rows {
        for v in r.values() {
            format!("{v:?}").hash(&mut h);
        }
    }
    h.finish()
}

#[test]
fn dict_on_and_off_are_bit_identical_across_modes_and_parallelism() {
    let mut rng = SplitMix64::seed_from_u64(0xD1C7);
    for case in 0..3 {
        // Case sizes straddle the morsel threshold so both the serial and
        // the morsel-parallel batch paths run, and the biggest case spans
        // multiple zones.
        let rows_s = [40, 300, 2600][case];
        let rows_t = [30, 200, 900][case];
        let (on, off) = twin_dbs(&mut rng, rows_s, rows_t);
        // The nested-loop oracle is O(n²) on joins — small cases only.
        let modes: &[ExecMode] = if rows_s <= 300 { &MODES } else { &MODES[..2] };
        for (pi, plan) in plan_sweep(&mut rng).into_iter().enumerate() {
            // Optimizer estimates key NDV off interned codes; the chosen
            // plan and its EXPLAIN rendering must not depend on the knob.
            let opt_on = optimize_with(&on, plan.clone());
            let opt_off = optimize_with(&off, plan.clone());
            assert_eq!(
                format!("{opt_on:?}"),
                format!("{opt_off:?}"),
                "case {case} plan {pi}: optimizer chose different plans"
            );
            assert_eq!(
                explain_tree(&on, &opt_on),
                explain_tree(&off, &opt_off),
                "case {case} plan {pi}: EXPLAIN estimates diverged"
            );
            let mut want: Option<(Vec<String>, Vec<Tuple>, u64)> = None;
            for &mode in modes {
                for par in PAR_SWEEP {
                    for (db, knob) in [(&on, "on"), (&off, "off")] {
                        let r = execute_with_opts(db, &opt_on, mode, par).unwrap();
                        let d = digest(&r.names, &r.rows);
                        match &want {
                            None => want = Some((r.names, r.rows, d)),
                            Some((names, rows, wd)) => {
                                assert_eq!(
                                    (&r.names, &d),
                                    (names, wd),
                                    "case {case} plan {pi}: dict {knob} {mode:?} {par:?} diverged"
                                );
                                assert_eq!(
                                    &r.rows, rows,
                                    "case {case} plan {pi}: dict {knob} {mode:?} {par:?} rows"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Dictionaries are maintained incrementally: interleaved inserts, deletes,
/// and truncates leave the dictionary-encoded table scanning out the exact
/// same rows as its plain twin, and the decode-on-output batch equals the
/// row storage.
#[test]
fn dictionary_maintenance_under_insert_delete_truncate() {
    let mut rng = SplitMix64::seed_from_u64(0x9A13);
    let (mut on, mut off) = twin_dbs(&mut rng, 0, 0);
    let mut next_id: i64 = 0;
    for round in 0..6 {
        // A burst of inserts (some overwriting existing keys)...
        for _ in 0..rng.gen_range_usize(50, 1500) {
            let id = if next_id > 0 && rng.gen_range_usize(0, 4) == 0 {
                rng.gen_range_i64(0, next_id)
            } else {
                next_id += 1;
                next_id - 1
            };
            let t = proql_common::tup![id, word(&mut rng), rng.gen_range_i64(0, 50)];
            on.insert("S", t.clone()).unwrap();
            off.insert("S", t).unwrap();
        }
        // ...then a burst of deletes...
        for _ in 0..rng.gen_range_usize(0, 200) {
            if next_id == 0 {
                break;
            }
            let key = proql_common::tup![rng.gen_range_i64(0, next_id)];
            let a = on.table_mut("S").unwrap().delete_by_key(&key);
            let b = off.table_mut("S").unwrap().delete_by_key(&key);
            assert_eq!(a, b, "round {round}: delete diverged");
        }
        // ...and occasionally a truncate.
        if rng.gen_range_usize(0, 5) == 0 {
            on.table_mut("S").unwrap().truncate();
            off.table_mut("S").unwrap().truncate();
        }
        let ton = on.table("S").unwrap();
        let toff = off.table("S").unwrap();
        assert_eq!(
            ton.scan(),
            toff.scan(),
            "round {round}: row storage diverged"
        );
        // Decode-on-output: the dictionary-encoded batch materializes the
        // exact values the plain table holds.
        let bon = ton.to_batch();
        let boff = toff.to_batch();
        assert_eq!(bon.len(), boff.len(), "round {round}: batch length");
        for c in 0..bon.arity() {
            for r in 0..bon.len() {
                assert_eq!(
                    bon.columns[c].value(r),
                    boff.columns[c].value(r),
                    "round {round}: cell ({r},{c})"
                );
            }
        }
        // The dictionary stays consistent with the column it encodes:
        // every resident string is interned exactly once.
        if let Some(dict) = ton.dictionary(1) {
            let mut seen = std::collections::BTreeSet::new();
            for s in dict.values() {
                assert!(
                    seen.insert(s.clone()),
                    "round {round}: duplicate dict entry {s}"
                );
            }
            for row in ton.iter() {
                if let Value::Str(s) = row.get(1) {
                    assert!(
                        dict.code_of(s.as_ref()).is_some(),
                        "round {round}: resident string {s:?} missing from dictionary"
                    );
                }
            }
        }
        // Query equivalence holds at every intermediate state, not just
        // the final one.
        let needle = word(&mut rng);
        let plan = Plan::scan("S").filter(Expr::col(1).eq(Expr::lit(needle)));
        let a = execute_with_opts(&on, &plan, ExecMode::Batch, Parallelism::Threads(4)).unwrap();
        let b = execute_with_opts(&off, &plan, ExecMode::Row, Parallelism::Serial).unwrap();
        assert_eq!(a.rows, b.rows, "round {round}: filter diverged");
    }
}

/// Dictionary-bearing snapshot frames round-trip exactly, and arbitrary
/// byte corruption or truncation never panics the decoder.
#[test]
fn snapshot_wire_roundtrips_and_corruption_never_panics() {
    let mut rng = SplitMix64::seed_from_u64(0x51A9);
    for case in 0..10 {
        let n_tables = rng.gen_range_usize(1, 4);
        let mut tables = Vec::new();
        for t in 0..n_tables {
            let n_rows = rng.gen_range_usize(0, 60);
            let rows: Vec<Tuple> = (0..n_rows)
                .map(|i| {
                    proql_common::tup![
                        i as i64,
                        word(&mut rng),
                        rng.gen_range_i64(0, 3) == 0,
                        word(&mut rng)
                    ]
                })
                .collect();
            tables.push((format!("T{t}"), rows));
        }
        let f = SnapshotFrame {
            version: rng.next_u64(),
            digest: rng.next_u64(),
            sealed_at_micros: rng.next_u64(),
            tables,
        };
        let bytes = encode_snapshot_frame(&f);
        assert_eq!(decode_snapshot_frame(&bytes).unwrap(), f, "case {case}");
        // Every strict prefix fails cleanly (all counts are declared up
        // front, so a cut payload is always detectably short).
        for cut in (0..bytes.len()).step_by(7) {
            assert!(
                decode_snapshot_frame(&bytes[..cut]).is_err(),
                "case {case}: prefix {cut} decoded"
            );
        }
        // Random single-byte corruption: the decoder may reject or may
        // produce a different (still well-formed) frame, but must never
        // panic or over-allocate.
        for _ in 0..200 {
            let mut bad = bytes.clone();
            let pos = rng.gen_range_usize(0, bad.len());
            bad[pos] ^= (rng.next_u64() % 255 + 1) as u8;
            let _ = decode_snapshot_frame(&bad);
        }
    }
}
