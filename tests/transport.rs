//! Wire-level tests for the event-loop transport: binary-framing
//! robustness under fuzzed garbage and byte-split partial reads,
//! admission-control shedding with no silent drops, and the
//! response/PUSH interleaving the pipelined server makes possible.

use proql::engine::EngineOptions;
use proql_cdss::topology::{build_system_with_island, CdssConfig, Topology};
use proql_common::rng::SplitMix64;
use proql_common::{tup, Schema, ValueType};
use proql_provgraph::system::example_2_1;
use proql_provgraph::ProvenanceSystem;
use proql_service::frame::{self, verb};
use proql_service::proto::{json_str_field, json_u64_field};
use proql_service::server::{serve_with, ServerConfig};
use proql_service::{serve, BinClient, Client, ServiceCore};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const Q: &str = "FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x";

fn start(workers: usize) -> (Arc<ServiceCore>, proql_service::ServerHandle) {
    let core = Arc::new(ServiceCore::new(
        example_2_1().unwrap(),
        EngineOptions::default(),
    ));
    let handle = serve(Arc::clone(&core), "127.0.0.1:0", workers).unwrap();
    (core, handle)
}

/// An X → Y system whose cached entries are maintained on writes, so
/// subscriptions push deltas.
fn subscription_system(rows: i64) -> ProvenanceSystem {
    let mut sys = ProvenanceSystem::new();
    for name in ["X", "Y"] {
        sys.add_relation_with_local(
            Schema::build(name, &[("id", ValueType::Int), ("w", ValueType::Int)], &[0]).unwrap(),
        )
        .unwrap();
    }
    sys.add_mapping_text("mxy: Y(i, w) :- X(i, w)").unwrap();
    for i in 0..rows {
        sys.insert_local("X", tup![i, i * 10]).unwrap();
    }
    sys.run_exchange().unwrap();
    sys
}

/// Garbage after the binary-mode magic byte must drop that connection
/// cleanly — no panic, no lost worker — and the server must keep serving
/// fresh connections. Fuzzed with a deterministic PRNG.
#[test]
fn fuzzed_garbage_drops_the_connection_but_not_the_server() {
    let (core, handle) = start(2);
    let mut rng = SplitMix64::seed_from_u64(0xBADF00D);
    for round in 0..40 {
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.set_nodelay(true).unwrap();
        let garbage: Vec<u8> = match round % 4 {
            // Magic byte then random junk. The flags byte is forced
            // nonzero so the stream is provably corrupt (pure random
            // junk can spell a valid frame prefix, which would make the
            // server legitimately wait for more bytes).
            0 => {
                let n = rng.gen_range_usize(4, 64);
                let mut g: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
                g[0] = frame::MAGIC;
                g[2] = 0xFF;
                g
            }
            // A valid frame followed by a bad-magic byte.
            1 => {
                let mut g = frame::encode(verb::PING, 1, b"");
                g.push(0x00);
                g
            }
            // An oversized declared length.
            2 => {
                let mut g = frame::encode(verb::QUERY, 2, b"x");
                g[4..8].copy_from_slice(&(frame::MAX_PAYLOAD + 1).to_le_bytes());
                g
            }
            // Reserved flags set.
            _ => {
                let mut g = frame::encode(verb::QUERY, 3, b"x");
                g[2] = 0xFF;
                g
            }
        };
        s.write_all(&garbage).unwrap();
        // The server must close this connection (EOF), not hang or panic.
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut sink = Vec::new();
        let _ = s.read_to_end(&mut sink); // drains any pre-corruption responses
    }
    // Every framing error was counted and the server still answers.
    let stats = core.stats();
    assert!(
        stats.transport.protocol_errors >= 40,
        "protocol errors: {}",
        stats.transport.protocol_errors
    );
    let mut c = BinClient::connect(handle.addr()).unwrap();
    assert!(c.query(Q).is_ok());
    handle.shutdown();
}

/// A frame delivered one byte at a time — a partial read at every
/// possible boundary — must decode exactly once and get its answer.
#[test]
fn partial_reads_split_at_every_byte_boundary() {
    let (_core, handle) = start(1);
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    s.set_nodelay(true).unwrap();
    let bytes = frame::encode(verb::QUERY, 99, Q.as_bytes());
    for b in &bytes {
        s.write_all(std::slice::from_ref(b)).unwrap();
        s.flush().unwrap();
    }
    // Read the one response frame off the raw socket.
    let mut rbuf = Vec::new();
    let mut scratch = [0u8; 4096];
    let reply = loop {
        if let Some((f, n)) = frame::decode(&rbuf).unwrap() {
            rbuf.drain(..n);
            break f;
        }
        let n = s.read(&mut scratch).unwrap();
        assert!(n > 0, "server closed before answering");
        rbuf.extend_from_slice(&scratch[..n]);
    };
    assert_eq!(reply.verb, verb::OK);
    assert_eq!(reply.id, 99);
    assert_eq!(json_u64_field(reply.text().unwrap(), "bindings"), Some(4));
    drop(s);
    handle.shutdown();
}

/// Saturate a 1-worker, 2-in-flight server with one pipelined batch:
/// shedding must engage, and every request must still get exactly one
/// response (OK or OVERLOADED) in request order — nothing silently
/// dropped.
#[test]
fn shedding_engages_and_no_accepted_request_is_dropped() {
    let sys =
        build_system_with_island(Topology::Chain, &CdssConfig::new(4, vec![3], 24), 8).unwrap();
    let core = Arc::new(ServiceCore::new(sys, EngineOptions::default()));
    let handle = serve_with(
        Arc::clone(&core),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            max_inflight: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Distinct uncached queries, so nothing completes instantly off the
    // cache while the batch is still being decoded.
    let queries: Vec<String> = (0..64)
        .map(|i| format!("FOR [R0a $x] INCLUDE PATH [$x] <-+ [] WHERE $x.k >= {i} RETURN $x"))
        .collect();
    let mut c = BinClient::connect(handle.addr()).unwrap();
    let reqs: Vec<(u8, &[u8])> = queries
        .iter()
        .map(|q| (verb::QUERY, q.as_bytes()))
        .collect();
    let ids = c.send_batch(&reqs).unwrap();

    let mut ok = 0u64;
    let mut shed = 0u64;
    for id in &ids {
        let f = c.recv_response().unwrap();
        assert_eq!(f.id, *id, "responses must arrive in request order");
        match f.verb {
            verb::OK => ok += 1,
            verb::OVERLOADED => shed += 1,
            other => panic!("unexpected verb {other} for request {id}"),
        }
    }
    assert_eq!(ok + shed, ids.len() as u64, "every request answered once");
    assert!(
        shed > 0,
        "a 1-worker 2-in-flight server must shed this batch"
    );
    assert!(ok > 0, "admitted requests must still execute");

    let stats = core.stats();
    assert_eq!(stats.transport.shed_count, shed);
    assert_eq!(stats.queries, ok, "exactly the admitted requests executed");
    drop(c);
    handle.shutdown();
}

/// Regression (previously `next_push` dropped response lines): a PUSH
/// arriving between a request and its response must be stashed on both
/// read paths, never lost, in either order of retrieval.
#[test]
fn push_and_response_interleaving_loses_neither() {
    let core = Arc::new(ServiceCore::new(
        subscription_system(40),
        EngineOptions::default(),
    ));
    let handle = serve(Arc::clone(&core), "127.0.0.1:0", 2).unwrap();
    let qy = "FOR [Y $x] INCLUDE PATH [$x] <-+ [] RETURN $x";

    let mut sub = Client::connect(handle.addr()).unwrap();
    let mut writer = Client::connect(handle.addr()).unwrap();
    let ack = sub.subscribe(qy).unwrap();
    let sub_id = json_u64_field(&ack, "subscription").unwrap();

    for i in 0..10 {
        // The write fires an asynchronous PUSH at the subscriber while
        // the subscriber races its own request down the same socket.
        let del = writer.request(&format!("DELETE X {i}")).unwrap();
        assert!(del.starts_with("OK "), "{del}");
        let resp = sub.query(qy).unwrap();
        assert!(json_u64_field(&resp, "bindings").is_some());
        // The push must be retrievable afterwards whether it raced the
        // response or not, and carry this subscription's id.
        let push = sub.next_push().unwrap();
        assert_eq!(json_u64_field(&push, "subscription"), Some(sub_id));
        assert_eq!(json_str_field(&push, "event").as_deref(), Some("delta"));
    }
    drop(sub);
    drop(writer);
    handle.shutdown();
}

/// Binary-mode pushes arrive as out-of-band PUSH frames, in write order
/// per connection, with versions strictly increasing.
#[test]
fn binary_pushes_are_ordered_per_connection() {
    let core = Arc::new(ServiceCore::new(
        subscription_system(40),
        EngineOptions::default(),
    ));
    let handle = serve(Arc::clone(&core), "127.0.0.1:0", 2).unwrap();
    let qy = "FOR [Y $x] INCLUDE PATH [$x] <-+ [] RETURN $x";

    let mut sub = BinClient::connect(handle.addr()).unwrap();
    let ack = sub.subscribe(qy).unwrap();
    let sub_id = json_u64_field(&ack, "subscription").unwrap();

    let mut writer = Client::connect(handle.addr()).unwrap();
    for i in 0..8 {
        let del = writer.request(&format!("DELETE X {i}")).unwrap();
        assert!(del.starts_with("OK "), "{del}");
    }
    let mut last_version = 0u64;
    for _ in 0..8 {
        let push = sub.next_push().unwrap();
        assert_eq!(push.verb, verb::PUSH);
        assert_eq!(push.id, sub_id);
        let json = push.text().unwrap();
        let version = json_u64_field(json, "version").unwrap();
        assert!(
            version > last_version,
            "push versions must increase in order: {version} after {last_version}"
        );
        last_version = version;
    }
    drop(sub);
    drop(writer);
    handle.shutdown();
}

/// The line protocol still works over the same port, auto-detected, with
/// both protocol clients connected at once.
#[test]
fn line_and_binary_clients_share_one_server() {
    let (_core, handle) = start(2);
    let mut line = Client::connect(handle.addr()).unwrap();
    let mut bin = BinClient::connect(handle.addr()).unwrap();
    let a = line.query(Q).unwrap();
    let b = bin.query(Q).unwrap();
    assert_eq!(json_str_field(&a, "digest"), json_str_field(&b, "digest"));
    let pong = line.request("PING").unwrap();
    assert!(pong.starts_with("OK"), "{pong}");
    drop(line);
    drop(bin);
    handle.shutdown();
}

/// Read one frame off a raw socket (blocking until complete).
fn read_raw_frame(s: &mut TcpStream, rbuf: &mut Vec<u8>) -> frame::Frame {
    let mut scratch = [0u8; 4096];
    loop {
        if let Some((f, n)) = frame::decode(rbuf).unwrap() {
            rbuf.drain(..n);
            return f;
        }
        let n = s.read(&mut scratch).unwrap();
        assert!(n > 0, "server closed before answering");
        rbuf.extend_from_slice(&scratch[..n]);
    }
}

/// The `HELLO` handshake: the server advertises its protocol version,
/// refuses versions it cannot serve with a clean per-request error, and
/// the connection survives every outcome.
#[test]
fn hello_handshake_negotiates_and_rejects_cleanly() {
    let (_core, handle) = start(1);
    let mut bin = BinClient::connect(handle.addr()).unwrap();

    // The happy path: the helper sends this build's version.
    let ok = bin.hello().unwrap();
    assert_eq!(
        json_u64_field(&ok, "protocol"),
        Some(u64::from(frame::PROTOCOL_VERSION))
    );

    // A future-but-in-window version is a clean ERR, not a disconnect.
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    let mut rbuf = Vec::new();
    s.write_all(&frame::encode(verb::HELLO, 1, b"5")).unwrap();
    let reply = read_raw_frame(&mut s, &mut rbuf);
    assert_eq!(reply.verb, verb::ERR);
    assert!(reply.text().unwrap().contains("unsupported"), "{reply:?}");

    // Outside the window or garbage: parse errors, still no disconnect.
    for payload in [b"0".as_slice(), b"99".as_slice(), b"banana".as_slice()] {
        s.write_all(&frame::encode(verb::HELLO, 2, payload))
            .unwrap();
        let reply = read_raw_frame(&mut s, &mut rbuf);
        assert_eq!(reply.verb, verb::ERR, "payload {payload:?}");
    }

    // The same connection keeps serving queries afterwards.
    s.write_all(&frame::encode(verb::QUERY, 3, Q.as_bytes()))
        .unwrap();
    let reply = read_raw_frame(&mut s, &mut rbuf);
    assert_eq!(reply.verb, verb::OK);
    assert_eq!(reply.id, 3);

    drop(bin);
    drop(s);
    handle.shutdown();
}

/// A well-formed frame stamped with a future protocol version that is
/// still inside the decoder's window gets a clean per-frame ERR — the
/// connection, its pipeline, and the protocol-error counter are all
/// untouched. Beyond the window the byte can only be corruption, so the
/// connection is dropped and counted.
#[test]
fn in_window_future_frame_versions_err_cleanly_without_dropping() {
    let (core, handle) = start(1);
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    s.set_nodelay(true).unwrap();
    let mut rbuf = Vec::new();

    // Patch the header's version byte to an in-window future version.
    let mut bytes = frame::encode(verb::QUERY, 41, Q.as_bytes());
    bytes[2] = frame::PROTOCOL_VERSION + 1;
    assert!(bytes[2] <= frame::VERSION_WINDOW);
    s.write_all(&bytes).unwrap();
    let reply = read_raw_frame(&mut s, &mut rbuf);
    assert_eq!(reply.verb, verb::ERR);
    assert_eq!(reply.id, 41, "the ERR must answer the offending frame's id");
    assert!(
        reply.text().unwrap().contains("frame protocol version"),
        "{reply:?}"
    );

    // The connection is still healthy: a normal frame right behind it.
    s.write_all(&frame::encode(verb::QUERY, 42, Q.as_bytes()))
        .unwrap();
    let reply = read_raw_frame(&mut s, &mut rbuf);
    assert_eq!(reply.verb, verb::OK);
    assert_eq!(reply.id, 42);
    assert_eq!(
        core.stats().transport.protocol_errors,
        0,
        "an in-window version is not a protocol error"
    );

    // Beyond the window: framing corruption — dropped and counted.
    let mut bad = frame::encode(verb::QUERY, 43, Q.as_bytes());
    bad[2] = frame::VERSION_WINDOW + 1;
    s.write_all(&bad).unwrap();
    let mut scratch = [0u8; 256];
    loop {
        match s.read(&mut scratch) {
            Ok(0) => break,
            Ok(_) => continue, // drain anything already queued
            Err(_) => break,
        }
    }
    assert_eq!(core.stats().transport.protocol_errors, 1);

    handle.shutdown();
}
