//! Property-based tests (proptest) over the core data structures and
//! invariants:
//!
//! * semiring laws for every Table 1 semiring,
//! * homomorphism commutation: evaluating the provenance-polynomial
//!   annotation and then applying a semiring homomorphism equals
//!   evaluating directly in that semiring (the fundamental theorem the
//!   whole design rests on),
//! * exchange invariants: provenance rows always decode to existing
//!   tuples,
//! * storage-engine invariants: optimizer output is plan-equivalent.

use proptest::prelude::*;
use proql_common::{tup, Tuple, Value};
use proql_provgraph::ProvGraph;
use proql_semiring::{
    evaluate, Annotation, Assignment, Polynomial, SemiringKind,
};
use proql_storage::{execute, optimize::optimize, Database, Expr, Plan};
use std::collections::HashMap;

const KINDS: [SemiringKind; 8] = [
    SemiringKind::Derivability,
    SemiringKind::Trust,
    SemiringKind::Confidentiality,
    SemiringKind::Weight,
    SemiringKind::Lineage,
    SemiringKind::Probability,
    SemiringKind::Counting,
    SemiringKind::Polynomial,
];

/// A random annotation value for a semiring, built from leaves/ops so the
/// value is always well-typed.
fn arb_annotation(kind: SemiringKind) -> impl Strategy<Value = Annotation> {
    (0u8..6, 0u8..4).prop_map(move |(leaf_idx, shape)| {
        let leaves = ["p", "q", "r", "s", "t", "u"];
        let a = kind.default_leaf(leaves[leaf_idx as usize]);
        let b = kind.default_leaf(leaves[(leaf_idx as usize + 1) % 6]);
        match shape {
            0 => kind.zero(),
            1 => kind.one(),
            2 => kind.plus(&a, &b).expect("typed"),
            _ => kind.times(&a, &b).expect("typed"),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn semiring_laws_hold(seed in 0u8..8, idx in 0usize..8) {
        let kind = KINDS[idx];
        // Deterministic triple of values from the seed.
        let v = |i: u8| {
            let names = ["x", "y", "z", "w"];
            kind.default_leaf(names[((seed + i) % 4) as usize])
        };
        let (a, b, c) = (v(0), v(1), v(2));
        // + commutative & associative, identity.
        prop_assert_eq!(kind.plus(&a, &b).unwrap(), kind.plus(&b, &a).unwrap());
        prop_assert_eq!(
            kind.plus(&kind.plus(&a, &b).unwrap(), &c).unwrap(),
            kind.plus(&a, &kind.plus(&b, &c).unwrap()).unwrap()
        );
        prop_assert_eq!(kind.plus(&a, &kind.zero()).unwrap(), a.clone());
        // × associative, identity, annihilator.
        prop_assert_eq!(
            kind.times(&kind.times(&a, &b).unwrap(), &c).unwrap(),
            kind.times(&a, &kind.times(&b, &c).unwrap()).unwrap()
        );
        prop_assert_eq!(kind.times(&a, &kind.one()).unwrap(), a.clone());
        prop_assert_eq!(kind.times(&kind.zero(), &a).unwrap(), kind.zero());
        // distributivity.
        prop_assert_eq!(
            kind.times(&a, &kind.plus(&b, &c).unwrap()).unwrap(),
            kind.plus(&kind.times(&a, &b).unwrap(), &kind.times(&a, &c).unwrap())
                .unwrap()
        );
    }

    #[test]
    fn random_annotations_satisfy_distributivity(
        idx in 0usize..8,
        abc in (0usize..8).prop_flat_map(|i| (
            arb_annotation(KINDS[i]),
            arb_annotation(KINDS[i]),
            arb_annotation(KINDS[i]),
            Just(i),
        )),
    ) {
        let _ = idx;
        let (a, b, c, i) = abc;
        let kind = KINDS[i];
        prop_assert_eq!(
            kind.times(&a, &kind.plus(&b, &c).unwrap()).unwrap(),
            kind.plus(&kind.times(&a, &b).unwrap(), &kind.times(&a, &c).unwrap()).unwrap()
        );
    }
}

/// A random acyclic provenance DAG: layered tuples, each non-leaf with 1-2
/// derivations from the previous layer.
fn arb_dag() -> impl Strategy<Value = ProvGraph> {
    (2usize..5, proptest::collection::vec((1usize..3, 1usize..4), 2..10)).prop_map(
        |(layers, recipe)| {
            let mut g = ProvGraph::new();
            let mut layer_nodes: Vec<Vec<proql_common::TupleId>> = vec![vec![]];
            // Leaf layer.
            for i in 0..3 {
                let t = g.add_tuple("L0", tup![i as i64], None);
                g.add_derivation("base", tup![i as i64], vec![], vec![t], true);
                layer_nodes[0].push(t);
            }
            let mut key = 100i64;
            for layer in 1..layers {
                let mut nodes = vec![];
                for (j, &(nderiv, nsrc)) in recipe.iter().enumerate() {
                    let t = g.add_tuple(&format!("L{layer}"), tup![key], None);
                    key += 1;
                    for d in 0..nderiv {
                        let prev = &layer_nodes[layer - 1];
                        let sources: Vec<_> = (0..nsrc.min(prev.len()))
                            .map(|s| prev[(j + s + d) % prev.len()])
                            .collect();
                        g.add_derivation(
                            &format!("m{layer}"),
                            tup![key, d as i64],
                            sources,
                            vec![t],
                            false,
                        );
                    }
                    nodes.push(t);
                }
                layer_nodes.push(nodes);
            }
            g
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fundamental property: N[X] is universal. Evaluating the
    /// polynomial annotation and then mapping leaves through a valuation
    /// equals evaluating the target semiring directly.
    #[test]
    fn polynomial_is_universal(g in arb_dag(), weights in proptest::collection::vec(1u8..10, 3)) {
        let poly_vals =
            evaluate(&g, &Assignment::default_for(SemiringKind::Polynomial)).unwrap();

        // Counting homomorphism (all leaves -> 1).
        let count_vals =
            evaluate(&g, &Assignment::default_for(SemiringKind::Counting)).unwrap();
        for t in g.tuple_ids() {
            let p: &Polynomial = poly_vals[&t].as_poly().unwrap();
            prop_assert_eq!(
                p.eval_counting(&|_| 1),
                count_vals[&t].as_count().unwrap(),
                "counting mismatch"
            );
        }

        // Derivability homomorphism (all leaves -> true).
        let bool_vals =
            evaluate(&g, &Assignment::default_for(SemiringKind::Derivability)).unwrap();
        for t in g.tuple_ids() {
            let p = poly_vals[&t].as_poly().unwrap();
            prop_assert_eq!(
                p.eval_bool(&|_| true),
                bool_vals[&t].as_bool().unwrap(),
                "derivability mismatch"
            );
        }

        // Tropical homomorphism with per-leaf weights.
        let w = weights.clone();
        let weight_of = move |label: &str| {
            // labels are "L0(i)"
            let i = label.as_bytes()[3] - b'0';
            f64::from(w[(i as usize) % 3])
        };
        let wcopy = weight_of.clone();
        let assign = Assignment::default_for(SemiringKind::Weight)
            .with_leaf(move |_, label| Annotation::Weight(wcopy(label)));
        let trop_vals = evaluate(&g, &assign).unwrap();
        for t in g.tuple_ids() {
            let p = poly_vals[&t].as_poly().unwrap();
            let expect = p.eval_tropical(&|v| weight_of(v));
            let got = trop_vals[&t].as_weight().unwrap();
            prop_assert!((expect - got).abs() < 1e-9, "tropical {expect} vs {got}");
        }

        // Lineage = variables of the polynomial.
        let lin_vals = evaluate(&g, &Assignment::default_for(SemiringKind::Lineage)).unwrap();
        for t in g.tuple_ids() {
            let p = poly_vals[&t].as_poly().unwrap();
            let lineage = lin_vals[&t].as_lineage().unwrap();
            prop_assert_eq!(&p.variables(), lineage, "lineage mismatch");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Exchange invariant: every provenance row decodes to source/target
    /// tuples that exist in the public relations.
    #[test]
    fn provenance_rows_decode_to_existing_tuples(
        n_keys in 1usize..12,
        peers in 3usize..6,
    ) {
        use proql_cdss::topology::{build_system, CdssConfig, Topology};
        let cfg = CdssConfig::upstream_data(peers, 2, n_keys);
        let sys = build_system(Topology::Chain, &cfg).unwrap();
        for (rule, spec) in sys.program().rules.iter().zip(sys.specs()) {
            let rows = execute(&sys.db, &Plan::scan(spec.prov_rel.clone())).unwrap();
            for row in &rows.rows {
                for recipe in &spec.atoms {
                    let key = recipe.key_of(row);
                    let table = sys.db.table(&recipe.relation).unwrap();
                    prop_assert!(
                        table.get_by_key(&key).is_some(),
                        "dangling provenance for {} in rule {:?}",
                        recipe.relation,
                        rule.name
                    );
                }
            }
        }
    }

    /// Storage invariant: optimizing a filtered scan plan never changes
    /// its result.
    #[test]
    fn optimizer_preserves_semantics(
        rows in proptest::collection::vec((0i64..20, 0i64..20), 0..40),
        probe in 0i64..20,
        hi in 0i64..20,
    ) {
        let mut db = Database::new();
        db.create_table(
            proql_common::Schema::build(
                "T",
                &[("a", proql_common::ValueType::Int), ("b", proql_common::ValueType::Int)],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        let mut seen = std::collections::HashSet::new();
        for (a, b) in rows {
            if seen.insert((a, b)) {
                db.insert("T", tup![a, b]).unwrap();
            }
        }
        let plan = Plan::scan("T")
            .join(Plan::scan("T"), vec![0], vec![1])
            .filter(Expr::And(vec![
                Expr::col(0).eq(Expr::lit(probe)),
                Expr::cmp(proql_storage::BinOp::Le, Expr::col(3), Expr::lit(hi)),
            ]));
        let plain = execute(&db, &plan).unwrap();
        let opt = execute(&db, &optimize(plan)).unwrap();
        let sort = |mut v: Vec<Tuple>| { v.sort(); v };
        prop_assert_eq!(sort(plain.rows), sort(opt.rows));
    }

    /// Tuple round trip: project-concat identities.
    #[test]
    fn tuple_project_concat_roundtrip(vals in proptest::collection::vec(-50i64..50, 1..8)) {
        let t = Tuple::new(vals.iter().copied().map(Value::Int).collect());
        let all: Vec<usize> = (0..t.arity()).collect();
        prop_assert_eq!(t.project(&all), t.clone());
        let empty = Tuple::empty();
        prop_assert_eq!(empty.concat(&t), t.clone());
        prop_assert_eq!(t.concat(&empty), t);
    }
}

/// Deterministic helper used by the DAG strategy tests above.
#[test]
fn dag_strategy_produces_acyclic_graphs() {
    // Not a proptest: just pin the generator's basic soundness once.
    use proptest::strategy::ValueTree;
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    for _ in 0..16 {
        let g = arb_dag().new_tree(&mut runner).unwrap().current();
        assert!(!g.is_cyclic());
        let vals = evaluate(&g, &Assignment::default_for(SemiringKind::Counting)).unwrap();
        let nonzero = vals
            .values()
            .filter(|v| **v != Annotation::Count(0))
            .count();
        assert!(nonzero > 0);
        let _unused: HashMap<(), ()> = HashMap::new();
    }
}
