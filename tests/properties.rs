//! Property-based tests over the core data structures and invariants:
//!
//! * semiring laws for every Table 1 semiring,
//! * homomorphism commutation: evaluating the provenance-polynomial
//!   annotation and then applying a semiring homomorphism equals
//!   evaluating directly in that semiring (the fundamental theorem the
//!   whole design rests on),
//! * exchange invariants: provenance rows always decode to existing
//!   tuples,
//! * storage-engine invariants: optimizer output is plan-equivalent, and
//!   the columnar batch executor agrees with both row executors.
//!
//! The build environment has no registry access, so instead of proptest
//! these properties are driven by a seeded [`SplitMix64`] generator:
//! deterministic, reproducible runs with printed counterexample inputs.

use proql_common::rng::SplitMix64;
use proql_common::{tup, Parallelism, Tuple, Value};
use proql_provgraph::ProvGraph;
use proql_semiring::{evaluate, evaluate_with, Annotation, Assignment, Polynomial, SemiringKind};
use proql_storage::{
    execute, execute_with, execute_with_opts, optimize::optimize, optimize::optimize_with,
    Database, ExecMode, Expr, Plan,
};

const KINDS: [SemiringKind; 8] = [
    SemiringKind::Derivability,
    SemiringKind::Trust,
    SemiringKind::Confidentiality,
    SemiringKind::Weight,
    SemiringKind::Lineage,
    SemiringKind::Probability,
    SemiringKind::Counting,
    SemiringKind::Polynomial,
];

/// A random annotation value for a semiring, built from leaves/ops so the
/// value is always well-typed.
fn arb_annotation(kind: SemiringKind, rng: &mut SplitMix64) -> Annotation {
    let leaves = ["p", "q", "r", "s", "t", "u"];
    let leaf_idx = rng.gen_range_usize(0, 6);
    let shape = rng.gen_range_usize(0, 4);
    let a = kind.default_leaf(leaves[leaf_idx]);
    let b = kind.default_leaf(leaves[(leaf_idx + 1) % 6]);
    match shape {
        0 => kind.zero(),
        1 => kind.one(),
        2 => kind.plus(&a, &b).expect("typed"),
        _ => kind.times(&a, &b).expect("typed"),
    }
}

#[test]
fn semiring_laws_hold() {
    // Exhaustive over all seed/kind combinations the proptest version
    // sampled.
    for kind in KINDS {
        for seed in 0u8..8 {
            let v = |i: u8| {
                let names = ["x", "y", "z", "w"];
                kind.default_leaf(names[((seed + i) % 4) as usize])
            };
            let (a, b, c) = (v(0), v(1), v(2));
            // + commutative & associative, identity.
            assert_eq!(kind.plus(&a, &b).unwrap(), kind.plus(&b, &a).unwrap());
            assert_eq!(
                kind.plus(&kind.plus(&a, &b).unwrap(), &c).unwrap(),
                kind.plus(&a, &kind.plus(&b, &c).unwrap()).unwrap()
            );
            assert_eq!(kind.plus(&a, &kind.zero()).unwrap(), a.clone());
            // × associative, identity, annihilator.
            assert_eq!(
                kind.times(&kind.times(&a, &b).unwrap(), &c).unwrap(),
                kind.times(&a, &kind.times(&b, &c).unwrap()).unwrap()
            );
            assert_eq!(kind.times(&a, &kind.one()).unwrap(), a.clone());
            assert_eq!(kind.times(&kind.zero(), &a).unwrap(), kind.zero());
            // distributivity.
            assert_eq!(
                kind.times(&a, &kind.plus(&b, &c).unwrap()).unwrap(),
                kind.plus(&kind.times(&a, &b).unwrap(), &kind.times(&a, &c).unwrap())
                    .unwrap()
            );
        }
    }
}

#[test]
fn random_annotations_satisfy_distributivity() {
    let mut rng = SplitMix64::seed_from_u64(0xD157);
    for case in 0..256 {
        let kind = KINDS[rng.gen_range_usize(0, KINDS.len())];
        let a = arb_annotation(kind, &mut rng);
        let b = arb_annotation(kind, &mut rng);
        let c = arb_annotation(kind, &mut rng);
        assert_eq!(
            kind.times(&a, &kind.plus(&b, &c).unwrap()).unwrap(),
            kind.plus(&kind.times(&a, &b).unwrap(), &kind.times(&a, &c).unwrap())
                .unwrap(),
            "case {case}: {kind} a={a:?} b={b:?} c={c:?}"
        );
    }
}

/// A random acyclic provenance DAG: layered tuples, each non-leaf with 1-2
/// derivations from the previous layer.
fn arb_dag(rng: &mut SplitMix64) -> ProvGraph {
    let layers = rng.gen_range_usize(2, 5);
    let recipe: Vec<(usize, usize)> = (0..rng.gen_range_usize(2, 10))
        .map(|_| (rng.gen_range_usize(1, 3), rng.gen_range_usize(1, 4)))
        .collect();
    let mut g = ProvGraph::new();
    let mut layer_nodes: Vec<Vec<proql_common::TupleId>> = vec![vec![]];
    // Leaf layer.
    for i in 0..3 {
        let t = g.add_tuple("L0", tup![i as i64], None);
        g.add_derivation("base", tup![i as i64], vec![], vec![t], true);
        layer_nodes[0].push(t);
    }
    let mut key = 100i64;
    for layer in 1..layers {
        let mut nodes = vec![];
        for (j, &(nderiv, nsrc)) in recipe.iter().enumerate() {
            let t = g.add_tuple(&format!("L{layer}"), tup![key], None);
            key += 1;
            for d in 0..nderiv {
                let prev = &layer_nodes[layer - 1];
                let sources: Vec<_> = (0..nsrc.min(prev.len()))
                    .map(|s| prev[(j + s + d) % prev.len()])
                    .collect();
                g.add_derivation(
                    &format!("m{layer}"),
                    tup![key, d as i64],
                    sources,
                    vec![t],
                    false,
                );
            }
            nodes.push(t);
        }
        layer_nodes.push(nodes);
    }
    g
}

/// The fundamental property: N[X] is universal. Evaluating the polynomial
/// annotation and then mapping leaves through a valuation equals
/// evaluating the target semiring directly.
#[test]
fn polynomial_is_universal() {
    let mut rng = SplitMix64::seed_from_u64(0x90211);
    for case in 0..48 {
        let g = arb_dag(&mut rng);
        let weights: Vec<u8> = (0..3).map(|_| rng.gen_range_i64(1, 10) as u8).collect();
        let poly_vals = evaluate(&g, &Assignment::default_for(SemiringKind::Polynomial)).unwrap();

        // Counting homomorphism (all leaves -> 1).
        let count_vals = evaluate(&g, &Assignment::default_for(SemiringKind::Counting)).unwrap();
        for t in g.tuple_ids() {
            let p: &Polynomial = poly_vals[&t].as_poly().unwrap();
            assert_eq!(
                p.eval_counting(&|_| 1),
                count_vals[&t].as_count().unwrap(),
                "case {case}: counting mismatch"
            );
        }

        // Derivability homomorphism (all leaves -> true).
        let bool_vals = evaluate(&g, &Assignment::default_for(SemiringKind::Derivability)).unwrap();
        for t in g.tuple_ids() {
            let p = poly_vals[&t].as_poly().unwrap();
            assert_eq!(
                p.eval_bool(&|_| true),
                bool_vals[&t].as_bool().unwrap(),
                "case {case}: derivability mismatch"
            );
        }

        // Tropical homomorphism with per-leaf weights.
        let w = weights.clone();
        let weight_of = move |label: &str| {
            // labels are "L0(i)"
            let i = label.as_bytes()[3] - b'0';
            f64::from(w[(i as usize) % 3])
        };
        let wcopy = weight_of.clone();
        let assign = Assignment::default_for(SemiringKind::Weight)
            .with_leaf(move |_, label| Annotation::Weight(wcopy(label)));
        let trop_vals = evaluate(&g, &assign).unwrap();
        for t in g.tuple_ids() {
            let p = poly_vals[&t].as_poly().unwrap();
            let expect = p.eval_tropical(&|v| weight_of(v));
            let got = trop_vals[&t].as_weight().unwrap();
            assert!(
                (expect - got).abs() < 1e-9,
                "case {case}: tropical {expect} vs {got}"
            );
        }

        // Lineage = variables of the polynomial.
        let lin_vals = evaluate(&g, &Assignment::default_for(SemiringKind::Lineage)).unwrap();
        for t in g.tuple_ids() {
            let p = poly_vals[&t].as_poly().unwrap();
            let lineage = lin_vals[&t].as_lineage().unwrap();
            assert_eq!(&p.variables(), lineage, "case {case}: lineage mismatch");
        }
    }
}

/// Exchange invariant: every provenance row decodes to source/target
/// tuples that exist in the public relations.
#[test]
fn provenance_rows_decode_to_existing_tuples() {
    use proql_cdss::topology::{build_system, CdssConfig, Topology};
    let mut rng = SplitMix64::seed_from_u64(0xCD55);
    for case in 0..16 {
        let n_keys = rng.gen_range_usize(1, 12);
        let peers = rng.gen_range_usize(3, 6);
        let cfg = CdssConfig::upstream_data(peers, 2, n_keys);
        let sys = build_system(Topology::Chain, &cfg).unwrap();
        for (rule, spec) in sys.program().rules.iter().zip(sys.specs()) {
            let rows = execute(&sys.db, &Plan::scan(spec.prov_rel.clone())).unwrap();
            for row in &rows.rows {
                for recipe in &spec.atoms {
                    let key = recipe.key_of(row);
                    let table = sys.db.table(&recipe.relation).unwrap();
                    assert!(
                        table.get_by_key(&key).is_some(),
                        "case {case}: dangling provenance for {} in rule {:?}",
                        recipe.relation,
                        rule.name
                    );
                }
            }
        }
    }
}

/// Storage invariant: optimizing a plan never changes its result, and all
/// three executors (batch, row hash-join, row nested-loop) agree on both
/// the optimized and unoptimized plans.
#[test]
fn optimizer_and_executors_preserve_semantics() {
    let mut rng = SplitMix64::seed_from_u64(0x0917);
    for case in 0..32 {
        let mut db = Database::new();
        db.create_table(
            proql_common::Schema::build(
                "T",
                &[
                    ("a", proql_common::ValueType::Int),
                    ("b", proql_common::ValueType::Int),
                ],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..rng.gen_range_usize(0, 40) {
            let a = rng.gen_range_i64(0, 20);
            let b = rng.gen_range_i64(0, 20);
            if seen.insert((a, b)) {
                db.insert("T", tup![a, b]).unwrap();
            }
        }
        let probe = rng.gen_range_i64(0, 20);
        let hi = rng.gen_range_i64(0, 20);
        let plan = Plan::scan("T")
            .join(Plan::scan("T"), vec![0], vec![1])
            .filter(Expr::And(vec![
                Expr::col(0).eq(Expr::lit(probe)),
                Expr::cmp(proql_storage::BinOp::Le, Expr::col(3), Expr::lit(hi)),
            ]));
        let sort = |mut v: Vec<Tuple>| {
            v.sort();
            v
        };
        let plain = sort(execute(&db, &plan).unwrap().rows);
        for optimized in [
            plan.clone(),
            optimize(plan.clone()),
            optimize_with(&db, plan.clone()),
        ] {
            for mode in [ExecMode::Batch, ExecMode::Row, ExecMode::NestedLoop] {
                let got = sort(execute_with(&db, &optimized, mode).unwrap().rows);
                assert_eq!(plain, got, "case {case}: mode {mode:?} diverged");
            }
            // Morsel-parallel batch execution is result-identical too.
            for par in [
                Parallelism::Serial,
                Parallelism::Threads(2),
                Parallelism::Threads(8),
                Parallelism::Auto,
            ] {
                let got = sort(
                    execute_with_opts(&db, &optimized, ExecMode::Batch, par)
                        .unwrap()
                        .rows,
                );
                assert_eq!(plain, got, "case {case}: parallelism {par:?} diverged");
            }
        }
    }
}

/// Tuple round trip: project-concat identities.
#[test]
fn tuple_project_concat_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0x7017);
    for _ in 0..64 {
        let vals: Vec<Value> = (0..rng.gen_range_usize(1, 8))
            .map(|_| Value::Int(rng.gen_range_i64(-50, 50)))
            .collect();
        let t = Tuple::new(vals);
        let all: Vec<usize> = (0..t.arity()).collect();
        assert_eq!(t.project(&all), t.clone());
        let empty = Tuple::empty();
        assert_eq!(empty.concat(&t), t.clone());
        assert_eq!(t.concat(&empty), t);
    }
}

/// The level-parallel semiring evaluator is value-identical to the serial
/// bottom-up walk on random DAGs, for every semiring (floats included —
/// the per-tuple fold order is unchanged).
#[test]
fn parallel_semiring_evaluation_matches_serial_on_random_dags() {
    let mut rng = SplitMix64::seed_from_u64(0x9A12A11E1);
    for case in 0..12 {
        let g = arb_dag(&mut rng);
        for kind in KINDS {
            let serial = evaluate(&g, &Assignment::default_for(kind)).unwrap();
            for par in [
                Parallelism::Threads(2),
                Parallelism::Threads(8),
                Parallelism::Auto,
            ] {
                let parallel = evaluate_with(&g, &Assignment::default_for(kind), par).unwrap();
                assert_eq!(serial, parallel, "case {case}: {kind} under {par:?}");
            }
        }
    }
}

/// Deterministic helper used by the DAG strategy tests above.
#[test]
fn dag_strategy_produces_acyclic_graphs() {
    let mut rng = SplitMix64::seed_from_u64(42);
    for _ in 0..16 {
        let g = arb_dag(&mut rng);
        assert!(!g.is_cyclic());
        let vals = evaluate(&g, &Assignment::default_for(SemiringKind::Counting)).unwrap();
        let nonzero = vals
            .values()
            .filter(|v| **v != Annotation::Count(0))
            .count();
        assert!(nonzero > 0);
    }
}
