//! Replication-layer integration tests: the wire format's round-trip
//! and corruption behavior under PRNG-driven inputs, the replica apply
//! path's rejection of gapped / stale / digest-divergent frames, and
//! end-to-end broken-chain recovery over real TCP — a mid-stream chain
//! rotation and a late joiner past log retention must both fall back to
//! a counted snapshot transfer and converge to digest identity.

use proql::engine::EngineOptions;
use proql_common::rng::SplitMix64;
use proql_common::{tup, Tuple, Value};
use proql_provgraph::encode::wire;
use proql_provgraph::system::example_2_1;
use proql_provgraph::{DeltaOp, GraphDelta, RowChange};
use proql_service::{
    serve, start_replica, wait_for_version, ReplApplyOutcome, ReplFrameKind, ReplicaConfig,
    RetryPolicy, ServiceCore,
};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

fn example_core() -> Arc<ServiceCore> {
    Arc::new(ServiceCore::new(
        example_2_1().expect("example system"),
        EngineOptions::default(),
    ))
}

fn quick_cfg() -> ReplicaConfig {
    ReplicaConfig {
        retry: RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            max_attempts: 8,
            seed: 7,
        },
        poll: Duration::from_millis(5),
    }
}

// ---------------------------------------------------------------------------
// PRNG-driven wire-format properties
// ---------------------------------------------------------------------------

fn rand_value(rng: &mut SplitMix64) -> Value {
    match rng.gen_range_usize(0, 5) {
        0 => Value::Null,
        1 => Value::Bool(rng.next_u64() & 1 == 1),
        2 => Value::Int(rng.gen_range_i64(-1_000_000, 1_000_000)),
        3 => Value::Float(rng.gen_f64() * 1e6 - 5e5),
        _ => {
            let len = rng.gen_range_usize(0, 12);
            let s: String = (0..len)
                .map(|_| char::from(b'a' + (rng.next_u64() % 26) as u8))
                .collect();
            Value::Str(s.into())
        }
    }
}

fn rand_tuple(rng: &mut SplitMix64) -> Tuple {
    let arity = rng.gen_range_usize(1, 5);
    Tuple::new((0..arity).map(|_| rand_value(rng)).collect())
}

fn rand_name(rng: &mut SplitMix64, prefix: &str) -> String {
    format!("{prefix}{}", rng.gen_range_usize(0, 8))
}

fn rand_delta(rng: &mut SplitMix64) -> GraphDelta {
    let mut d = GraphDelta::default();
    for _ in 0..rng.gen_range_usize(0, 7) {
        let op = match rng.gen_range_usize(0, 3) {
            0 => DeltaOp::AddDerivation {
                mapping: rand_name(rng, "m"),
                row: rand_tuple(rng),
            },
            1 => DeltaOp::RemoveDerivation {
                mapping: rand_name(rng, "m"),
                row: rand_tuple(rng),
            },
            _ => DeltaOp::SetValues {
                relation: rand_name(rng, "R"),
                key: rand_tuple(rng),
            },
        };
        d.ops.push(op);
    }
    for _ in 0..rng.gen_range_usize(0, 5) {
        d.rows.push(RowChange {
            table: rand_name(rng, "T"),
            row: rand_tuple(rng),
            added: rng.next_u64() & 1 == 1,
        });
    }
    for _ in 0..rng.gen_range_usize(0, 4) {
        d.touched.insert(rand_name(rng, "R"));
    }
    d
}

fn rand_delta_frame(rng: &mut SplitMix64) -> wire::DeltaFrame {
    wire::DeltaFrame {
        version: rng.next_u64() >> 8,
        digest: rng.next_u64(),
        sealed_at_micros: rng.next_u64() >> 16,
        delta: rand_delta(rng),
    }
}

#[test]
fn delta_frames_round_trip_the_wire_bit_for_bit() {
    let mut rng = SplitMix64::seed_from_u64(0xD714);
    for _ in 0..300 {
        let frame = rand_delta_frame(&mut rng);
        let encoded = wire::encode_delta_frame(&frame);
        let decoded = wire::decode_delta_frame(&encoded).expect("round-trip decodes");
        // `PartialEq` covers every field — in particular the digest, so
        // a replica's pre-publish digest check sees exactly what the
        // primary computed.
        assert_eq!(decoded, frame);
    }
}

#[test]
fn snapshot_frames_round_trip_the_wire_bit_for_bit() {
    let mut rng = SplitMix64::seed_from_u64(0x5A9);
    for _ in 0..100 {
        let mut tables: Vec<(String, Vec<Tuple>)> = (0..rng.gen_range_usize(0, 5))
            .map(|i| {
                let rows = (0..rng.gen_range_usize(0, 6))
                    .map(|_| rand_tuple(&mut rng))
                    .collect();
                (format!("T{i}"), rows)
            })
            .collect();
        tables.sort_by(|a, b| a.0.cmp(&b.0));
        let frame = wire::SnapshotFrame {
            version: rng.next_u64() >> 8,
            digest: rng.next_u64(),
            sealed_at_micros: rng.next_u64() >> 16,
            tables,
        };
        let encoded = wire::encode_snapshot_frame(&frame);
        assert_eq!(
            wire::decode_snapshot_frame(&encoded).expect("round-trip decodes"),
            frame
        );
    }
}

#[test]
fn corrupt_and_truncated_payloads_decode_to_errors_never_panics() {
    let mut rng = SplitMix64::seed_from_u64(0xBAD);
    let frame = rand_delta_frame(&mut rng);
    let encoded = wire::encode_delta_frame(&frame);
    // Every truncation point must yield a clean error.
    for cut in 0..encoded.len() {
        assert!(
            wire::decode_delta_frame(&encoded[..cut]).is_err(),
            "truncation at {cut} of {} decoded",
            encoded.len()
        );
    }
    // Random single-byte corruption must never panic; when it still
    // decodes, the digest field keeps end-to-end integrity checkable.
    for _ in 0..500 {
        let mut bytes = encoded.clone();
        let at = rng.gen_range_usize(0, bytes.len());
        bytes[at] ^= (rng.next_u64() % 255) as u8 + 1;
        let _ = wire::decode_delta_frame(&bytes);
    }
    // Arbitrary garbage too.
    for _ in 0..200 {
        let len = rng.gen_range_usize(0, 96);
        let garbage: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let _ = wire::decode_delta_frame(&garbage);
        let _ = wire::decode_snapshot_frame(&garbage);
    }
}

// ---------------------------------------------------------------------------
// Replica apply-path rejection properties
// ---------------------------------------------------------------------------

#[test]
fn gapped_and_stale_frames_never_mutate_a_replica() {
    let mut rng = SplitMix64::seed_from_u64(0x6A9);
    let replica = example_core();
    let local = replica.version();
    let digest_before = replica.graph_digest();
    for _ in 0..100 {
        // Any version except local + 1 must be refused: at or below is
        // a stale re-delivery, beyond is a gap demanding a resubscribe.
        let version = loop {
            let v = rng.next_u64() >> 32;
            if v != local + 1 {
                break v;
            }
        };
        let frame = wire::DeltaFrame {
            version,
            digest: 0,
            sealed_at_micros: 0,
            delta: rand_delta(&mut rng),
        };
        match replica.apply_repl_delta_frame(&frame).expect("apply runs") {
            ReplApplyOutcome::Stale { .. } => assert!(version <= local, "v{version} vs {local}"),
            ReplApplyOutcome::Gap { .. } => assert!(version > local + 1, "v{version} vs {local}"),
            other => panic!("frame v{version} against local v{local} yielded {other:?}"),
        }
        assert_eq!(replica.version(), local, "rejected frame moved the version");
        assert_eq!(
            replica.graph_digest(),
            digest_before,
            "rejected frame mutated state"
        );
    }
}

#[test]
fn a_digest_mismatch_is_discarded_before_publish_and_a_snapshot_recovers() {
    let replica = example_core();
    let local = replica.version();
    let digest_before = replica.graph_digest();

    // A frame that chains correctly but claims a digest the replay
    // cannot reproduce: the replica must refuse to publish it.
    let frame = wire::DeltaFrame {
        version: local + 1,
        digest: digest_before ^ 0xDEAD_BEEF,
        sealed_at_micros: 0,
        delta: GraphDelta::default(),
    };
    match replica.apply_repl_delta_frame(&frame).expect("apply runs") {
        ReplApplyOutcome::DigestMismatch { version, .. } => assert_eq!(version, local + 1),
        other => panic!("expected a digest mismatch, got {other:?}"),
    }
    assert_eq!(replica.version(), local, "corrupt state was published");
    assert_eq!(replica.graph_digest(), digest_before);

    // Snapshot fallback: capture a real snapshot stream from a primary
    // that has moved on, install it, and converge.
    let primary = example_core();
    primary.delete("C", &tup![2, "cn2"]).expect("delete");
    primary.delete("N", &tup![1, "cn1"]).expect("delete");
    let (tx, rx) = mpsc::channel::<(ReplFrameKind, Vec<u8>)>();
    primary.repl_subscribe_sink(
        0,
        true,
        Box::new(move |kind, payload| tx.send((kind, payload.to_vec())).is_ok()),
    );
    let (kind, payload) = rx.recv().expect("catch-up frame");
    assert_eq!(
        kind,
        ReplFrameKind::Snapshot,
        "forced catch-up must snapshot"
    );
    let snapshot = wire::decode_snapshot_frame(&payload).expect("snapshot decodes");
    replica
        .install_repl_snapshot_frame(&snapshot)
        .expect("snapshot installs");
    assert_eq!(replica.version(), primary.version());
    assert_eq!(replica.graph_digest(), primary.graph_digest());
}

// ---------------------------------------------------------------------------
// End-to-end broken-chain recovery over TCP
// ---------------------------------------------------------------------------

#[test]
fn mid_stream_chain_rotation_forces_a_counted_snapshot_recovery() {
    let primary = example_core();
    let server = serve(Arc::clone(&primary), "127.0.0.1:0", 2).expect("serve primary");
    let replica = example_core();
    let handle = start_replica(Arc::clone(&replica), server.addr(), quick_cfg());

    // Healthy streaming first.
    primary.delete("C", &tup![2, "cn2"]).expect("delete");
    assert!(wait_for_version(
        &replica,
        primary.version(),
        Duration::from_secs(10)
    ));
    assert_eq!(replica.stats().repl_snapshots_installed, 0);

    // Break the chain mid-stream: the rotation resets the primary's
    // delta log, so the replica's next catch-up cannot be bridged by
    // deltas and must take the snapshot path — counted on both ends.
    let rotated = primary.rotate_delta_chain().expect("rotate");
    assert!(
        wait_for_version(&replica, rotated, Duration::from_secs(10)),
        "replica never recovered from the rotation"
    );
    assert!(replica.stats().repl_snapshots_installed >= 1);
    assert!(primary.stats().repl_snapshots_streamed >= 1);
    assert_eq!(replica.graph_digest(), primary.graph_digest());

    // And the stream keeps flowing incrementally afterwards.
    let deltas_before = replica.stats().repl_deltas_applied;
    primary.delete("N", &tup![1, "cn1"]).expect("delete");
    assert!(wait_for_version(
        &replica,
        primary.version(),
        Duration::from_secs(10)
    ));
    assert!(replica.stats().repl_deltas_applied > deltas_before);
    assert_eq!(replica.graph_digest(), primary.graph_digest());

    handle.stop();
    server.shutdown();
}

#[test]
fn a_late_joiner_past_log_retention_recovers_over_a_snapshot() {
    let mut sys = example_2_1().expect("example system");
    sys.set_delta_log_capacity(2);
    let primary = Arc::new(ServiceCore::new(sys, EngineOptions::default()));
    let server = serve(Arc::clone(&primary), "127.0.0.1:0", 2).expect("serve primary");

    // Out-run the retention window before anyone subscribes.
    primary.delete("C", &tup![2, "cn2"]).expect("delete");
    primary.delete("N", &tup![1, "cn1"]).expect("delete");
    primary.delete("A", &tup![1]).expect("delete");
    primary.delete("A", &tup![2]).expect("delete");

    let replica = example_core();
    let handle = start_replica(Arc::clone(&replica), server.addr(), quick_cfg());
    assert!(
        wait_for_version(&replica, primary.version(), Duration::from_secs(10)),
        "late joiner never converged"
    );
    assert!(
        replica.stats().repl_snapshots_installed >= 1,
        "a joiner past retention must recover over a snapshot"
    );
    assert!(primary.stats().repl_snapshots_streamed >= 1);
    assert_eq!(replica.graph_digest(), primary.graph_digest());

    handle.stop();
    server.shutdown();
}
