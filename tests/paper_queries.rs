//! Integration: the paper's use-case queries Q1–Q10 over the running
//! example, checked for cross-strategy agreement where both strategies
//! apply.

use proql::engine::{Engine, Strategy};
use proql_common::tup;
use proql_provgraph::system::example_2_1;
use proql_semiring::{Annotation, SecurityLevel};

fn engine(strategy: Strategy) -> Engine {
    let mut e = Engine::new(example_2_1().expect("example builds"));
    e.options.strategy = strategy;
    e
}

#[test]
fn q1_projection_of_all_derivations() {
    for strategy in [Strategy::Unfold, Strategy::Graph] {
        let out = engine(strategy)
            .query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap();
        assert_eq!(out.projection.bindings.len(), 4, "{strategy:?}");
        assert!(out.projection.derivation_count() >= 8, "{strategy:?}");
    }
}

#[test]
fn q2_paths_involving_relation_a() {
    let out = engine(Strategy::Unfold)
        .query("FOR [O $x] <-+ [A $y] INCLUDE PATH [$x] <-+ [$y] RETURN $x, $y")
        .unwrap();
    assert!(!out.projection.bindings.is_empty());
    for b in &out.projection.bindings {
        assert_eq!(b["y"].0, "A");
        assert_eq!(b["x"].0, "O");
    }
}

#[test]
fn q3_derivations_through_m1_or_m2() {
    let out = engine(Strategy::Unfold)
        .query(
            "FOR [$x] <$p [], [$y] <- [$x]
             WHERE $p = m1 OR $p = m2
             INCLUDE PATH [$y] <- [$x]
             RETURN $y",
        )
        .unwrap();
    assert!(!out.projection.bindings.is_empty());
}

#[test]
fn q4_common_provenance() {
    let out = engine(Strategy::Unfold)
        .query(
            "FOR [O $x] <-+ [$z], [C $y] <-+ [$z]
             INCLUDE PATH [$x] <-+ [], [$y] <-+ []
             RETURN $x, $y",
        )
        .unwrap();
    assert!(!out.projection.bindings.is_empty());
}

#[test]
fn q5_q6_derivability_and_lineage() {
    for strategy in [Strategy::Unfold, Strategy::Graph] {
        let e = engine(strategy);
        let d = e
            .query("EVALUATE DERIVABILITY OF { FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x }")
            .unwrap()
            .annotated
            .unwrap();
        assert!(d
            .rows
            .iter()
            .all(|r| r.annotation == Annotation::Bool(true)));
        let l = e
            .query("EVALUATE LINEAGE OF { FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x }")
            .unwrap()
            .annotated
            .unwrap();
        let cn2 = l.annotation_of("O", &tup!["cn2"]).unwrap();
        assert!(cn2.as_lineage().unwrap().contains("A(2)"), "{strategy:?}");
    }
}

#[test]
fn q7_trust_cross_strategy_agreement() {
    let q = "EVALUATE TRUST OF {
               FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
             } ASSIGNING EACH leaf_node $y {
               CASE $y in C : SET true
               CASE $y in A AND $y.len >= 6 : SET false
               DEFAULT : SET true
             } ASSIGNING EACH mapping $p($z) {
               CASE $p = m4 : SET false
               DEFAULT : SET $z
             }";
    let a = engine(Strategy::Unfold)
        .query(q)
        .unwrap()
        .annotated
        .unwrap();
    let b = engine(Strategy::Graph).query(q).unwrap().annotated.unwrap();
    for row in &a.rows {
        assert_eq!(
            Some(&row.annotation),
            b.annotation_of(&row.relation, &row.key),
            "strategies disagree on {}{}",
            row.relation,
            row.key
        );
    }
}

#[test]
fn q8_weight_ranking() {
    let out = engine(Strategy::Graph)
        .query(
            "EVALUATE WEIGHT OF {
               FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
             } ASSIGNING EACH leaf_node $y {
               CASE $y in A : SET 10
               DEFAULT : SET 1
             }",
        )
        .unwrap()
        .annotated
        .unwrap();
    assert_eq!(
        out.annotation_of("O", &tup!["sn2"]),
        Some(&Annotation::Weight(10.0))
    );
    assert_eq!(
        out.annotation_of("O", &tup!["cn2"]),
        Some(&Annotation::Weight(11.0))
    );
}

#[test]
fn q9_probability_events() {
    let out = engine(Strategy::Graph)
        .query(
            "EVALUATE PROBABILITY OF {
               FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
             } ASSIGNING EACH leaf_node $y { DEFAULT : SET 0.5 }",
        )
        .unwrap()
        .annotated
        .unwrap();
    let ev = out
        .annotation_of("O", &tup!["cn2"])
        .unwrap()
        .as_event()
        .unwrap();
    let p = proql_semiring::event_probability(ev, &|_| 0.5).unwrap();
    assert!((p - 0.25).abs() < 1e-9);
}

#[test]
fn q10_confidentiality_levels() {
    let out = engine(Strategy::Graph)
        .query(
            "EVALUATE CONFIDENTIALITY OF {
               FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
             } ASSIGNING EACH leaf_node $y {
               CASE $y in A : SET topsecret
               DEFAULT : SET public
             }",
        )
        .unwrap()
        .annotated
        .unwrap();
    for row in &out.rows {
        assert_eq!(row.annotation, Annotation::Level(SecurityLevel::TopSecret));
    }
}
