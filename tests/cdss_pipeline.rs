//! Integration: the full CDSS pipeline — topology building, exchange,
//! querying with and without ASRs, and incremental deletion.

use proql::engine::{Engine, EngineOptions, Strategy};
use proql_asr::{advise, AsrKind, AsrRegistry};
use proql_cdss::topology::{build_system, target_query, CdssConfig, Topology};
use proql_cdss::{delete_local, remains_derivable};
use proql_common::tup;
use std::sync::Arc;

#[test]
fn chain_pipeline_with_all_asr_kinds() {
    let sys = build_system(Topology::Chain, &CdssConfig::upstream_data(6, 2, 50)).unwrap();
    let mut plain = Engine::new(sys.clone());
    plain.options.strategy = Strategy::Unfold;
    let baseline = plain.query(target_query()).unwrap();
    assert_eq!(baseline.projection.bindings.len(), 50);

    for kind in [
        AsrKind::Complete,
        AsrKind::Subpath,
        AsrKind::Prefix,
        AsrKind::Suffix,
    ] {
        let mut sys2 = sys.clone();
        let mut reg = AsrRegistry::new();
        for def in advise(&sys2, "R0a", 3, kind) {
            reg.build(&mut sys2, def).unwrap();
        }
        let mut opts = EngineOptions {
            strategy: Strategy::Unfold,
            ..Default::default()
        };
        opts.rewriter = Some(Arc::new(reg));
        let e = Engine::with_options(sys2, opts);
        let out = e.query(target_query()).unwrap();
        assert_eq!(
            out.projection.bindings, baseline.projection.bindings,
            "{kind:?} changed the result"
        );
        assert!(
            out.stats.total_joins <= baseline.stats.total_joins,
            "{kind:?} did not reduce joins"
        );
    }
}

#[test]
fn branched_pipeline_annotations() {
    let sys = build_system(
        Topology::Branched,
        &CdssConfig::new(7, vec![3, 4, 5, 6], 20),
    )
    .unwrap();
    let mut e = Engine::new(sys);
    e.options.strategy = Strategy::Unfold;
    // Every target tuple has two derivation branches: count them.
    let out = e
        .query("EVALUATE COUNT OF { FOR [R0a $x] INCLUDE PATH [$x] <-+ [] RETURN $x }")
        .unwrap()
        .annotated
        .unwrap();
    for row in &out.rows {
        let n = row.annotation.as_count().unwrap();
        assert!(n >= 2, "tuple {} has {} derivations", row.key, n);
    }
}

#[test]
fn exchange_then_delete_then_requery() {
    let mut sys = build_system(Topology::Chain, &CdssConfig::new(4, vec![3], 10)).unwrap();
    assert!(remains_derivable(&sys, "R0a", &tup![3]).unwrap());
    delete_local(&mut sys, "R3a", &tup![3]).unwrap();
    assert!(!remains_derivable(&sys, "R0a", &tup![3]).unwrap());
    let mut e = Engine::new(sys);
    e.options.strategy = Strategy::Unfold;
    let out = e.query(target_query()).unwrap();
    assert_eq!(out.projection.bindings.len(), 9);
}

#[test]
fn unfold_and_graph_strategies_agree_on_acyclic_cdss() {
    let sys = build_system(Topology::Chain, &CdssConfig::upstream_data(5, 2, 25)).unwrap();
    let mut a = Engine::new(sys.clone());
    a.options.strategy = Strategy::Unfold;
    let mut b = Engine::new(sys);
    b.options.strategy = Strategy::Graph;
    let ra = a.query(target_query()).unwrap();
    let rb = b.query(target_query()).unwrap();
    assert_eq!(ra.projection.bindings, rb.projection.bindings);
    assert_eq!(ra.projection.derivations, rb.projection.derivations);
}
