//! Executor-equivalence properties: the columnar batch pipeline, the row
//! hash-join executor, and the nested-loop ablation baseline must produce
//! identical query results on randomized provenance instances — and the
//! grouped-aggregation annotation path must agree with the direct semiring
//! graph walk (including under input permutations, i.e. the ⊕ laws hold
//! through the aggregation operator).

use proql::agg_eval::evaluate_via_aggregation;
use proql::engine::{Engine, EngineOptions, Strategy};
use proql::translate::{translate, TranslateOptions};
use proql::{parse_query, run_projection_opts, run_projection_with};
use proql_cdss::topology::{build_system, target_query, CdssConfig, Topology};
use proql_common::rng::SplitMix64;
use proql_common::{tup, Parallelism};
use proql_provgraph::{ProvGraph, TupleNode};
use proql_semiring::{evaluate, Annotation, Assignment, MapFn, SemiringKind};
use proql_storage::batch::{Column, RecordBatch};
use proql_storage::batch_exec::batch_aggregate;
use proql_storage::{AggFunc, Aggregate, ExecMode};

/// The parallelism settings every sweep covers: serial, under-subscribed,
/// over-subscribed, and hardware-sized.
const PAR_SWEEP: [Parallelism; 4] = [
    Parallelism::Serial,
    Parallelism::Threads(2),
    Parallelism::Threads(8),
    Parallelism::Auto,
];

/// Random CDSS instances: all three executors — under every parallelism
/// setting — agree on the projection result (derivations, bindings, and
/// row counts).
#[test]
fn executors_agree_on_randomized_cdss_instances() {
    let mut rng = SplitMix64::seed_from_u64(0xE0E0);
    for case in 0..6 {
        let peers = rng.gen_range_usize(3, 6);
        let base = rng.gen_range_usize(5, 40);
        let (topo, cfg) = if rng.gen_range_usize(0, 2) == 0 {
            (Topology::Chain, CdssConfig::upstream_data(peers, 2, base))
        } else {
            (
                Topology::Branched,
                CdssConfig::new(peers.max(4), vec![peers.max(4) - 1, peers.max(4) - 2], base),
            )
        };
        let sys = build_system(topo, &cfg).unwrap();
        let q = parse_query(target_query()).unwrap();
        let t = translate(&sys, &q, None, &TranslateOptions::default()).unwrap();
        let batch = run_projection_with(&sys, &t, ExecMode::Batch).unwrap();
        let row = run_projection_with(&sys, &t, ExecMode::Row).unwrap();
        let nested = run_projection_with(&sys, &t, ExecMode::NestedLoop).unwrap();
        assert_eq!(
            batch.bindings, row.bindings,
            "case {case}: bindings (batch vs row)"
        );
        assert_eq!(
            batch.bindings, nested.bindings,
            "case {case}: bindings (batch vs nl)"
        );
        assert_eq!(
            batch.derivations, row.derivations,
            "case {case}: derivations (batch vs row)"
        );
        assert_eq!(
            batch.derivations, nested.derivations,
            "case {case}: derivations (batch vs nl)"
        );
        assert_eq!(
            batch.metrics.rows, row.metrics.rows,
            "case {case}: row counts"
        );
        // Parallel runs must be bit-identical to the serial batch run —
        // derivations, bindings, and metrics included.
        for par in PAR_SWEEP {
            for mode in [ExecMode::Batch, ExecMode::Row] {
                let p = run_projection_opts(&sys, &t, mode, par).unwrap();
                assert_eq!(
                    batch.bindings, p.bindings,
                    "case {case}: bindings under {par:?}/{mode:?}"
                );
                assert_eq!(
                    batch.derivations, p.derivations,
                    "case {case}: derivations under {par:?}/{mode:?}"
                );
                assert_eq!(
                    batch.metrics.rows, p.metrics.rows,
                    "case {case}: row counts under {par:?}/{mode:?}"
                );
            }
        }
    }
}

/// End-to-end through the engine: every exec mode and both strategies give
/// the same annotations on the paper's running example.
#[test]
fn engine_modes_agree_on_annotated_query() {
    let q = "EVALUATE TRUST OF {
               FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
             } ASSIGNING EACH leaf_node $y {
               CASE $y in A AND $y.len >= 6 : SET false
               DEFAULT : SET true
             } ASSIGNING EACH mapping $p($z) {
               CASE $p = m4 : SET false
               DEFAULT : SET $z
             }";
    let mut expected: Option<Vec<(String, proql_common::Tuple, Annotation)>> = None;
    for mode in [ExecMode::Batch, ExecMode::Row, ExecMode::NestedLoop] {
        for par in PAR_SWEEP {
            let mut e = Engine::new(proql_provgraph::system::example_2_1().unwrap());
            e.options.strategy = Strategy::Unfold;
            e.options.exec_mode = mode;
            e.options.parallelism = par;
            let out = e.query(q).unwrap();
            let mut rows: Vec<_> = out
                .annotated
                .unwrap()
                .rows
                .into_iter()
                .map(|r| (r.relation, r.key, r.annotation))
                .collect();
            rows.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
            match &expected {
                None => expected = Some(rows),
                Some(want) => assert_eq!(want, &rows, "mode {mode:?} par {par:?} diverged"),
            }
        }
    }
}

/// Random acyclic DAG whose shape exercises shared subtrees and multiple
/// alternative derivations.
fn random_dag(rng: &mut SplitMix64) -> ProvGraph {
    let mut g = ProvGraph::new();
    let mut prev: Vec<proql_common::TupleId> = (0..3)
        .map(|i| {
            let t = g.add_tuple("L0", tup![i as i64], None);
            g.add_derivation("base", tup![i as i64], vec![], vec![t], true);
            t
        })
        .collect();
    let mut key = 100i64;
    for layer in 1..rng.gen_range_usize(2, 5) {
        let mut nodes = Vec::new();
        for _ in 0..rng.gen_range_usize(2, 6) {
            let t = g.add_tuple(&format!("L{layer}"), tup![key], None);
            key += 1;
            for d in 0..rng.gen_range_usize(1, 3) {
                let nsrc = rng.gen_range_usize(1, prev.len() + 1);
                let start = rng.gen_range_usize(0, prev.len());
                let sources: Vec<_> = (0..nsrc).map(|s| prev[(start + s) % prev.len()]).collect();
                g.add_derivation(
                    &format!("m{layer}"),
                    tup![key, d as i64],
                    sources,
                    vec![t],
                    false,
                );
            }
            nodes.push(t);
        }
        prev = nodes;
    }
    g
}

/// The grouped-aggregation annotation path equals the direct graph walk on
/// random DAGs for every scalar-encodable semiring.
#[test]
fn aggregation_path_matches_graph_walk_on_random_dags() {
    let mut rng = SplitMix64::seed_from_u64(0xA66);
    for case in 0..12 {
        let g = random_dag(&mut rng);
        let weight_seed = rng.gen_range_i64(1, 9) as f64;
        for kind in [
            SemiringKind::Derivability,
            SemiringKind::Trust,
            SemiringKind::Weight,
            SemiringKind::Confidentiality,
            SemiringKind::Counting,
        ] {
            let leaf = move |node: &TupleNode, label: &str| match kind {
                SemiringKind::Weight => {
                    Annotation::Weight(weight_seed + node.key.get(0).as_int().unwrap_or(0) as f64)
                }
                _ => kind.default_leaf(label),
            };
            let map_fn = |_: &str| MapFn::Identity;
            let direct = evaluate(
                &g,
                &Assignment::default_for(kind)
                    .with_leaf(leaf)
                    .with_map_fn(map_fn),
            )
            .unwrap();
            for par in PAR_SWEEP {
                let via_agg = evaluate_via_aggregation(&g, kind, &leaf, &map_fn, par)
                    .unwrap()
                    .expect("acyclic scalar semiring");
                assert_eq!(via_agg.len(), direct.len());
                for (t, v) in &direct {
                    assert_eq!(via_agg.get(t), Some(v), "case {case}: {kind} ({par:?})");
                }
            }
        }
    }
}

/// ⊕-laws through the aggregation operator: grouped semiring sums are
/// invariant under permutations of the input rows (associativity +
/// commutativity) and match a pairwise left fold.
#[test]
fn aggregation_operator_respects_semiring_sum_laws() {
    let mut rng = SplitMix64::seed_from_u64(0x5E417);
    type AggCtor = fn(usize) -> AggFunc;
    let cases: [(SemiringKind, AggCtor); 3] = [
        (SemiringKind::Counting, AggFunc::Sum),
        (SemiringKind::Weight, AggFunc::Min),
        (SemiringKind::Derivability, AggFunc::BoolOr),
    ];
    for (kind, agg) in cases {
        for case in 0..8 {
            let n = rng.gen_range_usize(1, 30);
            let groups: Vec<i64> = (0..n).map(|_| rng.gen_range_i64(0, 4)).collect();
            let (vals, anns): (Vec<proql_common::Value>, Vec<Annotation>) = (0..n)
                .map(|_| match kind {
                    SemiringKind::Counting => {
                        let v = rng.gen_range_i64(0, 9);
                        (proql_common::Value::Int(v), Annotation::Count(v as u64))
                    }
                    SemiringKind::Weight => {
                        let v = rng.gen_range_i64(0, 9) as f64;
                        (proql_common::Value::Float(v), Annotation::Weight(v))
                    }
                    _ => {
                        let v = rng.gen_range_usize(0, 2) == 1;
                        (proql_common::Value::Bool(v), Annotation::Bool(v))
                    }
                })
                .unzip();
            // Pairwise ⊕-fold per group (reference semantics).
            let mut reference: std::collections::BTreeMap<i64, Annotation> = Default::default();
            for (g, a) in groups.iter().zip(&anns) {
                let acc = reference.entry(*g).or_insert_with(|| kind.zero());
                *acc = kind.plus(acc, a).unwrap();
            }
            // Aggregate the rows, then a random permutation of the rows.
            let run = |perm: &[usize]| {
                let batch = RecordBatch::new(
                    vec!["g".into(), "v".into()],
                    vec![
                        Column::Int(perm.iter().map(|&i| groups[i]).collect()),
                        Column::from_value_vec(perm.iter().map(|&i| vals[i].clone()).collect()),
                    ],
                    perm.len(),
                );
                let out =
                    batch_aggregate(&batch, &[0], &[Aggregate::new(agg(1), "s")], None).unwrap();
                let mut m: std::collections::BTreeMap<i64, proql_common::Value> =
                    Default::default();
                for row in 0..out.len() {
                    m.insert(
                        out.columns[0].value(row).as_int().unwrap(),
                        out.columns[1].value(row),
                    );
                }
                m
            };
            let id: Vec<usize> = (0..n).collect();
            let mut shuffled = id.clone();
            for i in (1..shuffled.len()).rev() {
                shuffled.swap(i, rng.gen_range_usize(0, i + 1));
            }
            let plain = run(&id);
            let permuted = run(&shuffled);
            assert_eq!(
                plain, permuted,
                "case {case}: {kind} not permutation-invariant"
            );
            // And the operator's sums equal the pairwise semiring fold.
            for (g, ann) in &reference {
                let got = &plain[g];
                let want = match ann {
                    Annotation::Count(c) => proql_common::Value::Int(*c as i64),
                    Annotation::Weight(w) => proql_common::Value::Float(*w),
                    Annotation::Bool(b) => proql_common::Value::Bool(*b),
                    other => panic!("unexpected annotation {other:?}"),
                };
                assert_eq!(got, &want, "case {case}: {kind} group {g}");
            }
        }
    }
}

/// The batch path and the legacy row path agree on ASR-rewritten queries
/// too (the rewriter changes rule bodies, not results).
#[test]
fn batch_executor_agrees_with_asr_rewriting() {
    use proql_asr::{advise, AsrKind, AsrRegistry};
    use std::sync::Arc;
    let sys = build_system(Topology::Chain, &CdssConfig::upstream_data(5, 2, 20)).unwrap();
    let mut baseline = Engine::new(sys.clone());
    baseline.options.strategy = Strategy::Unfold;
    let want = baseline.query(target_query()).unwrap();
    let mut sys2 = sys.clone();
    let mut reg = AsrRegistry::new();
    for def in advise(&sys2, "R0a", 3, AsrKind::Complete) {
        reg.build(&mut sys2, def).unwrap();
    }
    for mode in [ExecMode::Batch, ExecMode::Row, ExecMode::NestedLoop] {
        let opts = EngineOptions {
            strategy: Strategy::Unfold,
            exec_mode: mode,
            rewriter: Some(Arc::new(reg.clone())),
            ..Default::default()
        };
        let e = Engine::with_options(sys2.clone(), opts);
        let out = e.query(target_query()).unwrap();
        assert_eq!(
            out.projection.bindings, want.projection.bindings,
            "mode {mode:?} with ASRs changed the result"
        );
    }
}
