//! PRNG-driven property suite for the cost-based optimizer.
//!
//! The contract under test: **no optimizer pass — and no combination of
//! passes — ever changes query results.** Random databases (skewed key
//! distributions, random secondary indexes, NULLs) and random plans
//! (join chains with every key topology the rule compiler emits, filters
//! above and below joins, aggregates) are executed unoptimized as the
//! oracle, then under every pass configuration × executor × parallelism
//! setting; the result multiset and the output schema must match
//! exactly. The sweep also checks that the join-reordering pass actually
//! fires (at least one plan in the run is restructured) so the property
//! is not vacuously true.

use proql_common::rng::SplitMix64;
use proql_common::{tup, Parallelism, Schema, Tuple, Value, ValueType};
use proql_storage::optimize::{
    optimize, optimize_with, optimize_with_config, OptimizerConfig, Pass,
};
use proql_storage::{execute, execute_with_opts, Database, ExecMode, Expr, IndexKind, Plan};

/// Random 2-column int table with skewed second column.
fn random_db(rng: &mut SplitMix64) -> Database {
    let mut db = Database::new();
    for (name, key_range, val_range) in
        [("R", 40i64, 6i64), ("S", 40, 10), ("T", 12, 6), ("U", 6, 4)]
    {
        db.create_table(
            Schema::build(name, &[("a", ValueType::Int), ("b", ValueType::Int)], &[]).unwrap(),
        )
        .unwrap();
        let rows = rng.gen_range_usize(0, 50);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..rows {
            let a = rng.gen_range_i64(0, key_range);
            // Occasional NULLs exercise the join/filter NULL semantics.
            let b = if rng.gen_range_usize(0, 20) == 0 {
                Value::Null
            } else {
                Value::Int(rng.gen_range_i64(0, val_range))
            };
            if seen.insert((a, format!("{b:?}"))) {
                db.table_mut(name)
                    .unwrap()
                    .insert(Tuple::new(vec![Value::Int(a), b]))
                    .unwrap();
            }
        }
        if rng.gen_range_usize(0, 2) == 0 {
            let col = rng.gen_range_usize(0, 2);
            let kind = if rng.gen_range_usize(0, 2) == 0 {
                IndexKind::Hash
            } else {
                IndexKind::BTree
            };
            db.table_mut(name)
                .unwrap()
                .create_index("ix", vec![col], kind)
                .unwrap();
        }
    }
    db
}

/// A random join chain over 2–4 of the tables, with filters sprinkled
/// below and above the joins and an optional aggregate on top.
fn random_plan(rng: &mut SplitMix64) -> Plan {
    let names = ["R", "S", "T", "U"];
    let n = rng.gen_range_usize(2, 5);
    let leaf = |rng: &mut SplitMix64, i: usize| -> Plan {
        let mut p = Plan::scan(names[i % names.len()]);
        if rng.gen_range_usize(0, 3) == 0 {
            let col = rng.gen_range_usize(0, 2);
            let lit = rng.gen_range_i64(0, 8);
            p = p.filter(Expr::col(col).eq(Expr::lit(lit)));
        }
        p
    };
    let mut plan = leaf(rng, 0);
    let mut arity = 2;
    for i in 1..n {
        let next = leaf(rng, i);
        // Join on a random accumulated column vs a random leaf column;
        // sometimes keyless (cross product), sometimes two keys.
        let keys = rng.gen_range_usize(0, 5);
        let (acc_keys, leaf_keys) = match keys {
            0 => (vec![], vec![]),
            4 => (
                vec![rng.gen_range_usize(0, arity), rng.gen_range_usize(0, arity)],
                vec![0, 1],
            ),
            _ => (
                vec![rng.gen_range_usize(0, arity)],
                vec![rng.gen_range_usize(0, 2)],
            ),
        };
        // Grow left-deep or right-deep: right-deep/bushy shapes exercise
        // the reorder pass's flatten + bail-out rebuild paths, where
        // join-name disambiguation is order-sensitive.
        if rng.gen_range_usize(0, 3) == 0 {
            plan = next.join(plan, leaf_keys, acc_keys);
        } else {
            plan = plan.join(next, acc_keys, leaf_keys);
        }
        arity += 2;
    }
    if rng.gen_range_usize(0, 3) == 0 {
        let col = rng.gen_range_usize(0, arity);
        let op = match rng.gen_range_usize(0, 3) {
            0 => proql_storage::BinOp::Le,
            1 => proql_storage::BinOp::Gt,
            _ => proql_storage::BinOp::Ne,
        };
        plan = plan.filter(Expr::cmp(
            op,
            Expr::col(col),
            Expr::lit(rng.gen_range_i64(0, 6)),
        ));
    }
    if rng.gen_range_usize(0, 4) == 0 {
        plan = Plan::Aggregate {
            input: Box::new(plan),
            group_by: vec![rng.gen_range_usize(0, arity)],
            aggs: vec![
                proql_storage::Aggregate::new(proql_storage::AggFunc::Count, "n"),
                proql_storage::Aggregate::new(
                    proql_storage::AggFunc::Sum(rng.gen_range_usize(0, arity)),
                    "s",
                ),
            ],
            having: None,
        };
    }
    plan
}

#[test]
fn no_pass_configuration_ever_changes_results() {
    let mut rng = SplitMix64::seed_from_u64(0x0071_817E_5EED);
    let configs = [
        OptimizerConfig::default(),
        OptimizerConfig::without(Pass::ReorderJoins),
        OptimizerConfig::without(Pass::PushFilters),
        OptimizerConfig::without(Pass::IndexScans),
        OptimizerConfig::without(Pass::PickBuildSides),
        OptimizerConfig {
            passes: vec![Pass::ReorderJoins],
        },
        OptimizerConfig {
            passes: vec![Pass::ReorderJoins, Pass::ReorderJoins],
        },
    ];
    let mut reordered_plans = 0usize;
    for round in 0..40 {
        let db = random_db(&mut rng);
        let plan = random_plan(&mut rng);
        // Oracle: the unoptimized plan under the row executor.
        let want = match execute(&db, &plan) {
            Ok(rel) => rel,
            // Randomized plans may be malformed (e.g. key vs arity);
            // every optimized variant must then fail too, not panic.
            Err(_) => {
                for cfg in &configs {
                    let opt = optimize_with_config(&db, plan.clone(), cfg);
                    assert!(
                        execute(&db, &opt).is_err(),
                        "round {round}: optimizer resurrected a failing plan"
                    );
                }
                continue;
            }
        };
        let catalog_free = optimize(plan.clone());
        assert_eq!(
            execute(&db, &catalog_free).unwrap().sorted_rows(),
            want.sorted_rows(),
            "round {round}: catalog-free optimize changed results"
        );
        for cfg in &configs {
            let opt = optimize_with_config(&db, plan.clone(), cfg);
            if opt.count_joins() > 0 && format!("{opt:?}") != format!("{:?}", plan) {
                reordered_plans += 1;
            }
            for mode in [ExecMode::Batch, ExecMode::Row, ExecMode::NestedLoop] {
                for par in [Parallelism::Serial, Parallelism::Threads(4)] {
                    let got = execute_with_opts(&db, &opt, mode, par).unwrap_or_else(|e| {
                        panic!("round {round} cfg {cfg:?} mode {mode:?} par {par:?}: {e}")
                    });
                    assert_eq!(
                        got.names, want.names,
                        "round {round} cfg {cfg:?} mode {mode:?}: schema changed"
                    );
                    assert_eq!(
                        got.sorted_rows(),
                        want.sorted_rows(),
                        "round {round} cfg {cfg:?} mode {mode:?} par {par:?}: rows changed"
                    );
                }
            }
        }
    }
    assert!(
        reordered_plans > 0,
        "the sweep never restructured a plan — the property is vacuous"
    );
}

#[test]
fn full_pipeline_equals_unoptimized_on_fk_shaped_chains() {
    // Deterministic FK-shaped 3-way chains (the shape rule compilation
    // emits) across every join-order choice the greedy can make.
    let mut db = Database::new();
    for name in ["P1", "P2", "P3"] {
        db.create_table(
            Schema::build(name, &[("x", ValueType::Int), ("y", ValueType::Int)], &[]).unwrap(),
        )
        .unwrap();
    }
    for i in 0..30 {
        db.insert("P1", tup![i, i % 5]).unwrap();
        db.insert("P2", tup![i % 5, i % 3]).unwrap();
    }
    for i in 0..3 {
        db.insert("P3", tup![i, i]).unwrap();
    }
    for (f1, f2) in [(0, 0), (2, 1), (4, 2)] {
        let plan = Plan::scan("P1")
            .join(Plan::scan("P2"), vec![1], vec![0])
            .join(
                Plan::scan("P3").filter(Expr::col(0).eq(Expr::lit(f1))),
                vec![3],
                vec![0],
            )
            .filter(Expr::cmp(
                proql_storage::BinOp::Ge,
                Expr::col(0),
                Expr::lit(f2),
            ));
        let want = execute(&db, &plan).unwrap();
        let opt = optimize_with(&db, plan);
        for mode in [ExecMode::Batch, ExecMode::Row, ExecMode::NestedLoop] {
            for par in [Parallelism::Serial, Parallelism::Threads(4)] {
                let got = execute_with_opts(&db, &opt, mode, par).unwrap();
                assert_eq!(got.names, want.names);
                assert_eq!(got.sorted_rows(), want.sorted_rows());
            }
        }
    }
}
