//! End-to-end observability properties: span trees emitted by traced
//! query execution are well-formed across every executor × parallelism
//! combination on randomized instances, `EXPLAIN ANALYZE` actuals agree
//! exactly with digest-checked result sizes, and a pipelined binary
//! batch reconstructs as a single trace retrievable over the `TRACE`
//! wire verb.
//!
//! These tests only ever *enable* tracing (never disable it), so they
//! are safe under the parallel test harness: each asserts exclusively
//! on spans carrying its own trace id.

use proql::engine::{Engine, EngineOptions};
use proql::parse_query;
use proql_cdss::topology::{build_system, target_query, CdssConfig, Topology};
use proql_common::rng::SplitMix64;
use proql_common::{trace, Parallelism};
use proql_service::proto::{json_str_field, result_digest};
use proql_service::{serve, BinClient, ServiceCore};
use proql_storage::ExecMode;
use std::sync::Arc;

/// Every span in `spans` must form one sane forest: unique ids, no
/// dangling parents, and child intervals contained in their parents'.
fn assert_well_formed(spans: &[trace::SpanRecord], trace_id: u64) {
    assert!(!spans.is_empty(), "traced run must record spans");
    let mut ids = std::collections::HashSet::new();
    for s in spans {
        assert_eq!(s.trace_id, trace_id, "span {} leaked across traces", s.name);
        assert!(ids.insert(s.span_id), "duplicate span id {}", s.span_id);
        assert!(
            s.end_ns >= s.start_ns,
            "span {} ends before it starts",
            s.name
        );
    }
    for s in spans {
        if s.parent_id == 0 {
            continue;
        }
        let parent = spans
            .iter()
            .find(|p| p.span_id == s.parent_id)
            .unwrap_or_else(|| panic!("span {} has a dangling parent", s.name));
        assert!(
            s.start_ns >= parent.start_ns && s.end_ns <= parent.end_ns,
            "span {} [{}, {}] escapes its parent {} [{}, {}]",
            s.name,
            s.start_ns,
            s.end_ns,
            parent.name,
            parent.start_ns,
            parent.end_ns
        );
    }
}

/// Randomized CDSS instances swept across ExecMode × Parallelism: every
/// traced run yields a well-formed span tree under one root, and the
/// batch executor additionally records per-operator spans that survive
/// the morsel worker pool's context hand-off.
#[test]
fn span_trees_are_well_formed_across_executors_and_parallelism() {
    trace::set_enabled(true);
    let mut rng = SplitMix64::seed_from_u64(0x0B5E);
    const MODES: [ExecMode; 3] = [ExecMode::Batch, ExecMode::Row, ExecMode::NestedLoop];
    const PARS: [Parallelism; 2] = [Parallelism::Serial, Parallelism::Threads(4)];
    for _case in 0..3 {
        let peers = rng.gen_range_usize(3, 5);
        let base = rng.gen_range_usize(8, 30);
        let sys =
            build_system(Topology::Chain, &CdssConfig::upstream_data(peers, 2, base)).unwrap();
        for mode in MODES {
            for par in PARS {
                let engine = Engine::with_options(
                    sys.clone(),
                    EngineOptions {
                        exec_mode: mode,
                        parallelism: par,
                        ..EngineOptions::default()
                    },
                );
                let root = trace::span("test.case");
                let trace_id = root.trace_id().expect("tracing is enabled");
                let out = engine.query(target_query()).unwrap();
                assert!(!out.projection.bindings.is_empty());
                drop(root);
                let spans = trace::spans_for_trace(trace_id);
                assert_well_formed(&spans, trace_id);
                assert!(
                    spans.iter().any(|s| s.name == "execute"),
                    "engine must record an execute span ({mode:?}, {par:?})"
                );
                assert!(
                    spans.iter().any(|s| s.name == "rule"),
                    "unfold execution must record rule spans ({mode:?}, {par:?})"
                );
                if mode == ExecMode::Batch {
                    assert!(
                        spans.iter().any(|s| s.name.starts_with("op.")),
                        "batch execution must record operator spans ({par:?})"
                    );
                }
            }
        }
    }
}

/// `EXPLAIN ANALYZE` actuals agree exactly with the result sizes of a
/// plain run — which itself is digest-checked against a second plain
/// run, so the counts being compared are the counts being served.
#[test]
fn explain_analyze_actuals_match_digest_checked_result_sizes() {
    let sys = build_system(Topology::Chain, &CdssConfig::upstream_data(4, 2, 20)).unwrap();
    let engine = Engine::new(sys);
    let q = target_query();
    let a = engine.query(q).unwrap();
    let b = engine.query(q).unwrap();
    assert_eq!(
        result_digest(&a),
        result_digest(&b),
        "plain runs must agree"
    );

    let analyzed = engine.query(&format!("EXPLAIN ANALYZE {q}")).unwrap();
    let plan = analyzed.plan.expect("EXPLAIN ANALYZE renders a plan");
    // Per-operator annotations: estimates and actuals side by side.
    assert!(plan.contains("~"), "estimates missing: {plan}");
    assert!(plan.contains(" actual "), "actuals missing: {plan}");
    // The footer's totals must match the served result exactly.
    let footer = plan
        .lines()
        .find(|l| l.starts_with("actual: "))
        .unwrap_or_else(|| panic!("no actual totals footer: {plan}"));
    let nums: Vec<u64> = footer
        .split(|c: char| !c.is_ascii_digit())
        .filter(|t| !t.is_empty())
        .take(2)
        .map(|t| t.parse().unwrap())
        .collect();
    assert_eq!(
        nums[0],
        a.projection.bindings.len() as u64,
        "binding rows diverge: {footer}"
    );
    assert_eq!(
        nums[1],
        a.projection.derivation_count() as u64,
        "derivation rows diverge: {footer}"
    );
    // ANALYZE is still an EXPLAIN: it must not serve result rows.
    assert!(analyzed.projection.bindings.is_empty());

    // Parsing accepts the keyword only after EXPLAIN.
    assert!(
        parse_query(&format!("EXPLAIN ANALYZE {q}"))
            .unwrap()
            .analyze
    );
    assert!(!parse_query(&format!("EXPLAIN {q}")).unwrap().analyze);
    assert!(parse_query(&format!("ANALYZE {q}")).is_err());
}

/// A pipelined binary batch — executed out of order on the worker pool
/// and reordered by the reorder buffer — must reconstruct as one span
/// tree under the connection's trace, retrievable via the TRACE verb.
#[test]
fn pipelined_binary_batch_reconstructs_as_one_trace() {
    trace::set_enabled(true);
    let sys = build_system(Topology::Chain, &CdssConfig::upstream_data(3, 2, 12)).unwrap();
    let core = Arc::new(ServiceCore::new(sys, EngineOptions::default()));
    let server = serve(Arc::clone(&core), "127.0.0.1:0", 4).unwrap();

    const PIPELINED: usize = 6;
    let mut client = BinClient::connect(server.addr()).unwrap();
    // Distinct WHERE bounds keep every request a genuine execution (no
    // result-cache hit), so each request span carries a full subtree.
    let queries: Vec<String> = (0..PIPELINED)
        .map(|i| format!("FOR [R0a $x] INCLUDE PATH [$x] <-+ [] WHERE $x.k >= {i} RETURN $x"))
        .collect();
    let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
    // One batched write; responses drain in request order, so by the
    // last recv every request span has been recorded.
    let payloads = client.pipeline_queries(&refs).unwrap();
    assert_eq!(payloads.len(), PIPELINED);
    for p in &payloads {
        assert_eq!(json_str_field(p, "cache").as_deref(), Some("miss"));
    }

    // The server runs in-process: find the connection's trace in the
    // ring — the one holding this batch's request spans — and check it
    // is a single well-formed tree with every request at the root.
    let all = trace::snapshot();
    let trace_id = all
        .iter()
        .filter(|s| s.name == "request")
        .map(|s| s.trace_id)
        .find(|&t| {
            all.iter()
                .filter(|s| s.name == "request" && s.trace_id == t)
                .count()
                >= PIPELINED
        })
        .expect("the batch's requests must share one trace id");
    let spans = trace::spans_for_trace(trace_id);
    assert_well_formed(&spans, trace_id);
    let requests: Vec<_> = spans.iter().filter(|s| s.name == "request").collect();
    assert!(requests.len() >= PIPELINED);
    for r in &requests {
        assert_eq!(r.parent_id, 0, "request spans root at the connection");
        assert!(
            spans
                .iter()
                .any(|s| s.parent_id == r.span_id && s.name == "service.query"),
            "each request must nest its service.query span"
        );
    }

    // And the same tree is visible over the wire.
    let traces = client.trace(8).unwrap();
    assert!(traces.starts_with("{\"traces\": ["), "{traces}");
    assert!(traces.contains("\"name\": \"request\""), "{traces}");
    assert!(
        traces.contains(&format!("\"trace_id\": {trace_id}")),
        "{traces}"
    );
    drop(client);
    server.shutdown();
}
