//! PRNG property suite for delta-maintained provenance graphs.
//!
//! Replays random mutation interleavings — local inserts, (incremental)
//! exchanges, CDSS deletes through both the plain and the cached-graph
//! path, and out-of-band direct-db writes with a bare version bump — and
//! asserts after **every** mutation that the engine's delta-patched graph
//! is digest-identical to a from-scratch `ProvGraph::from_system` rebuild.
//! The whole replay sweeps ExecMode × Parallelism, replaying query
//! results against a fresh engine at matching configuration.

use proql::engine::{Engine, EngineOptions, Strategy};
use proql_cdss::update::{delete_local, delete_local_with_graph};
use proql_common::rng::SplitMix64;
use proql_common::{tup, Parallelism, Schema, Tuple, Value, ValueType};
use proql_provgraph::{ProvGraph, ProvenanceSystem};
use proql_service::result_digest;
use proql_storage::ExecMode;

/// Two mapping families over five relations:
///
/// * acyclic: `X → Y` (superfluous) and `X ⋈ Y → Z` (materialized `P_mz`),
/// * cyclic:  `U → V ↔ W` (the V/W loop exercises fixpoint evaluation and
///   makes `Strategy::Auto` resolve to the graph walk).
fn build_system() -> ProvenanceSystem {
    let mut sys = ProvenanceSystem::new();
    for name in ["X", "Y", "U", "V", "W"] {
        sys.add_relation_with_local(
            Schema::build(name, &[("id", ValueType::Int), ("w", ValueType::Int)], &[0]).unwrap(),
        )
        .unwrap();
    }
    sys.add_relation(
        Schema::build(
            "Z",
            &[
                ("id", ValueType::Int),
                ("a", ValueType::Int),
                ("b", ValueType::Int),
            ],
            &[0],
        )
        .unwrap(),
    )
    .unwrap();
    sys.add_mapping_text("my: Y(i, w) :- X(i, w)").unwrap();
    sys.add_mapping_text("mz: Z(i, a, b) :- X(i, a), Y(i, b)")
        .unwrap();
    sys.add_mapping_text("mv: V(i, w) :- U(i, w)").unwrap();
    sys.add_mapping_text("mw: W(i, w) :- V(i, w)").unwrap();
    sys.add_mapping_text("mv2: V(i, w) :- W(i, w)").unwrap();
    for i in 0..4i64 {
        sys.insert_local("X", tup![i, i * 10]).unwrap();
        sys.insert_local("U", tup![i, i * 10]).unwrap();
    }
    sys.run_exchange().unwrap();
    sys
}

const QUERIES: [&str; 3] = [
    "FOR [Z $x] INCLUDE PATH [$x] <-+ [] RETURN $x",
    "FOR [V $x] INCLUDE PATH [$x] <-+ [] RETURN $x",
    "EVALUATE DERIVABILITY OF { FOR [W $x] INCLUDE PATH [$x] <-+ [] RETURN $x }",
];

fn assert_graph_matches_rebuild(engine: &Engine, step: &str) {
    let patched = engine.graph().expect("graph maintains");
    let rebuilt = ProvGraph::from_system(&engine.sys).expect("rebuild");
    assert_eq!(
        patched.digest(),
        rebuilt.digest(),
        "delta-maintained graph diverged from rebuild after {step}"
    );
    assert_eq!(patched.tuple_count(), rebuilt.tuple_count(), "after {step}");
    assert_eq!(
        patched.derivation_count(),
        rebuilt.derivation_count(),
        "after {step}"
    );
}

fn assert_queries_match_fresh(engine: &Engine, step: &str) {
    let fresh = Engine::with_options(engine.sys.clone(), engine.options.clone());
    fresh.invalidate_cache();
    for q in QUERIES {
        let a = engine.query(q).expect("delta-engine query");
        let b = fresh.query(q).expect("fresh-engine query");
        assert_eq!(
            result_digest(&a),
            result_digest(&b),
            "query {q} diverged after {step}"
        );
    }
}

fn replay(seed: u64, exec_mode: ExecMode, parallelism: Parallelism) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut engine = Engine::with_options(
        build_system(),
        EngineOptions {
            strategy: Strategy::Auto, // cyclic schema graph → graph walk
            exec_mode,
            parallelism,
            ..EngineOptions::default()
        },
    );
    // Live local keys per insertable relation, for delete targeting.
    let rels = ["X", "U", "V"];
    let mut live: Vec<Vec<i64>> = vec![vec![0, 1, 2, 3], vec![0, 1, 2, 3], vec![]];
    let mut next_key = 100i64;
    let mut pending_exchange = false;

    for step in 0..40 {
        let op = rng.gen_range_usize(0, 10);
        let label;
        match op {
            // Insert a fresh local row (60% weight keeps the graph growing),
            // usually exchanging right away, sometimes leaving it pending.
            0..=5 => {
                let r = rng.gen_range_usize(0, rels.len());
                let k = next_key;
                next_key += 1;
                engine
                    .sys
                    .insert_local(rels[r], tup![k, k * 7])
                    .expect("insert");
                live[r].push(k);
                if rng.gen_range_usize(0, 4) > 0 {
                    engine.sys.run_exchange().expect("exchange");
                    pending_exchange = false;
                    label = format!("step {step}: insert {}+exchange", rels[r]);
                } else {
                    pending_exchange = true;
                    label = format!("step {step}: insert {} (pending)", rels[r]);
                }
            }
            // Exchange whatever is pending (possibly a no-op).
            6 => {
                engine.sys.run_exchange().expect("exchange");
                pending_exchange = false;
                label = format!("step {step}: exchange");
            }
            // CDSS delete via the plain path or the cached-graph path.
            7 | 8 => {
                let r = rng.gen_range_usize(0, rels.len());
                if live[r].is_empty() {
                    continue;
                }
                let at = rng.gen_range_usize(0, live[r].len());
                let k = live[r].swap_remove(at);
                if op == 7 {
                    delete_local(&mut engine.sys, rels[r], &tup![k]).expect("delete");
                    label = format!("step {step}: delete {}({k})", rels[r]);
                } else {
                    let graph = engine.graph().expect("pre-delete graph");
                    delete_local_with_graph(&mut engine.sys, rels[r], &tup![k], &graph)
                        .expect("delete with graph");
                    label = format!("step {step}: cached-graph delete {}({k})", rels[r]);
                }
                pending_exchange = false;
            }
            // Out-of-band write: direct db mutation + bare version bump
            // breaks the delta chain; the engine must fall back to a full
            // rebuild and still agree.
            _ => {
                let k = next_key;
                next_key += 1;
                engine
                    .sys
                    .db
                    .insert("Y", Tuple::new(vec![Value::Int(k), Value::Int(k)]))
                    .expect("direct insert");
                engine.sys.bump_version();
                label = format!("step {step}: direct-db insert + bump");
            }
        }
        assert_graph_matches_rebuild(&engine, &label);
        if step % 8 == 7 {
            assert_queries_match_fresh(&engine, &label);
        }
    }
    let _ = pending_exchange;
    assert!(
        engine.graph_patch_count() > 0,
        "the replay must actually exercise delta patching \
         (patches={}, builds={})",
        engine.graph_patch_count(),
        engine.graph_build_count()
    );
}

/// Chain-break property test for incremental view maintenance: replay a
/// random interleaving of maintainable writes (insert+exchange, CDSS
/// deletes) and chain-breaking ones (out-of-band db write + bare
/// `bump_version`, schema additions), carrying a set of maintained query
/// outputs across every step. Maintainable steps must patch
/// ([`proql::MaintainResult::Maintained`]) and chain-breaking steps must
/// fall back — and in **both** cases the answer served afterwards must be
/// digest-equal to a fresh serial [`Engine`] evaluation of the new state.
#[test]
fn maintained_outputs_survive_chain_breaks_via_fallback() {
    use proql::engine::{EngineOptions, PreparedQuery, QueryOutput};
    use proql::{maintain_output, MaintainResult, MaintainState};

    // Only the acyclic X/Y/Z family: force the unfold strategy so the
    // outputs are maintainable at all.
    const MAINT_QUERIES: [&str; 2] = [
        "FOR [Z $x] INCLUDE PATH [$x] <-+ [] RETURN $x",
        "EVALUATE WEIGHT OF { FOR [Z $x] INCLUDE PATH [$x] <-+ [] RETURN $x } \
         ASSIGNING EACH leaf_node $y { DEFAULT : SET 1 }",
    ];
    let opts = EngineOptions {
        strategy: Strategy::Unfold,
        ..EngineOptions::default()
    };
    let mut engine = Engine::with_options(build_system(), opts.clone());
    let mut entries: Vec<(PreparedQuery, QueryOutput, Option<Box<MaintainState>>)> = MAINT_QUERIES
        .iter()
        .map(|q| {
            let prepared = engine.prepare(q).expect("prepare");
            let output = engine.execute(&prepared).expect("execute");
            (prepared, output, None)
        })
        .collect();

    let mut rng = SplitMix64::seed_from_u64(0xBADC0DE);
    let mut live: Vec<i64> = vec![0, 1, 2, 3];
    let mut next_key = 200i64;
    let mut schema_seq = 0usize;
    let (mut maintained_steps, mut fallback_steps) = (0u32, 0u32);

    for step in 0..30 {
        let old = engine;
        let mut sys = old.sys.clone();
        let op = rng.gen_range_usize(0, 8);
        let breaks_chain = op >= 6;
        match op {
            // Maintainable: CDSS delete (insert instead if nothing lives).
            4 | 5 if !live.is_empty() => {
                let at = rng.gen_range_usize(0, live.len());
                let k = live.swap_remove(at);
                delete_local(&mut sys, "X", &tup![k]).expect("delete");
            }
            // Maintainable: insert + incremental exchange.
            0..=5 => {
                let k = next_key;
                next_key += 1;
                sys.insert_local("X", tup![k, k * 7]).expect("insert");
                sys.run_exchange().expect("exchange");
                live.push(k);
            }
            // Chain break: out-of-band db write + bare version bump.
            6 => {
                let k = next_key;
                next_key += 1;
                sys.db
                    .insert("Y", Tuple::new(vec![Value::Int(k), Value::Int(k)]))
                    .expect("direct insert");
                sys.bump_version();
            }
            // Chain break: schema change (a new relation) + bump.
            _ => {
                schema_seq += 1;
                sys.add_relation(
                    Schema::build(&format!("S{schema_seq}"), &[("id", ValueType::Int)], &[0])
                        .unwrap(),
                )
                .expect("add relation");
                sys.bump_version();
            }
        }
        let new = Engine::with_options(sys, opts.clone());
        for (prepared, output, state) in &mut entries {
            let outcome = maintain_output(&old, &new, prepared, output, state.take())
                .expect("maintain never errors here");
            match outcome {
                MaintainResult::Maintained {
                    output: patched,
                    state: next_state,
                    ..
                } => {
                    assert!(
                        !breaks_chain,
                        "step {step}: a chain-breaking write must not be maintained"
                    );
                    *output = *patched;
                    *state = next_state;
                    maintained_steps += 1;
                }
                MaintainResult::Fallback(reason) => {
                    assert!(
                        breaks_chain,
                        "step {step}: localizable write unexpectedly fell back ({reason})"
                    );
                    assert_eq!(reason, "delta chain unavailable", "step {step}");
                    // Post-fallback the caller recomputes: do the same.
                    *output = new.execute(prepared).expect("recompute");
                    *state = None;
                    fallback_steps += 1;
                }
            }
            // Maintained or recomputed, the served answer must equal a
            // fresh serial evaluation of the new state.
            let fresh = Engine::with_options(new.sys.clone(), opts.clone());
            assert_eq!(
                result_digest(output),
                result_digest(&fresh.execute(prepared).expect("fresh")),
                "step {step}: served answer diverged from fresh evaluation"
            );
        }
        engine = new;
    }
    assert!(
        maintained_steps > 0 && fallback_steps > 0,
        "the replay must exercise both paths (maintained={maintained_steps}, \
         fallbacks={fallback_steps})"
    );
}

#[test]
fn random_interleavings_batch_serial() {
    replay(0xA11CE, ExecMode::Batch, Parallelism::Serial);
}

#[test]
fn random_interleavings_batch_threads() {
    replay(0xB0B, ExecMode::Batch, Parallelism::Threads(2));
}

#[test]
fn random_interleavings_row_serial() {
    replay(0xC0FFEE, ExecMode::Row, Parallelism::Serial);
}

#[test]
fn random_interleavings_row_threads() {
    replay(0xD00D, ExecMode::Row, Parallelism::Threads(2));
}

#[test]
fn random_interleavings_nested_loop_serial() {
    replay(0xE66, ExecMode::NestedLoop, Parallelism::Serial);
}

#[test]
fn random_interleavings_nested_loop_threads() {
    replay(0xF00D, ExecMode::NestedLoop, Parallelism::Threads(2));
}
